"""Tests (incl. property-based) for the in-memory Table."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlgebraError
from repro.algebra.table import Table

rows_strategy = st.lists(
    st.tuples(st.integers(-5, 5), st.sampled_from(["a", "b", "c"])), max_size=30
)


def test_schema_validation():
    with pytest.raises(AlgebraError):
        Table(("a", "a"), [])
    with pytest.raises(AlgebraError):
        Table(("a", "b"), [(1,)])


def test_project_and_rename():
    table = Table(("a", "b"), [(1, 2), (3, 4)])
    projected = table.project([("x", "b"), ("a", "a")])
    assert projected.columns == ("x", "a")
    assert projected.rows == [(2, 1), (4, 3)]


def test_select_and_distinct_and_attach():
    table = Table(("a",), [(1,), (2,), (1,)])
    assert table.select(lambda r: r["a"] > 1).rows == [(2,)]
    assert table.distinct().rows == [(1,), (2,)]
    assert table.attach("b", 9).columns == ("a", "b")


def test_attach_existing_column_fails():
    with pytest.raises(AlgebraError):
        Table(("a",), [(1,)]).attach("a", 0)


def test_rank_matches_sql_rank_semantics():
    table = Table(("v",), [(10,), (5,), (10,), (1,)])
    ranked = table.attach_rank("r", ["v"])
    by_value = {row[0]: row[1] for row in ranked.rows}
    assert by_value[1] == 1 and by_value[5] == 2 and by_value[10] == 3


def test_cross_disjointness():
    with pytest.raises(AlgebraError):
        Table(("a",), []).cross(Table(("a",), []))


@given(rows_strategy)
def test_distinct_idempotent(rows):
    table = Table(("a", "b"), rows)
    once = table.distinct()
    assert once.distinct().rows == once.rows
    assert len(once) <= len(table)


@given(rows_strategy)
def test_rank_is_order_preserving(rows):
    table = Table(("a", "b"), rows)
    ranked = table.attach_rank("r", ["a"])
    index_a = ranked.column_index("a")
    index_r = ranked.column_index("r")
    for row1 in ranked.rows:
        for row2 in ranked.rows:
            if row1[index_a] < row2[index_a]:
                assert row1[index_r] < row2[index_r]
            elif row1[index_a] == row2[index_a]:
                assert row1[index_r] == row2[index_r]


@given(rows_strategy)
def test_sort_by_is_stable_permutation(rows):
    table = Table(("a", "b"), rows)
    ordered = table.sort_by(["a", "b"])
    assert sorted(ordered.rows) == sorted(table.rows)
    values = [row[0] for row in ordered.rows]
    assert values == sorted(values)


def test_unchecked_asserts_first_row_arity():
    """``Table.unchecked`` skips per-row validation but still catches a
    schema-width mismatch on the first row under ``__debug__``."""
    assert Table.unchecked(("a", "b"), [(1, 2)]).rows == [(1, 2)]
    assert Table.unchecked(("a", "b"), []).rows == []
    with pytest.raises(AssertionError):
        Table.unchecked(("a", "b"), [(1,)])
    with pytest.raises(AlgebraError):
        Table.unchecked(("a", "a"), [(1, 2)])

"""Structural tests for the table algebra operators."""

import pytest

from repro.errors import AlgebraError
from repro.algebra.operators import (
    Attach, Cross, Distinct, DocTable, Join, LiteralTable, Project, RowId, RowRank,
    Select, Serialize, literal_column, loop_table,
)
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate


def test_doc_table_schema():
    assert DocTable().columns == ("pre", "size", "level", "kind", "name", "value", "data")


def test_loop_table_and_literal_column():
    assert loop_table().rows == ((1,),)
    assert literal_column("pos", 1).columns == ("pos",)


def test_project_validates_sources():
    with pytest.raises(AlgebraError):
        Project(DocTable(), [("x", "nope")])


def test_project_duplicate_outputs_rejected():
    with pytest.raises(AlgebraError):
        Project(DocTable(), [("x", "pre"), ("x", "size")])


def test_select_validates_predicate_columns():
    with pytest.raises(AlgebraError):
        Select(DocTable(), Predicate.of(Comparison(ColumnRef("missing"), "=", Literal(1))))


def test_join_requires_disjoint_columns():
    with pytest.raises(AlgebraError):
        Join(DocTable(), DocTable(), Predicate.equality("pre", "pre"))


def test_join_output_columns():
    left = Project(DocTable(), [("a", "pre")])
    right = Project(DocTable(), [("b", "pre")])
    join = Join(left, right, Predicate.equality("a", "b"))
    assert join.columns == ("a", "b")


def test_attach_rowid_rank_add_columns():
    base = loop_table()
    assert Attach(base, "pos", 1).columns == ("iter", "pos")
    assert RowId(base, "inner").columns == ("iter", "inner")
    assert RowRank(Attach(base, "pos", 1), "rank", ("pos",)).columns == ("iter", "pos", "rank")


def test_rank_requires_known_order_columns():
    with pytest.raises(AlgebraError):
        RowRank(loop_table(), "rank", ("missing",))


def test_with_children_rebuilds_same_kind():
    select = Select(DocTable(), Predicate.of(Comparison(ColumnRef("kind"), "=", Literal("ELEM"))))
    rebuilt = select.with_children([DocTable()])
    assert isinstance(rebuilt, Select) and rebuilt.predicate is select.predicate


def test_serialize_passes_columns_through():
    plan = Serialize(loop_table())
    assert plan.columns == ("iter",)


def test_labels_are_informative():
    assert "doc" in DocTable().label()
    assert "π" in Project(DocTable(), [("a", "pre")]).label()
    assert "σ" in Select(DocTable(), Predicate.of(Comparison(ColumnRef("pre"), "=", Literal(0)))).label()

"""Tests for the reference plan interpreter."""

import pytest

from repro.errors import QueryTimeoutError
from repro.algebra.interpreter import PlanInterpreter, evaluate_plan
from repro.algebra.operators import (
    Attach, Cross, Distinct, DocTable, Join, LiteralTable, Project, RowId, RowRank, Select, Serialize,
)
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate, Sum
from repro.algebra.table import Table


def test_doc_scan_and_select(small_auction_doc_table):
    plan = Select(
        DocTable(),
        Predicate.of(
            Comparison(ColumnRef("kind"), "=", Literal("ELEM")),
            Comparison(ColumnRef("name"), "=", Literal("open_auction")),
        ),
    )
    result = evaluate_plan(plan, small_auction_doc_table)
    assert len(result) == 3


def test_project_attach_rowid_rank(small_auction_doc_table):
    base = LiteralTable(("iter",), [(1,), (2,)])
    plan = RowRank(RowId(Attach(base, "pos", 1), "inner"), "rank", ("inner",))
    result = evaluate_plan(plan, small_auction_doc_table)
    assert result.columns == ("iter", "pos", "inner", "rank")
    assert [row[3] for row in result.rows] == [1, 2]


def test_equi_join_uses_hashing(small_auction_doc_table):
    left = Project(Select(DocTable(), Predicate.of(Comparison(ColumnRef("kind"), "=", Literal("ELEM")))), [("lpre", "pre")])
    right = Project(DocTable(), [("rpre", "pre"), ("rname", "name")])
    join = Join(left, right, Predicate.equality("lpre", "rpre"))
    result = evaluate_plan(join, small_auction_doc_table)
    assert len(result) == len(evaluate_plan(left, small_auction_doc_table))


def test_range_join_axis_semantics(small_auction_doc_table):
    context = Project(
        Select(DocTable(), Predicate.of(Comparison(ColumnRef("name"), "=", Literal("open_auction")))),
        [("cpre", "pre"), ("csize", "size")],
    )
    candidates = Select(DocTable(), Predicate.of(Comparison(ColumnRef("name"), "=", Literal("bidder"))))
    join = Join(
        candidates,
        context,
        Predicate.of(
            Comparison(ColumnRef("cpre"), "<", ColumnRef("pre")),
            Comparison(ColumnRef("pre"), "<=", Sum(ColumnRef("cpre"), ColumnRef("csize"))),
        ),
    )
    result = evaluate_plan(join, small_auction_doc_table)
    assert len(result) == 3  # three bidder elements below open auctions


def test_cross_and_distinct(small_auction_doc_table):
    left = LiteralTable(("a",), [(1,), (2,)])
    right = LiteralTable(("b",), [(1,), (1,)])
    result = evaluate_plan(Distinct(Cross(left, right)), small_auction_doc_table)
    assert sorted(result.rows) == [(1, 1), (2, 1)]


def test_shared_subplans_evaluated_once(small_auction_doc_table):
    shared = Select(DocTable(), Predicate.of(Comparison(ColumnRef("kind"), "=", Literal("ELEM"))))
    left = Project(shared, [("a", "pre")])
    right = Project(shared, [("b", "pre")])
    plan = Join(left, right, Predicate.equality("a", "b"))
    interpreter = PlanInterpreter(small_auction_doc_table)
    interpreter.evaluate(plan)
    # doc, shared select, two projects, join, = 5 evaluations (not 6+)
    assert interpreter.operators_evaluated == 5


def test_timeout_raises(small_auction_doc_table):
    big = DocTable()
    plan = Cross(Project(big, [("a", "pre")]), Project(Cross(Project(big, [("b", "pre")]), Project(big, [("c", "pre")])), [("b", "b"), ("c", "c")]))
    with pytest.raises(QueryTimeoutError):
        evaluate_plan(plan, small_auction_doc_table, timeout_seconds=0.0)


def test_serialize_is_transparent(small_auction_doc_table):
    plan = Serialize(LiteralTable(("iter",), [(1,)]))
    assert evaluate_plan(plan, small_auction_doc_table).rows == [(1,)]


# -- GroupAggregate (the AGGR rule's operator) ----------------------------------------


def _aggregate_fixture(function, value_column=None):
    from repro.algebra.operators import GroupAggregate, LiteralTable

    child_columns = ["iter", "item"] + (["val"] if value_column else [])
    child = LiteralTable(
        child_columns,
        [
            row
            for row in (
                # iteration 1: two distinct units (one duplicated), values 10/20
                (1, 100, 10.0),
                (1, 100, 10.0),  # duplicate bundle row: must count once
                (1, 101, 20.0),
                # iteration 2: one unit without a numeric value
                (2, 102, None),
            )
        ]
        if value_column
        else [(1, 100), (1, 100), (1, 101), (2, 102)],
    )
    loop = LiteralTable(("iter",), [(1,), (2,), (3,)])  # iteration 3 is empty
    return GroupAggregate(
        child, loop, function, group_column="iter",
        unit_column="item", value_column=value_column,
    )


def test_group_aggregate_count_dedupes_and_completes_empty_groups(small_auction_doc_table):
    from repro.algebra.interpreter import PlanInterpreter

    table = PlanInterpreter(small_auction_doc_table).evaluate(_aggregate_fixture("count"))
    assert table.columns == ("iter", "item")
    assert table.rows == [(1, 2), (2, 1), (3, 0)]


def test_group_aggregate_sum_ignores_nulls_and_completes_with_zero(small_auction_doc_table):
    from repro.algebra.interpreter import PlanInterpreter

    table = PlanInterpreter(small_auction_doc_table).evaluate(_aggregate_fixture("sum", "val"))
    assert table.rows == [(1, 30.0), (2, 0), (3, 0)]


def test_group_aggregate_avg_drops_valueless_groups(small_auction_doc_table):
    from repro.algebra.interpreter import PlanInterpreter

    table = PlanInterpreter(small_auction_doc_table).evaluate(_aggregate_fixture("avg", "val"))
    # iteration 2 has a unit but no numeric value; iteration 3 no units.
    assert table.rows == [(1, 15.0)]


def test_group_aggregate_validates_its_columns():
    import pytest

    from repro.errors import AlgebraError
    from repro.algebra.operators import GroupAggregate, LiteralTable

    child = LiteralTable(("iter", "item"), [])
    loop = LiteralTable(("iter",), [(1,)])
    with pytest.raises(AlgebraError):
        GroupAggregate(child, loop, "median")
    with pytest.raises(AlgebraError):
        GroupAggregate(child, loop, "sum")  # sum needs a value column
    with pytest.raises(AlgebraError):
        GroupAggregate(child, loop, "count", value_column="item")

"""Unit tests for the columnar storage layer and its vectorized kernels.

Every kernel is checked against the row-path reference it replaces —
``predicates._compare`` for comparison masks, ``Table.attach_rank`` for the
rank kernel, the hash-bucket join for ``equi_join_indices`` — on value mixes
that exercise the shadow-validity rules: NULLs, bools, huge ints beyond
float64 exactness, strings on one side and on both.  Each test runs in the
vectorized branch and in the pure-Python fallback (``set_numpy_enabled``),
which is also what the ``REPRO_NO_NUMPY`` CI job forces globally.
"""

from contextlib import contextmanager

import pytest

from repro.algebra import columnar
from repro.algebra.columnar import Column, ColumnarTable
from repro.algebra.predicates import _compare
from repro.algebra.table import Table
from repro.errors import AlgebraError

OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Value mixes that probe every branch-selection rule of compare_mask.
VALUE_COLUMNS = {
    "ints": [1, 5, 3, 5, 2],
    "floats": [1.5, 0.5, 3.0, -2.5, 0.0],
    "nulls": [None, 2, None, 4, 5],
    "bools": [True, False, True, None, False],
    "strings": ["a", "b", None, "a", "c"],
    "mixed": [1, "a", None, 2.5, "b"],
    "huge": [2 ** 60, 2 ** 60 + 1, 1, None, -(2 ** 60)],
}


@contextmanager
def _numpy(enabled: bool):
    previous = columnar.set_numpy_enabled(enabled)
    try:
        yield
    finally:
        columnar.set_numpy_enabled(previous)


def _vector_modes():
    modes = [False]
    if columnar.HAVE_NUMPY:
        modes.append(True)
    return modes


@pytest.mark.parametrize("vectorized", _vector_modes())
@pytest.mark.parametrize("left_name", sorted(VALUE_COLUMNS))
@pytest.mark.parametrize("right_name", sorted(VALUE_COLUMNS))
def test_compare_mask_matches_reference(vectorized, left_name, right_name):
    left_values = VALUE_COLUMNS[left_name]
    right_values = VALUE_COLUMNS[right_name]
    with _numpy(vectorized):
        left = Column.from_values(left_values)
        right = Column.from_values(right_values)
        for op in OPS:
            mask = columnar.compare_mask(left, op, right, len(left_values))
            expected = [
                _compare(a, op, b) for a, b in zip(left_values, right_values)
            ]
            assert [bool(v) for v in mask] == expected, (left_name, op, right_name)


@pytest.mark.parametrize("vectorized", _vector_modes())
@pytest.mark.parametrize("scalar", [None, 3, 2.5, "a", True, 2 ** 60])
def test_compare_mask_against_scalar(vectorized, scalar):
    for name, values in VALUE_COLUMNS.items():
        with _numpy(vectorized):
            column = Column.from_values(values)
            for op in OPS:
                mask = columnar.compare_mask(column, op, scalar, len(values))
                expected = [_compare(value, op, scalar) for value in values]
                assert [bool(v) for v in mask] == expected, (name, op, scalar)


@pytest.mark.parametrize("vectorized", _vector_modes())
def test_rank_values_matches_attach_rank(vectorized):
    rows = [
        (1, 10, "x"),
        (1, 5, "y"),
        (2, 5, "x"),
        (1, 5, "z"),
        (2, None, "w"),
        (1, 10, "v"),
        (2, 7, "u"),
    ]
    table = Table(("p", "o", "tag"), rows)
    expected = table.attach_rank("rank", order_by=["o"], partition_by=["p"])
    with _numpy(vectorized):
        ct = ColumnarTable.from_rows(("p", "o", "tag"), rows)
        ranks = columnar.rank_values([ct.col("o")], [ct.col("p")], len(rows))
        assert list(ranks) == [row[-1] for row in expected.rows]


@pytest.mark.parametrize("vectorized", _vector_modes())
def test_rank_values_without_partition(vectorized):
    values = [5, 1, 5, None, 2, 1]
    table = Table(("o",), [(v,) for v in values])
    expected = table.attach_rank("rank", order_by=["o"])
    with _numpy(vectorized):
        ranks = columnar.rank_values([Column.from_values(values)], [], len(values))
        assert list(ranks) == [row[-1] for row in expected.rows]


def _reference_hash_join(probe_values, build_values):
    buckets = {}
    for position, key in enumerate(build_values):
        buckets.setdefault(key, []).append(position)
    pairs = []
    for position, key in enumerate(probe_values):
        for match in buckets.get(key, ()):
            pairs.append((position, match))
    return pairs


@pytest.mark.skipif(not columnar.HAVE_NUMPY, reason="vectorized kernel only")
def test_equi_join_indices_matches_bucket_order():
    probe_values = [3, 1, 2, 3, 7, 1]
    build_values = [1, 3, 3, 2, 1, 9]
    probe = Column.from_values(probe_values)
    build = Column.from_values(build_values)
    result = columnar.equi_join_indices(probe, build)
    assert result is not None
    probe_idx, build_idx = result
    assert list(zip(probe_idx.tolist(), build_idx.tolist())) == _reference_hash_join(
        probe_values, build_values
    )


@pytest.mark.skipif(not columnar.HAVE_NUMPY, reason="vectorized kernel only")
@pytest.mark.parametrize(
    "probe_values,build_values",
    [
        (["a", "b"], [1, 2]),  # strings shadow to NaN
        ([1, None], [1, 2]),  # None keys match in the row path's buckets
        ([2 ** 60, 1], [1, 2]),  # beyond float64 exactness
    ],
)
def test_equi_join_indices_declines_unsafe_keys(probe_values, build_values):
    probe = Column.from_values(probe_values)
    build = Column.from_values(build_values)
    assert columnar.equi_join_indices(probe, build) is None


@pytest.mark.parametrize("vectorized", _vector_modes())
def test_sum_columns_matches_sum_semantics(vectorized):
    with _numpy(vectorized):
        parts = [Column.from_values([1, 2, None]), Column.from_values([10, 0.5, 3])]
        total = columnar.sum_columns(parts, 3)
        assert total.tolist() == [11, 2.5, None]
        scalar_mix = columnar.sum_columns([Column.from_values([1, 2]), 5], 2)
        assert scalar_mix.tolist() == [6, 7]


@pytest.mark.parametrize("vectorized", _vector_modes())
def test_columnar_table_round_trip(vectorized):
    rows = [(1, "a", None), (2, "b", 2.5), (3, "c", True)]
    with _numpy(vectorized):
        ct = ColumnarTable.from_rows(("x", "y", "z"), rows)
        back = ct.to_table()
    assert back.columns == ("x", "y", "z")
    assert back.rows == rows
    # Exact objects, not equal copies: identity survives the round trip.
    assert back.rows[0][1] is rows[0][1]


@pytest.mark.parametrize("vectorized", _vector_modes())
def test_columnar_table_project_filter_take(vectorized):
    rows = [(1, "a"), (2, "b"), (3, "c"), (4, "d")]
    with _numpy(vectorized):
        ct = ColumnarTable.from_rows(("n", "s"), rows)
        projected = ct.project([("s2", "s"), ("n2", "n")])
        assert list(projected.iter_rows()) == [("a", 1), ("b", 2), ("c", 3), ("d", 4)]
        mask = columnar.compare_mask(ct.col("n"), ">=", 3, ct.length)
        assert list(ct.filter(mask).iter_rows()) == [(3, "c"), (4, "d")]
        assert list(ct.take([3, 0]).iter_rows()) == [(4, "d"), (1, "a")]


def test_columnar_table_rejects_duplicate_columns():
    with pytest.raises(AlgebraError):
        ColumnarTable.from_rows(("a", "a"), [(1, 2)])


@pytest.mark.parametrize("vectorized", _vector_modes())
def test_column_stats_survive_take_and_filter(vectorized):
    with _numpy(vectorized):
        column = Column.from_values([1, None, "x", 4])
        taken = column.take([0, 2] if not column.vectorized else [0, 2])
        assert taken.tolist() == [1, "x"]
        if column.vectorized:
            # Conservative flags: a subset of a string-bearing column still
            # reports has_strings, which only costs a declined fast path.
            assert taken.has_strings


def test_interpreter_columnar_flag_is_differential():
    """The same plan evaluates identically with columnar on and off."""
    from repro.algebra.interpreter import PlanInterpreter
    from repro.xmldb.encoding import DOC_COLUMNS, encode_document
    from repro.xmldb.parser import parse_xml
    from repro.xquery.compiler import LoopLiftingCompiler

    doc = parse_xml(
        "<site><a><b>1</b><b>2</b></a><a><b>2</b><b>3</b></a></site>",
        uri="t.xml",
    )
    table = Table(DOC_COLUMNS, encode_document(doc).rows())
    plan = LoopLiftingCompiler().compile_source('doc("t.xml")/descendant::b')
    columnar_result = PlanInterpreter(table, columnar=True).evaluate(plan)
    row_result = PlanInterpreter(table, columnar=False).evaluate(plan)
    assert columnar_result == row_result

"""Tests for the predicate model."""

import pytest

from repro.errors import AlgebraError
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate, Sum, column, const


def test_columns_collection():
    predicate = Predicate.of(
        Comparison(Sum(column("pre"), column("size")), ">=", column("x")),
        Comparison(column("kind"), "=", const("ELEM")),
    )
    assert predicate.columns() == frozenset({"pre", "size", "x", "kind"})


def test_rename():
    predicate = Predicate.equality("a", "b").rename({"a": "z"})
    assert predicate.column_equalities() == [("z", "b")]


def test_evaluate_conjunction():
    predicate = Predicate.of(
        Comparison(column("a"), "<", column("b")),
        Comparison(column("b"), "<=", const(10)),
    )
    assert predicate.evaluate({"a": 1, "b": 5})
    assert not predicate.evaluate({"a": 7, "b": 5})
    assert not predicate.evaluate({"a": None, "b": 5})


def test_flip():
    comparison = Comparison(column("a"), "<", const(3)).flipped()
    assert comparison.op == ">" and isinstance(comparison.left, Literal)


def test_mixed_type_comparison_is_false_not_error():
    assert not Comparison(column("a"), "<", const(3)).evaluate({"a": "text"})


def test_invalid_operator_rejected():
    with pytest.raises(AlgebraError):
        Comparison(column("a"), "~", const(1))


def test_empty_predicate_rejected():
    with pytest.raises(AlgebraError):
        Predicate([])


def test_single_column_equality_detection():
    assert Predicate.equality("a", "b").is_single_column_equality()
    assert not Predicate.of(Comparison(column("a"), "=", const(1))).is_single_column_equality()

"""Tests for DAG traversal and substitution."""

from repro.algebra.dag import (
    count_operators, find_first, iter_nodes, node_count, operator_histogram,
    parents_map, reaches, replace_node, shared_nodes, substitute,
)
from repro.algebra.operators import Attach, Distinct, DocTable, Project, Select
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate


def _sample_plan():
    doc = DocTable()
    left = Project(doc, [("a", "pre")])
    right = Project(doc, [("b", "pre")])
    top = Attach(Project(left, [("a", "a")]), "c", 1)
    return doc, left, right, top


def test_iter_nodes_visits_each_once():
    doc, left, right, top = _sample_plan()
    nodes = list(iter_nodes(top))
    assert len(nodes) == len({id(n) for n in nodes})
    assert nodes[-1] is top


def test_parents_and_shared_nodes():
    doc = DocTable()
    a = Project(doc, [("a", "pre")])
    b = Project(doc, [("b", "pre")])
    from repro.algebra.operators import Cross
    top = Cross(a, b)
    assert shared_nodes(top) == [doc]
    assert len(parents_map(top)[id(doc)]) == 2


def test_reaches():
    doc, left, right, top = _sample_plan()
    assert reaches(top, doc)
    assert not reaches(left, top)


def test_replace_node_preserves_sharing():
    doc = DocTable()
    a = Project(doc, [("a", "pre")])
    b = Project(doc, [("b", "pre")])
    from repro.algebra.operators import Cross
    top = Cross(a, b)
    new_doc = DocTable("doc2")
    new_top = replace_node(top, doc, new_doc)
    assert shared_nodes(new_top) == [new_doc]
    assert node_count(new_top) == node_count(top)


def test_substitute_allows_wrapping_replacement():
    doc = DocTable()
    select = Select(doc, Predicate.of(Comparison(ColumnRef("kind"), "=", Literal("ELEM"))))
    wrapped = Distinct(select)
    new_root = substitute(select, {id(select): wrapped})
    assert isinstance(new_root, Distinct) and new_root.child is select


def test_histogram_and_counts():
    doc, left, right, top = _sample_plan()
    histogram = operator_histogram(top)
    assert histogram["Project"] == 2
    assert count_operators(top, Project) == 2
    assert find_first(top, lambda n: isinstance(n, DocTable)) is doc


def test_deep_plan_iteration_is_iterative():
    node = DocTable()
    plan = node
    for i in range(3000):
        plan = Attach(plan, f"c{i}", i)
    assert node_count(plan) == 3001


def test_substitute_rewrites_inside_other_replacements():
    """Regression: substitute() spliced replacement subtrees verbatim, so a
    replacement that still referenced the *old* version of another replaced
    node left the plan with two divergent copies of a shared operator —
    which silently broke every rewrite premise relying on shared anchors
    (the key-join collapse's ``left_origin is right_origin``)."""
    from repro.algebra.operators import Cross, RowId

    doc = DocTable()
    rowid = RowId(Project(doc, [("a", "pre")]), "rid")
    consumer_one = Project(rowid, [("x", "rid")])
    consumer_two = Project(rowid, [("y", "rid")])
    top = Cross(consumer_one, consumer_two)

    widened_rowid = RowId(Project(doc, [("a", "pre"), ("carry", "size")]), "rid")
    # One replacement's subtree (the rebuilt consumer) still references the
    # OLD rowid; the map also replaces the rowid itself.
    replacements = {
        id(rowid): widened_rowid,
        id(consumer_one): Project(rowid, [("x", "rid")]),
    }
    new_top = substitute(top, replacements)
    rowids = [node for node in iter_nodes(new_top) if isinstance(node, RowId)]
    # Exactly ONE RowId object survives — the widened copy — referenced by
    # both consumers.
    assert len(rowids) == 1
    assert rowids[0] is widened_rowid


def test_substitute_self_reference_still_allowed_in_multi_maps():
    """A replacement wrapping its own target composes with other entries."""
    from repro.algebra.operators import Cross

    doc = DocTable()
    select = Select(doc, Predicate.of(Comparison(ColumnRef("kind"), "=", Literal("ELEM"))))
    other = Project(doc, [("a", "pre")])
    top = Cross(Project(select, [("k", "kind")]), other)
    replacements = {
        id(select): Distinct(select),  # wraps itself
        id(other): Project(doc, [("a", "pre"), ("b", "size")]),
    }
    new_top = substitute(top, replacements)
    distincts = [n for n in iter_nodes(new_top) if isinstance(n, Distinct)]
    assert len(distincts) == 1
    assert distincts[0].child is select  # the self-reference was not re-replaced

"""Differential tests: the vectorized execution core vs the naive reference.

The compiled-predicate / range-join fast paths of
:class:`~repro.algebra.interpreter.PlanInterpreter` must be *bit-for-bit*
identical to the seed's per-row-dict evaluation — same rows, same order.
These property-style tests drive both modes over randomized predicates,
axis-join mixes and full compiled XQuery plans on XMark/DBLP fragments.
"""

import random

import pytest

from repro.algebra.interpreter import PlanInterpreter, evaluate_plan
from repro.algebra.operators import Join, LiteralTable, Select
from repro.algebra.predicates import (
    ColumnRef,
    Comparison,
    Literal,
    Predicate,
    Sum,
    compile_predicate,
)
from repro.algebra.table import Table
from repro.xquery.compiler import LoopLiftingCompiler

AXIS_OPS = ("<", "<=", ">", ">=", "=", "!=")


def _random_doc_rows(rng, count):
    """Rows shaped like pre/size/level slices plus a value/name column."""
    rows = []
    for pre in range(count):
        size = rng.randint(0, max(0, count - pre - 1))
        level = rng.randint(0, 6)
        name = rng.choice(["a", "b", "c", None])
        data = rng.choice([None, rng.randint(0, 40), rng.uniform(0, 40), "text"])
        rows.append((pre, size, level, name, data))
    return rows


def _random_term(rng, columns):
    choice = rng.random()
    if choice < 0.45:
        return ColumnRef(rng.choice(columns))
    if choice < 0.7:
        return Literal(rng.choice([0, 1, 5, 17, "a", None]))
    # Sums stay over the numeric pre/size/level columns: ``Sum.evaluate``
    # (reference and compiled alike) is only defined for numeric operands.
    return Sum(ColumnRef(rng.choice(("pre", "size", "level"))), Literal(rng.randint(0, 3)))


def _random_predicate(rng, columns, max_conjuncts=3):
    conjuncts = [
        Comparison(_random_term(rng, columns), rng.choice(AXIS_OPS), _random_term(rng, columns))
        for _ in range(rng.randint(1, max_conjuncts))
    ]
    return Predicate(conjuncts)


def test_compiled_select_matches_reference_on_random_predicates():
    rng = random.Random(1234)
    columns = ("pre", "size", "level", "name", "data")
    for _ in range(120):
        table = Table(columns, _random_doc_rows(rng, rng.randint(0, 25)))
        predicate = _random_predicate(rng, columns)
        compiled = table.filter_rows(compile_predicate(predicate, table.columns))
        reference = table.select(predicate.evaluate)
        assert compiled == reference, predicate.render()


def _join_tables(rng, left_count, right_count):
    left = Table(
        ("pre", "size", "level"),
        [
            (pre, rng.randint(0, max(0, left_count - pre - 1)), rng.randint(0, 4))
            for pre in range(left_count)
        ],
    )
    right = Table(
        ("pre_1", "size_1", "level_1"),
        [
            (pre, rng.randint(0, max(0, right_count - pre - 1)), rng.randint(0, 4))
            for pre in range(right_count)
        ],
    )
    return left, right


def _axis_shaped_predicate(rng):
    """Random conjunct mixes shaped like the Fig. 3 axis predicates."""
    pool = [
        Comparison(ColumnRef("pre_1"), "<", ColumnRef("pre")),
        Comparison(ColumnRef("pre"), "<=", Sum(ColumnRef("pre_1"), ColumnRef("size_1"))),
        Comparison(ColumnRef("pre"), "<=", ColumnRef("pre_1")),
        Comparison(Sum(ColumnRef("pre_1"), ColumnRef("size_1")), "<", ColumnRef("pre")),
        Comparison(Sum(ColumnRef("level_1"), Literal(1)), "=", ColumnRef("level")),
        Comparison(ColumnRef("level"), "=", ColumnRef("level_1")),
        Comparison(ColumnRef("pre"), "=", ColumnRef("pre_1")),
        Comparison(ColumnRef("pre"), ">", Literal(2)),
        Comparison(ColumnRef("level"), "!=", ColumnRef("level_1")),
    ]
    count = rng.randint(1, 3)
    return Predicate(rng.sample(pool, count))


def test_join_fast_paths_match_reference_on_random_axis_mixes():
    rng = random.Random(99)
    for _ in range(150):
        left, right = _join_tables(rng, rng.randint(0, 18), rng.randint(0, 18))
        predicate = _axis_shaped_predicate(rng)
        plan = Join(
            LiteralTable(left.columns, left.rows),
            LiteralTable(right.columns, right.rows),
            predicate,
        )
        doc = Table(("pre",), [])
        fast = PlanInterpreter(doc).evaluate(plan)
        naive = PlanInterpreter(doc, compiled=False).evaluate(plan)
        assert fast.columns == naive.columns
        assert fast.rows == naive.rows, predicate.render()


def test_range_join_engages_on_descendant_predicate():
    left = Table(("pre", "size"), [(i, 0) for i in range(50)])
    right = Table(("pre_1", "size_1"), [(0, 49), (10, 5), (30, 2)])
    plan = Join(
        LiteralTable(left.columns, left.rows),
        LiteralTable(right.columns, right.rows),
        Predicate.of(
            Comparison(ColumnRef("pre_1"), "<", ColumnRef("pre")),
            Comparison(ColumnRef("pre"), "<=", Sum(ColumnRef("pre_1"), ColumnRef("size_1"))),
        ),
    )
    interpreter = PlanInterpreter(Table(("x",), []))
    fast = interpreter.evaluate(plan)
    assert interpreter.range_joins == 1
    naive = PlanInterpreter(Table(("x",), []), compiled=False).evaluate(plan)
    assert fast.rows == naive.rows


def test_range_join_falls_back_on_non_numeric_columns():
    left = Table(("name",), [("a",), ("b",), (None,)])
    right = Table(("lo", "hi"), [("a", "b")])
    plan = Join(
        LiteralTable(left.columns, left.rows),
        LiteralTable(right.columns, right.rows),
        Predicate.of(
            Comparison(ColumnRef("lo"), "<=", ColumnRef("name")),
            Comparison(ColumnRef("name"), "<=", ColumnRef("hi")),
        ),
    )
    interpreter = PlanInterpreter(Table(("x",), []))
    fast = interpreter.evaluate(plan)
    assert interpreter.range_joins == 0  # strings: safe nested-loop fallback
    naive = PlanInterpreter(Table(("x",), []), compiled=False).evaluate(plan)
    assert fast.rows == naive.rows


XMARK_QUERIES = [
    'doc("auction.xml")/child::site',
    'doc("auction.xml")/descendant::open_auction',
    'doc("auction.xml")/descendant::open_auction/child::bidder/child::increase',
    'doc("auction.xml")/descendant::bidder[child::increase > 10]',
    'doc("auction.xml")/descendant::increase[. > 2.0]',
    'for $a in doc("auction.xml")/descendant::open_auction '
    "return $a/child::initial",
]

DBLP_QUERIES = [
    'doc("dblp.xml")/descendant::article',
    'doc("dblp.xml")/descendant::article/child::author',
    'doc("dblp.xml")/descendant::article[child::year > 1995]/child::title',
]


@pytest.mark.parametrize("query", XMARK_QUERIES)
def test_compiled_plans_match_reference_on_xmark(query, xmark_encoding):
    from repro.xmldb.encoding import DOC_COLUMNS

    table = Table(DOC_COLUMNS, xmark_encoding.rows())
    plan = LoopLiftingCompiler().compile_source(query)
    fast = evaluate_plan(plan, table)
    naive = evaluate_plan(plan, table, compiled=False)
    assert fast.columns == naive.columns
    assert fast.rows == naive.rows


@pytest.mark.parametrize("query", DBLP_QUERIES)
def test_compiled_plans_match_reference_on_dblp(query, dblp_encoding):
    from repro.xmldb.encoding import DOC_COLUMNS

    table = Table(DOC_COLUMNS, dblp_encoding.rows())
    plan = LoopLiftingCompiler().compile_source(query.replace("auction.xml", "dblp.xml"))
    fast = evaluate_plan(plan, table)
    naive = evaluate_plan(plan, table, compiled=False)
    assert fast.columns == naive.columns
    assert fast.rows == naive.rows

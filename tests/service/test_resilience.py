"""Resilience-layer tests: retry policy, circuit breaker, engine fallback.

Everything here is deterministic: clocks and rngs are injected, the
service's backoff sleep is stubbed out, and the session double fails on
command — no real engines, no timing races.
"""

import random
import threading

import pytest

from repro.errors import (
    BackendExecutionError,
    CircuitOpenError,
    DegradedExecutionError,
    QueryTimeoutError,
    TransientBackendError,
)
from repro.service import (
    BreakerPolicy,
    FallbackPolicy,
    QueryRequest,
    QueryService,
    RetryPolicy,
)
from repro.service.resilience import (
    DEFAULT_CHAINS,
    is_backend_fault,
    is_retryable,
)


# -- classification helpers -----------------------------------------------------------


def test_is_retryable_is_exactly_the_transient_family():
    assert is_retryable(TransientBackendError("locked"))
    assert is_retryable(CircuitOpenError("open"))  # subclass of transient
    assert not is_retryable(QueryTimeoutError(0.1, 0.2))
    assert not is_retryable(BackendExecutionError("no such table: t"))
    assert not is_retryable(ValueError("boom"))


def test_is_backend_fault_excludes_semantic_errors_and_timeouts():
    assert is_backend_fault(TransientBackendError("locked"))
    assert is_backend_fault(BackendExecutionError("disk gone"))
    assert not is_backend_fault(QueryTimeoutError(0.1, 0.2))
    assert not is_backend_fault(ValueError("syntax error"))


# -- RetryPolicy ----------------------------------------------------------------------


def test_retry_policy_backs_off_exponentially_with_cap():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
    )
    error = TransientBackendError("locked")
    delays = [policy.next_delay(attempt, error, None) for attempt in (1, 2, 3, 4)]
    assert delays == [0.1, 0.2, 0.3, 0.3]  # capped at max_delay
    assert policy.next_delay(5, error, None) is None  # attempts exhausted


def test_retry_policy_never_retries_timeouts_or_permanent_errors():
    policy = RetryPolicy(max_attempts=10, jitter=0.0)
    assert policy.next_delay(1, QueryTimeoutError(0.1, 0.2), None) is None
    assert policy.next_delay(1, BackendExecutionError("no such table"), None) is None
    assert policy.next_delay(1, ValueError("boom"), None) is None


def test_retry_policy_is_deadline_aware():
    policy = RetryPolicy(max_attempts=5, base_delay=0.2, jitter=0.0)
    error = TransientBackendError("locked")
    assert policy.next_delay(1, error, remaining=1.0) == pytest.approx(0.2)
    # The backoff would eat the whole remaining budget: no retry.
    assert policy.next_delay(1, error, remaining=0.2) is None
    assert policy.next_delay(1, error, remaining=0.05) is None


def test_retry_policy_jitter_stays_within_band_and_is_seedable():
    policy = RetryPolicy(
        base_delay=0.1, jitter=0.5, max_attempts=3, rng=random.Random(42)
    )
    error = TransientBackendError("locked")
    for _ in range(50):
        delay = policy.next_delay(1, error, None)
        assert 0.05 <= delay <= 0.15


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# -- CircuitBreaker -------------------------------------------------------------------


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_walks_closed_open_half_open_closed():
    clock = _Clock()
    breaker = BreakerPolicy(
        failure_threshold=2, recovery_seconds=10.0, clock=clock
    ).build("sql")

    assert breaker.state == "closed"
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"  # threshold hit
    assert not breaker.allow()

    clock.now = 9.9
    assert not breaker.allow()  # recovery window not over
    clock.now = 10.0
    assert breaker.state == "half-open"
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()

    snapshot = breaker.snapshot()
    assert snapshot["state"] == "closed"
    assert snapshot["opened_total"] == 1
    assert snapshot["consecutive_failures"] == 0


def test_breaker_failed_probe_reopens_and_restarts_the_clock():
    clock = _Clock()
    breaker = BreakerPolicy(
        failure_threshold=1, recovery_seconds=5.0, clock=clock
    ).build("sql")
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now = 5.0
    assert breaker.allow()  # half-open probe
    breaker.record_failure()
    assert breaker.state == "open"
    clock.now = 9.0  # 4s into the *new* recovery window
    assert not breaker.allow()
    clock.now = 10.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"


def test_breaker_success_resets_the_failure_streak():
    breaker = BreakerPolicy(failure_threshold=3).build("sql")
    for _ in range(2):
        breaker.record_failure()
    breaker.record_success()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"  # streak never reached 3


# -- FallbackPolicy -------------------------------------------------------------------


def test_default_chains_degrade_toward_the_interpreted_floor():
    policy = FallbackPolicy()
    assert policy.chain_for("sql") == ("sql", "join-graph", "stacked")
    assert policy.chain_for("sql-stacked") == ("sql-stacked", "stacked")
    assert policy.chain_for("join-graph") == ("join-graph", "stacked")
    # Engines with no chain entry never degrade.
    assert policy.chain_for("stacked") == ("stacked",)
    assert policy.chain_for("auto") == ("auto",)
    assert set(DEFAULT_CHAINS) == {"sql", "sql-stacked", "join-graph"}


# -- QueryService wiring --------------------------------------------------------------


class _FlakySession:
    """A session double: per-engine scripted failures, then success.

    ``plan`` maps configuration name -> list of exceptions to raise (popped
    front-first); once a list is empty that engine succeeds with
    ``"ok:<engine>"``.
    """

    def __init__(self, plan=None):
        self.plan = {key: list(value) for key, value in (plan or {}).items()}
        self.calls = []
        self.lock = threading.Lock()

    def execute(self, source, bindings=None, timeout_seconds=None, configuration="auto"):
        with self.lock:
            self.calls.append(configuration)
            queued = self.plan.get(configuration)
            if queued:
                raise queued.pop(0)
        return f"ok:{configuration}"

    def cache_stats(self):
        return {"size": 0, "hits": 0, "misses": 0}


def _no_sleep(service):
    service._sleep = lambda _delay: None
    return service


def test_transient_errors_are_retried_to_success():
    stub = _FlakySession({"sql": [TransientBackendError("locked")] * 2})
    with _no_sleep(
        QueryService(stub, retry=RetryPolicy(max_attempts=3, jitter=0.0))
    ) as service:
        outcome = service.execute("q", configuration="sql")
        stats = service.service_stats()
    assert outcome == "ok:sql"
    assert stub.calls == ["sql", "sql", "sql"]
    assert stats["resilience"]["retries"] == 2
    assert stats["engines"]["sql"]["completed"] == 1
    assert stats["engines"]["sql"]["failed"] == 0


def test_retry_exhaustion_surfaces_the_error_raw_without_fallback():
    stub = _FlakySession({"sql": [TransientBackendError("locked")] * 5})
    with _no_sleep(
        QueryService(stub, retry=RetryPolicy(max_attempts=2, jitter=0.0))
    ) as service:
        with pytest.raises(TransientBackendError):
            service.execute("q", configuration="sql")
    assert stub.calls == ["sql", "sql"]


def test_timeouts_are_never_retried():
    stub = _FlakySession({"sql": [QueryTimeoutError(0.1, 0.2)]})
    with _no_sleep(
        QueryService(
            stub,
            retry=RetryPolicy(max_attempts=5, jitter=0.0),
            fallback=FallbackPolicy(),
        )
    ) as service:
        with pytest.raises(QueryTimeoutError):
            service.execute("q", configuration="sql")
        stats = service.service_stats()
    # One single call: no retry, and no fallback either — the budget is gone.
    assert stub.calls == ["sql"]
    assert stats["resilience"]["retries"] == 0
    assert stats["resilience"]["fallbacks"] == 0
    assert stats["engines"]["sql"]["timed_out"] == 1


def test_backend_fault_degrades_down_the_chain():
    stub = _FlakySession({"sql": [TransientBackendError("locked")] * 9})
    with _no_sleep(QueryService(stub, fallback=FallbackPolicy())) as service:
        outcome = service.execute("q", configuration="sql")
        stats = service.service_stats()
    assert outcome == "ok:join-graph"
    assert stub.calls == ["sql", "join-graph"]
    assert stats["resilience"]["fallbacks"] == 1
    assert stats["engines"]["sql"]["completed"] == 1  # keyed by *requested* engine


def test_degraded_outcome_is_labelled_on_real_outcome_objects():
    class _Outcome:
        degraded_from = None

    class _Session(_FlakySession):
        def execute(self, source, bindings=None, timeout_seconds=None,
                    configuration="auto"):
            super().execute(source, bindings, timeout_seconds, configuration)
            return _Outcome()

    stub = _Session({"sql": [TransientBackendError("locked")]})
    with _no_sleep(QueryService(stub, fallback=FallbackPolicy())) as service:
        outcome = service.execute("q", configuration="sql")
        stats = service.service_stats()
    assert outcome.degraded_from == "sql"
    assert stats["engines"]["sql"]["degraded"] == 1


def test_request_can_opt_out_of_fallback():
    stub = _FlakySession({"sql": [TransientBackendError("locked")] * 9})
    with _no_sleep(QueryService(stub, fallback=FallbackPolicy())) as service:
        with pytest.raises(TransientBackendError):
            service.submit_request(
                QueryRequest(source="q", configuration="sql", fallback=False)
            ).result()
    assert stub.calls == ["sql"]


def test_semantic_errors_never_degrade():
    stub = _FlakySession({"sql": [ValueError("unbound variable $x")] * 9})
    with _no_sleep(QueryService(stub, fallback=FallbackPolicy())) as service:
        with pytest.raises(ValueError):
            service.execute("q", configuration="sql")
        stats = service.service_stats()
    assert stub.calls == ["sql"]  # no other engine was burned
    assert stats["resilience"]["fallbacks"] == 0


def test_exhausted_chain_raises_degraded_execution_error():
    fault = TransientBackendError("locked")
    stub = _FlakySession(
        {"sql": [fault] * 9, "join-graph": [fault] * 9, "stacked": [fault] * 9}
    )
    with _no_sleep(QueryService(stub, fallback=FallbackPolicy())) as service:
        with pytest.raises(DegradedExecutionError) as excinfo:
            service.execute("q", configuration="sql")
        stats = service.service_stats()
    assert excinfo.value.engine == "sql"
    assert excinfo.value.attempted == ("sql", "join-graph", "stacked")
    assert excinfo.value.cause is fault
    assert stats["resilience"]["exhausted"] == 1
    assert stats["engines"]["sql"]["failed"] == 1


def test_breaker_opens_short_circuits_then_recovers_through_the_service():
    """The acceptance-criteria walk: open → half-open probe → closed again,
    observed end-to-end through QueryService with an injected clock."""
    clock = _Clock()
    stub = _FlakySession({"sql": [TransientBackendError("locked")] * 2})
    service = _no_sleep(
        QueryService(
            stub,
            breaker=BreakerPolicy(
                failure_threshold=2, recovery_seconds=30.0, clock=clock
            ),
        )
    )
    with service:
        # Two backend faults open the breaker.
        for _ in range(2):
            with pytest.raises(TransientBackendError):
                service.execute("q", configuration="sql")
        assert service.service_stats()["resilience"]["breakers"]["sql"][
            "state"
        ] == "open"

        # While open: requests shed without touching the session.
        calls_before = len(stub.calls)
        with pytest.raises(CircuitOpenError):
            service.execute("q", configuration="sql")
        assert len(stub.calls) == calls_before
        assert service.service_stats()["resilience"]["breaker_short_circuits"] == 1

        # Recovery window over: the half-open probe succeeds and closes it.
        clock.now = 30.0
        assert service.execute("q", configuration="sql") == "ok:sql"
        snapshot = service.service_stats()["resilience"]["breakers"]["sql"]
        assert snapshot["state"] == "closed"
        assert snapshot["opened_total"] == 1


def test_open_breaker_falls_back_to_the_next_engine():
    clock = _Clock()
    stub = _FlakySession({"sql": [TransientBackendError("locked")] * 2})
    service = _no_sleep(
        QueryService(
            stub,
            fallback=FallbackPolicy(),
            breaker=BreakerPolicy(failure_threshold=1, clock=clock),
        )
    )
    with service:
        # First request: sql faults (opens its breaker), join-graph serves.
        assert service.execute("q", configuration="sql") == "ok:join-graph"
        # Second request: sql is shed without an attempt; join-graph serves.
        calls_before = list(stub.calls)
        assert service.execute("q", configuration="sql") == "ok:join-graph"
        assert stub.calls == calls_before + ["join-graph"]
        stats = service.service_stats()
    assert stats["resilience"]["breaker_short_circuits"] == 1
    assert stats["resilience"]["fallbacks"] == 2


def test_resilience_defaults_off_preserve_raw_errors():
    stub = _FlakySession({"sql": [TransientBackendError("locked")]})
    with QueryService(stub) as service:  # no policies at all
        with pytest.raises(TransientBackendError):
            service.execute("q", configuration="sql")
        stats = service.service_stats()
    assert stub.calls == ["sql"]
    assert stats["resilience"] == {
        "retries": 0,
        "fallbacks": 0,
        "breaker_short_circuits": 0,
        "exhausted": 0,
        "breakers": {},
    }

"""QueryService unit tests: submission, batching, admission, metrics.

Determinism note: tests that need a query to *stay* in flight use a stub
session whose ``execute`` blocks on an event — no sleeps, no reliance on
real queries being slow.
"""

import threading

import pytest

from repro.core.session import Session
from repro.errors import (
    QueryTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service import QueryRequest, QueryService

XML = "<site><a><b>1</b><b>2</b></a><a><b>3</b></a></site>"
QUERY = 'doc("t.xml")/descendant::b'
PARAM_QUERY = (
    'declare variable $n as xs:decimal external; doc("t.xml")/descendant::b[. > $n]'
)

CONFIGURATIONS = ("auto", "stacked", "isolated", "join-graph", "sql", "sql-stacked")


@pytest.fixture()
def session():
    session = Session()
    session.register("t.xml", XML)
    return session


# -- the real stack through the service ----------------------------------------------


def test_submit_returns_future_with_serial_result(session):
    expected = session.execute(QUERY).items
    with QueryService(session, max_workers=2) as service:
        assert service.submit(QUERY).result().items == expected


def test_every_engine_configuration_matches_serial_execution(session):
    serial = {
        configuration: session.execute(QUERY, configuration=configuration).items
        for configuration in CONFIGURATIONS
    }
    with QueryService(session, max_workers=4) as service:
        for configuration in CONFIGURATIONS:
            outcome = service.execute(QUERY, configuration=configuration)
            assert outcome.items == serial[configuration], configuration


def test_execute_many_preserves_request_order(session):
    requests = [
        QueryRequest(source=QUERY, configuration="sql"),
        QueryRequest(source=PARAM_QUERY, bindings={"n": 1}, configuration="stacked"),
        QueryRequest(source=QUERY, configuration="join-graph"),
        QueryRequest(source=PARAM_QUERY, bindings={"n": 2}, configuration="sql"),
    ]
    serial = [
        session.execute(
            request.source,
            bindings=request.bindings,
            configuration=request.configuration,
        ).items
        for request in requests
    ]
    with QueryService(session, max_workers=4) as service:
        outcomes = service.execute_many(requests)
    assert [outcome.items for outcome in outcomes] == serial


def test_execute_many_accepts_strings_and_prepared_handles(session):
    prepared = session.prepare(PARAM_QUERY)
    expected_adhoc = session.execute(QUERY, configuration="sql").items
    expected_prepared = prepared.run({"n": 1}, engine="sql").items
    with QueryService(session) as service:
        adhoc, via_prepared = service.execute_many(
            [QUERY, QueryRequest(prepared=prepared, bindings={"n": 1})],
            configuration="sql",
        )
    assert adhoc.items == expected_adhoc
    # QueryRequest keeps its own configuration ("auto" resolves via the
    # join graph) — the point here is binding flow, not engine choice.
    assert set(via_prepared.items) == set(expected_prepared)


def test_execute_many_return_exceptions_keeps_batch(session):
    with QueryService(session) as service:
        good, bad = service.execute_many(
            [QUERY, "][ this does not parse"], return_exceptions=True
        )
    assert good.items
    assert isinstance(bad, Exception)


def test_batch_larger_than_max_in_flight_self_throttles(session):
    expected = session.execute(QUERY).items
    with QueryService(session, max_workers=2, max_in_flight=2) as service:
        outcomes = service.execute_many([QUERY] * 8)
    assert all(outcome.items == expected for outcome in outcomes)


def test_outcome_timings_expose_latency_breakdown(session):
    with QueryService(session) as service:
        outcome = service.execute(QUERY, configuration="sql")
    assert "execute" in outcome.timings and "decode" in outcome.timings
    assert outcome.elapsed_seconds >= 0.0


def test_request_validation():
    with pytest.raises(ValueError):
        QueryRequest()  # neither source nor prepared
    with pytest.raises(ValueError):
        QueryRequest(source=QUERY, prepared=object())  # both


# -- deterministic admission / metrics tests against a stub session -------------------


class _StubSession:
    """A session double whose queries block/fail on command."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.seen_timeouts = []

    def execute(self, source, bindings=None, timeout_seconds=None, configuration="auto"):
        self.seen_timeouts.append(timeout_seconds)
        if source == "block":
            self.started.set()
            assert self.release.wait(10), "test never released the blocked query"
            return "blocked-done"
        if source == "timeout":
            raise QueryTimeoutError(0.1, 0.2)
        if source == "boom":
            raise ValueError("boom")
        return f"ok:{source}"

    def cache_stats(self):
        return {"size": 0, "hits": 0, "misses": 0}


def test_admission_reject_raises_when_full():
    stub = _StubSession()
    service = QueryService(stub, max_workers=1, max_in_flight=1, admission="reject")
    try:
        blocked = service.submit("block")
        assert stub.started.wait(10)
        with pytest.raises(ServiceOverloadedError):
            service.submit("fast")
        stats = service.service_stats()
        assert stats["engines"]["auto"]["rejected"] == 1
        assert stats["in_flight"] == 1
    finally:
        stub.release.set()
        assert blocked.result(10) == "blocked-done"
        service.close()


def test_admission_block_waits_for_a_slot():
    stub = _StubSession()
    service = QueryService(stub, max_workers=1, max_in_flight=1, admission="block")
    try:
        service.submit("block")
        assert stub.started.wait(10)
        admitted = threading.Event()
        second: list = []

        def submit_second():
            second.append(service.submit("fast"))
            admitted.set()

        thread = threading.Thread(target=submit_second)
        thread.start()
        # The slot is taken: the second submit must still be waiting.
        assert not admitted.wait(0.2)
        stub.release.set()
        assert admitted.wait(10)
        thread.join()
        assert second[0].result(10) == "ok:fast"
    finally:
        stub.release.set()
        service.close()


def test_per_query_and_default_timeout_budgets_reach_the_engine():
    stub = _StubSession()
    with QueryService(stub, default_timeout_seconds=2.5) as service:
        service.execute("fast")                      # default budget
        service.execute("fast", timeout_seconds=0.5)  # per-request override
    assert stub.seen_timeouts == [2.5, 0.5]


def test_timeout_and_failure_metrics_are_separate():
    stub = _StubSession()
    with QueryService(stub) as service:
        with pytest.raises(QueryTimeoutError):
            service.execute("timeout")
        with pytest.raises(ValueError):
            service.execute("boom")
        service.execute("fast")
        stats = service.service_stats()["engines"]["auto"]
    assert stats["submitted"] == 3
    assert stats["completed"] == 1
    assert stats["timed_out"] == 1
    assert stats["failed"] == 1
    assert stats["rejected"] == 0


def test_closed_service_rejects_new_work():
    stub = _StubSession()
    service = QueryService(stub)
    service.close()
    service.close()  # idempotent
    with pytest.raises(ServiceClosedError):
        service.submit("fast")


def test_service_stats_surface_plan_cache(session):
    with QueryService(session) as service:
        service.execute(QUERY)
        service.execute(QUERY)
        stats = service.service_stats()
    assert stats["plan_cache"]["hits"] >= 1
    assert stats["engines"]["auto"]["completed"] == 2
    assert stats["in_flight"] == 0


def test_close_drain_waits_for_in_flight_then_shuts_down():
    """Graceful drain: admission stops immediately, in-flight work finishes."""
    stub = _StubSession()
    service = QueryService(stub, max_workers=2)
    blocked = service.submit("block")
    assert stub.started.wait(10)

    drained = threading.Event()

    def drain():
        service.close(drain=True, drain_timeout=10.0)
        drained.set()

    thread = threading.Thread(target=drain)
    thread.start()
    # Admission is already closed while the drain is still waiting...
    with pytest.raises(ServiceClosedError):
        service.submit("fast")
    # ...and the drain cannot have finished: the query is still in flight.
    assert not drained.wait(0.2)
    stub.release.set()
    assert drained.wait(10)
    thread.join()
    assert blocked.result(10) == "blocked-done"
    assert service.service_stats()["in_flight"] == 0


def test_close_drain_timeout_bounds_the_wait():
    """A straggler past the drain window must not wedge the shutdown."""
    stub = _StubSession()
    service = QueryService(stub, max_workers=1)
    blocked = service.submit("block")
    assert stub.started.wait(10)
    try:
        service.close(drain=True, drain_timeout=0.1)  # returns despite straggler
        assert service.closed
    finally:
        stub.release.set()
    assert blocked.result(10) == "blocked-done"  # straggler still completed


def test_execute_many_reject_mode_keeps_admitted_results():
    """Regression: a mid-batch ServiceOverloadedError must not discard the
    results of already-admitted requests when return_exceptions=True.

    Determinism: the blocked query is only released once *both* over-limit
    entries have provably been rejected (observed via service_stats) — the
    earlier version released as soon as the blocker started, racing the
    batch thread's remaining submissions against the freed slot.
    """
    import time

    stub = _StubSession()
    service = QueryService(stub, max_workers=1, max_in_flight=1, admission="reject")
    try:
        gathered: list = []
        done = threading.Event()

        def run_batch():
            gathered.extend(
                service.execute_many(
                    ["block", "fast", "fast"], return_exceptions=True
                )
            )
            done.set()

        thread = threading.Thread(target=run_batch)
        thread.start()
        assert stub.started.wait(10)   # first entry occupies the only slot
        deadline = time.monotonic() + 10
        while (
            service.service_stats()["engines"]["auto"]["rejected"] < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.002)
        assert service.service_stats()["engines"]["auto"]["rejected"] == 2
        stub.release.set()
        assert done.wait(10)
        thread.join()
    finally:
        stub.release.set()
        service.close()

    assert gathered[0] == "blocked-done"
    assert all(isinstance(item, ServiceOverloadedError) for item in gathered[1:])
    assert len(gathered) == 3
    assert service.service_stats()["engines"]["auto"]["rejected"] == 2

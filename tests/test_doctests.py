"""Run the public facade's docstring examples as part of tier-1.

CI additionally runs ``pytest --doctest-modules`` over the same modules;
this test keeps the examples honest for anyone running plain ``pytest``.
"""

import doctest

import pytest

import repro.core.pipeline
import repro.core.session
import repro.purexml.engine
import repro.relational.engine

FACADE_MODULES = [
    repro.core.pipeline,
    repro.core.session,
    repro.relational.engine,
    repro.purexml.engine,
]


@pytest.mark.parametrize("module", FACADE_MODULES, ids=lambda m: m.__name__)
def test_facade_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no runnable examples"
    assert results.failed == 0

"""Tests for statistics collection, selectivity estimation and the catalog."""

import pytest

from repro.errors import CatalogError
from repro.algebra.table import Table
from repro.relational.catalog import Database, database_from_encoding
from repro.relational.statistics import collect_table_stats


def test_column_stats_basics():
    table = Table(("a", "b"), [(1, "x"), (2, "x"), (2, None), (5, "y")])
    stats = collect_table_stats("t", table)
    a = stats.column("a")
    assert a.n_distinct == 3 and a.minimum == 1 and a.maximum == 5
    b = stats.column("b")
    assert b.n_nulls == 1


def test_equality_selectivity_uses_most_common():
    table = Table(("a",), [(1,)] * 90 + [(2,)] * 10)
    stats = collect_table_stats("t", table)
    assert stats.equality_selectivity("a", 1) == pytest.approx(0.9)
    assert stats.equality_selectivity("a", 2) == pytest.approx(0.1)


def test_range_selectivity_reasonable():
    table = Table(("a",), [(i,) for i in range(100)])
    stats = collect_table_stats("t", table)
    narrow = stats.range_selectivity("a", 90, None)
    wide = stats.range_selectivity("a", 10, None)
    assert narrow < wide


def test_catalog_create_and_errors(small_auction_doc_table):
    db = Database()
    db.create_table("doc", small_auction_doc_table)
    with pytest.raises(CatalogError):
        db.create_table("doc", small_auction_doc_table)
    db.create_index("i1", "doc", ("name", "pre"))
    with pytest.raises(CatalogError):
        db.create_index("i1", "doc", ("name",))
    assert db.indexes_on("doc") and db.index("i1").key_columns == ("name", "pre")
    db.drop_index("i1")
    with pytest.raises(CatalogError):
        db.index("i1")
    with pytest.raises(CatalogError):
        db.table("nope")


def test_database_from_encoding_installs_table_vi(small_auction_encoding):
    db = database_from_encoding(small_auction_encoding)
    assert "doc" in db.tables
    assert len(db.indexes_on("doc")) >= 6
    bare = database_from_encoding(small_auction_encoding, with_default_indexes=False)
    assert len(bare.indexes_on("doc")) == 1

"""Tests for the index advisor (Table VI)."""

from repro.core.joingraph import extract_join_graph
from repro.core.rewriter import isolate
from repro.relational.advisor import IndexAdvisor, TABLE_VI_INDEXES, create_table_vi_indexes
from repro.relational.btree import PRE_PLUS_SIZE
from repro.relational.catalog import Database, database_from_encoding
from repro.xquery.compiler import compile_query


def _graph(query):
    plan, _ = isolate(compile_query(query))
    return extract_join_graph(plan)


def test_table_vi_index_set_shape():
    names = [name for name, *_rest in TABLE_VI_INDEXES]
    assert "idx_nkpl" in names and "idx_p_nvkls" in names
    clustered = [entry for entry in TABLE_VI_INDEXES if entry[3]]
    assert len(clustered) == 1 and clustered[0][1] == ("pre",)


def test_advisor_proposes_name_prefixed_indexes():
    workload = [
        _graph('doc("auction.xml")/descendant::open_auction[bidder]'),
        _graph('doc("auction.xml")//open_auction[initial > 10]'),
    ]
    advisor = IndexAdvisor()
    recommendations = advisor.advise(workload)
    assert recommendations
    key_sets = [r.key_columns for r in recommendations]
    assert any(keys[0] == "name" for keys in key_sets)
    assert any("data" in keys for keys in key_sets)
    assert any(r.clustered for r in recommendations)
    report = advisor.report()
    assert "pre" in report


def test_advisor_apply_creates_usable_indexes(small_auction_encoding):
    db = database_from_encoding(small_auction_encoding, with_default_indexes=False)
    advisor = IndexAdvisor()
    advisor.advise([_graph('doc("auction.xml")/descendant::open_auction[bidder]')])
    created = advisor.apply(db)
    assert created
    from repro.relational.engine import RelationalEngine
    engine = RelationalEngine(db)
    result = engine.execute(_graph('doc("auction.xml")/descendant::open_auction[bidder]'))
    assert result.items()


def test_create_table_vi_indexes_idempotent(small_auction_encoding):
    db = database_from_encoding(small_auction_encoding, with_default_indexes=False)
    first = create_table_vi_indexes(db)
    second = create_table_vi_indexes(db)
    assert first and not second

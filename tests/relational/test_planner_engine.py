"""Tests for access-path selection, join ordering and execution."""

import pytest

from repro.core.rewriter import isolate
from repro.core.joingraph import extract_join_graph
from repro.relational.catalog import database_from_encoding
from repro.relational.engine import RelationalEngine
from repro.relational.physical.operators import IndexScan, IndexNestedLoopJoin, TableScan
from repro.xquery.compiler import compile_query


def _graph(query):
    plan, _ = isolate(compile_query(query))
    return extract_join_graph(plan)


@pytest.fixture(scope="module")
def engine(small_auction_encoding):
    return RelationalEngine(database_from_encoding(small_auction_encoding))


def test_q1_plan_uses_index_nested_loops(engine):
    graph = _graph('doc("auction.xml")/descendant::open_auction[bidder]')
    planned = engine.plan(graph)
    explain = planned.explain()
    assert "IXSCAN" in explain
    assert "NLJOIN" in explain
    assert "SORT" in explain and "RETURN" in explain


def test_selective_alias_is_joined_first(engine):
    graph = _graph('doc("auction.xml")//open_auction[@id = "2"]')
    planned = engine.plan(graph)
    # the @id='2' attribute alias is the most selective: it should not be last
    assert planned.join_order[0] in graph.aliases


def test_execution_matches_interpreter(engine, small_auction_doc_table):
    from repro.algebra.interpreter import evaluate_plan
    query = 'doc("auction.xml")/descendant::open_auction[bidder]'
    plan, _ = isolate(compile_query(query))
    expected = {
        row[0]
        for row in evaluate_plan(plan, small_auction_doc_table).project([("item", "item")]).rows
    }
    result = engine.execute(_graph(query))
    assert set(result.items()) == expected


def test_results_ordered_by_document_order(engine):
    result = engine.execute(_graph('doc("auction.xml")/descendant::bidder'))
    items = result.items()
    assert items == sorted(items)


def test_distinct_eliminates_duplicates(engine):
    result = engine.execute(_graph('doc("auction.xml")//open_auction/child::bidder/child::increase'))
    assert len(result.items()) == len(set(result.items()))


def test_without_indexes_falls_back_to_table_scan(small_auction_encoding):
    db = database_from_encoding(small_auction_encoding, with_default_indexes=False)
    db.drop_index("doc_pk_pre")
    engine = RelationalEngine(db)
    graph = _graph('doc("auction.xml")/descendant::open_auction')
    planned = engine.plan(graph)
    assert "TBSCAN" in planned.explain()
    assert set(engine.execute(graph).items())


def test_timeout_is_enforced(engine):
    from repro.errors import QueryTimeoutError
    graph = _graph('doc("auction.xml")//open_auction/child::bidder/child::increase')
    with pytest.raises(QueryTimeoutError):
        engine.execute(graph, timeout_seconds=0.0)

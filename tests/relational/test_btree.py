"""Tests (incl. property-based) for the B+-tree and composite-key index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.table import Table
from repro.relational.btree import BPlusTree, BTreeIndex, PRE_PLUS_SIZE


def _tree(values):
    return BPlusTree([((value,), (position,)) for position, value in enumerate(values)], order=8)


def test_full_scan_is_sorted():
    tree = _tree([5, 3, 9, 1, 7])
    keys = [key[0] for key, _payload in tree.scan_all()]
    assert keys == sorted(keys)


def test_range_scan_bounds():
    tree = _tree(list(range(100)))
    keys = [key[0] for key, _ in tree.scan_range((10,), (20,))]
    assert keys == list(range(10, 21))
    keys_exclusive = [key[0] for key, _ in tree.scan_range((10,), (20,), False, False)]
    assert keys_exclusive == list(range(11, 20))


def test_prefix_scan_composite_keys():
    entries = [((name, value), (value,)) for value in range(10) for name in ("a", "b")]
    tree = BPlusTree(entries, order=4)
    a_keys = [key for key, _ in tree.scan_range(("a",), ("a",))]
    assert len(a_keys) == 10 and all(key[0] == "a" for key in a_keys)


def test_range_scan_finds_duplicates_spanning_leaves():
    # Nine copies of the same key with order=8 split across two leaves; the
    # descent must land on the *first* leaf holding the key, not the last
    # (regression: bisect_right on separators skipped 8 of the 9 entries).
    tree = _tree([0] * 9)
    got = [key[0] for key, _ in tree.scan_range((0,), (0,))]
    assert got == [0] * 9


def test_height_grows_logarithmically():
    small = _tree(list(range(10)))
    large = _tree(list(range(5000)))
    assert large.height > small.height
    assert large.height <= 6


@settings(max_examples=50)
@given(st.lists(st.integers(-1000, 1000), max_size=300))
def test_tree_scan_matches_sorted_list(values):
    tree = _tree(values)
    assert [k[0] for k, _ in tree.scan_all()] == sorted(values)


@settings(max_examples=50)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=200),
    st.integers(0, 200),
    st.integers(0, 200),
)
def test_range_scan_matches_filter(values, a, b):
    low, high = min(a, b), max(a, b)
    tree = _tree(values)
    expected = sorted(v for v in values if low <= v <= high)
    got = [k[0] for k, _ in tree.scan_range((low,), (high,))]
    assert got == expected


def test_btree_index_build_and_lookup(small_auction_doc_table):
    index = BTreeIndex.build(
        "idx", "doc", small_auction_doc_table, ("name", "kind", "pre"), include_columns=("level",)
    )
    positions = list(index.lookup(("bidder", "ELEM")))
    names = [small_auction_doc_table.rows[p][small_auction_doc_table.column_index("name")] for p in positions]
    assert names == ["bidder"] * 3
    assert index.entry_count == len(small_auction_doc_table)


def test_btree_index_computed_pre_plus_size(small_auction_doc_table):
    index = BTreeIndex.build("idx_s", "doc", small_auction_doc_table, (PRE_PLUS_SIZE,))
    keys = [key[0] for key, _ in index.scan()]
    assert keys == sorted(keys)


def test_prefix_selectivity_monotone(small_auction_doc_table):
    index = BTreeIndex.build("idx2", "doc", small_auction_doc_table, ("kind", "name", "pre"))
    s1 = index.selectivity_of_prefix(1)
    s2 = index.selectivity_of_prefix(2)
    s3 = index.selectivity_of_prefix(3)
    assert s1 >= s2 >= s3
    assert index.describe().startswith("idx2 ON doc(")

"""Unit tests for the SQLite backend: schema, loading, execution, budgets."""

import gc

import pytest

from repro.errors import CatalogError, QueryTimeoutError
from repro.sqlbackend import ACCESS_PATH_INDEXES, SQLiteBackend
from repro.sqlbackend.decode import ordered_items, sequence_items
from repro.xmldb.encoding import encode_document
from repro.xmldb.parser import parse_xml


def _encoding(xml="<a><b>1</b><b>2</b></a>", uri="t.xml"):
    return encode_document(parse_xml(xml, uri=uri))


# -- schema bootstrap ---------------------------------------------------------------


def test_bootstrap_creates_doc_table_and_indexes():
    backend = SQLiteBackend()
    names = backend.indexes()
    for suffix, _keys in ACCESS_PATH_INDEXES:
        assert f"doc_idx_{suffix}" in names
    assert backend.row_count() == 0
    assert backend.loaded_rows == 0


def test_bootstrap_without_indexes():
    backend = SQLiteBackend(with_indexes=False)
    assert backend.indexes() == []


def test_pre_is_the_clustered_rowid():
    backend = SQLiteBackend.from_encoding(_encoding())
    rows = backend.execute("SELECT rowid, pre FROM doc ORDER BY pre").rows
    assert all(rowid == pre for rowid, pre in rows)


# -- loading ------------------------------------------------------------------------


def test_sync_mirrors_all_rows():
    encoding = _encoding()
    backend = SQLiteBackend()
    assert backend.sync(encoding) == len(encoding)
    assert backend.row_count() == len(encoding)
    mirrored = backend.execute("SELECT * FROM doc ORDER BY pre").rows
    assert mirrored == encoding.rows()


def test_sync_is_incremental_and_idempotent():
    encoding = _encoding()
    backend = SQLiteBackend()
    first = backend.sync(encoding)
    assert backend.sync(encoding) == 0  # no new rows -> no-op
    encoding.append_document(parse_xml("<c><d/></c>", uri="u.xml"))
    second = backend.sync(encoding)
    assert first + second == len(encoding) == backend.row_count()
    # pre stays a key across documents
    pres = [row[0] for row in backend.execute("SELECT pre FROM doc ORDER BY pre").rows]
    assert pres == list(range(len(encoding)))


def test_sync_rejects_a_different_encoding():
    backend = SQLiteBackend.from_encoding(_encoding())
    with pytest.raises(CatalogError):
        backend.sync(_encoding("<x/>", uri="other.xml"))


def test_sync_rejects_replacement_after_source_is_gone():
    backend = SQLiteBackend()
    encoding = _encoding()
    backend.sync(encoding)
    del encoding
    gc.collect()
    with pytest.raises(CatalogError):
        backend.sync(_encoding("<x/>", uri="other.xml"))


def test_file_backed_database_reopens(tmp_path):
    path = tmp_path / "mirror.db"
    encoding = _encoding()
    SQLiteBackend.from_encoding(encoding, path=path).close()
    reopened = SQLiteBackend(path=path)
    assert reopened.loaded_rows == len(encoding)
    assert reopened.sync(encoding) == 0  # already mirrored, nothing to load


def test_reopened_mirror_rejects_a_diverging_catalog(tmp_path):
    path = tmp_path / "mirror.db"
    SQLiteBackend.from_encoding(_encoding(), path=path).close()
    reopened = SQLiteBackend(path=path)
    # Same row count, different content: adopting it would silently serve
    # the old catalog's rows — the prefix check must refuse.
    other = _encoding("<a><b>1</b><c>2</c></a>", uri="t.xml")
    assert len(other) == reopened.loaded_rows
    with pytest.raises(CatalogError):
        reopened.sync(other)


def test_reopened_mirror_extends_a_matching_catalog(tmp_path):
    path = tmp_path / "mirror.db"
    encoding = _encoding()
    SQLiteBackend.from_encoding(encoding, path=path).close()
    encoding.append_document(parse_xml("<c><d/></c>", uri="u.xml"))
    reopened = SQLiteBackend(path=path)
    assert reopened.sync(encoding) == 3  # verified prefix, loaded only the tail (DOC+c+d)
    assert reopened.row_count() == len(encoding)


# -- execution ----------------------------------------------------------------------


def test_named_parameter_binding():
    backend = SQLiteBackend.from_encoding(_encoding())
    result = backend.execute(
        "SELECT pre FROM doc WHERE name = :tag ORDER BY pre", {"tag": "b"}
    )
    assert result.rows == [(2,), (4,)]
    assert result.columns == ("pre",)
    assert result.bindings == {"tag": "b"}


def test_name_lookup_uses_an_access_path_index():
    backend = SQLiteBackend.from_encoding(_encoding())
    plan = backend.query_plan(
        "SELECT pre FROM doc WHERE name = 'b' AND kind = 'ELEM' AND level = 1"
    )
    assert any("USING" in line and "INDEX" in line.upper() for line in plan), plan


def test_ancestor_range_can_use_the_expression_index():
    backend = SQLiteBackend.from_encoding(_encoding())
    # INDEXED BY makes SQLite error out ("no query solution") unless the
    # expression index actually matches the `pre + size` ancestor bound.
    plan = backend.query_plan(
        "SELECT pre FROM doc INDEXED BY doc_idx_nksp "
        "WHERE name = 'a' AND kind = 'ELEM' AND pre + size >= 4"
    )
    assert any("doc_idx_nksp" in line for line in plan), plan


def test_timeout_budget_aborts_execution():
    backend = SQLiteBackend()
    runaway = (
        "WITH RECURSIVE r(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM r) "
        "SELECT COUNT(*) FROM r"
    )
    with pytest.raises(QueryTimeoutError):
        backend.execute(runaway, timeout_seconds=0.05)
    # The budget machinery is disarmed afterwards: normal queries still run.
    assert backend.execute("SELECT 1").rows == [(1,)]


def test_context_manager_closes_connection():
    with SQLiteBackend() as backend:
        assert backend.execute("SELECT 1").rows == [(1,)]
    import sqlite3

    with pytest.raises(sqlite3.ProgrammingError):
        backend.execute("SELECT 1")


# -- decode -------------------------------------------------------------------------


def test_sequence_items_orders_by_pos_and_dedupes():
    columns = ("iter", "item", "pos")
    rows = [(1, 9, 2), (1, 4, 1), (1, 9, 3), (1, 4, 1)]
    assert sequence_items(columns, rows) == [4, 9]


def test_sequence_items_without_pos_keeps_row_order():
    assert sequence_items(("item",), [(7,), (3,), (7,)]) == [7, 3]


def test_ordered_items_projects_in_row_order():
    columns = ("item", "item1")
    rows = [(5, 1), (2, 2), (5, 3)]
    assert ordered_items(columns, rows) == [5, 2, 5]

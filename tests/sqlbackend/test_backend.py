"""Unit tests for the SQLite backend: schema, loading, execution, budgets."""

import gc
import sqlite3

import pytest

from repro.errors import (
    BackendClosedError,
    BackendExecutionError,
    CatalogError,
    MirrorIntegrityError,
    QueryTimeoutError,
    TransientBackendError,
)
from repro.sqlbackend import ACCESS_PATH_INDEXES, SQLiteBackend
from repro.sqlbackend.decode import ordered_items, sequence_items
from repro.xmldb.encoding import encode_document
from repro.xmldb.parser import parse_xml


def _encoding(xml="<a><b>1</b><b>2</b></a>", uri="t.xml"):
    return encode_document(parse_xml(xml, uri=uri))


# -- schema bootstrap ---------------------------------------------------------------


def test_bootstrap_creates_doc_table_and_indexes():
    backend = SQLiteBackend()
    names = backend.indexes()
    for suffix, _keys in ACCESS_PATH_INDEXES:
        assert f"doc_idx_{suffix}" in names
    assert backend.row_count() == 0
    assert backend.loaded_rows == 0


def test_bootstrap_without_indexes():
    backend = SQLiteBackend(with_indexes=False)
    assert backend.indexes() == []


def test_pre_is_the_clustered_rowid():
    backend = SQLiteBackend.from_encoding(_encoding())
    rows = backend.execute("SELECT rowid, pre FROM doc ORDER BY pre").rows
    assert all(rowid == pre for rowid, pre in rows)


# -- loading ------------------------------------------------------------------------


def test_sync_mirrors_all_rows():
    encoding = _encoding()
    backend = SQLiteBackend()
    assert backend.sync(encoding) == len(encoding)
    assert backend.row_count() == len(encoding)
    mirrored = backend.execute("SELECT * FROM doc ORDER BY pre").rows
    assert mirrored == encoding.rows()


def test_sync_is_incremental_and_idempotent():
    encoding = _encoding()
    backend = SQLiteBackend()
    first = backend.sync(encoding)
    assert backend.sync(encoding) == 0  # no new rows -> no-op
    encoding.append_document(parse_xml("<c><d/></c>", uri="u.xml"))
    second = backend.sync(encoding)
    assert first + second == len(encoding) == backend.row_count()
    # pre stays a key across documents
    pres = [row[0] for row in backend.execute("SELECT pre FROM doc ORDER BY pre").rows]
    assert pres == list(range(len(encoding)))


def test_sync_rejects_a_different_encoding():
    backend = SQLiteBackend.from_encoding(_encoding())
    with pytest.raises(CatalogError):
        backend.sync(_encoding("<x/>", uri="other.xml"))


def test_sync_rejects_replacement_after_source_is_gone():
    backend = SQLiteBackend()
    encoding = _encoding()
    backend.sync(encoding)
    del encoding
    gc.collect()
    with pytest.raises(CatalogError):
        backend.sync(_encoding("<x/>", uri="other.xml"))


def test_file_backed_database_reopens(tmp_path):
    path = tmp_path / "mirror.db"
    encoding = _encoding()
    SQLiteBackend.from_encoding(encoding, path=path).close()
    reopened = SQLiteBackend(path=path)
    assert reopened.loaded_rows == len(encoding)
    assert reopened.sync(encoding) == 0  # already mirrored, nothing to load


def test_reopened_mirror_rejects_a_diverging_catalog(tmp_path):
    path = tmp_path / "mirror.db"
    SQLiteBackend.from_encoding(_encoding(), path=path).close()
    reopened = SQLiteBackend(path=path)
    # Same row count, different content: adopting it would silently serve
    # the old catalog's rows — the prefix check must refuse.
    other = _encoding("<a><b>1</b><c>2</c></a>", uri="t.xml")
    assert len(other) == reopened.loaded_rows
    with pytest.raises(CatalogError):
        reopened.sync(other)


def test_reopened_mirror_extends_a_matching_catalog(tmp_path):
    path = tmp_path / "mirror.db"
    encoding = _encoding()
    SQLiteBackend.from_encoding(encoding, path=path).close()
    encoding.append_document(parse_xml("<c><d/></c>", uri="u.xml"))
    reopened = SQLiteBackend(path=path)
    assert reopened.sync(encoding) == 3  # verified prefix, loaded only the tail (DOC+c+d)
    assert reopened.row_count() == len(encoding)


# -- execution ----------------------------------------------------------------------


def test_named_parameter_binding():
    backend = SQLiteBackend.from_encoding(_encoding())
    result = backend.execute(
        "SELECT pre FROM doc WHERE name = :tag ORDER BY pre", {"tag": "b"}
    )
    assert result.rows == [(2,), (4,)]
    assert result.columns == ("pre",)
    assert result.bindings == {"tag": "b"}


def test_name_lookup_uses_an_access_path_index():
    backend = SQLiteBackend.from_encoding(_encoding())
    plan = backend.query_plan(
        "SELECT pre FROM doc WHERE name = 'b' AND kind = 'ELEM' AND level = 1"
    )
    assert any("USING" in line and "INDEX" in line.upper() for line in plan), plan


def test_ancestor_range_can_use_the_expression_index():
    backend = SQLiteBackend.from_encoding(_encoding())
    # INDEXED BY makes SQLite error out ("no query solution") unless the
    # expression index actually matches the `pre + size` ancestor bound.
    plan = backend.query_plan(
        "SELECT pre FROM doc INDEXED BY doc_idx_nksp "
        "WHERE name = 'a' AND kind = 'ELEM' AND pre + size >= 4"
    )
    assert any("doc_idx_nksp" in line for line in plan), plan


def test_timeout_budget_aborts_execution():
    backend = SQLiteBackend()
    runaway = (
        "WITH RECURSIVE r(i) AS (SELECT 1 UNION ALL SELECT i + 1 FROM r) "
        "SELECT COUNT(*) FROM r"
    )
    with pytest.raises(QueryTimeoutError):
        backend.execute(runaway, timeout_seconds=0.05)
    # The budget machinery is disarmed afterwards: normal queries still run.
    assert backend.execute("SELECT 1").rows == [(1,)]


def test_error_mentioning_interrupt_is_not_a_timeout():
    """Regression (PR 5, extended): timeouts were once classified by
    substring-matching "interrupt" in the error text; a legitimate error
    whose message happens to contain that word (an unknown table named
    ``interrupt_log``) must surface as a *permanent* error even while a
    budget is armed — not a timeout, and since PR 6's transient/permanent
    taxonomy, not a retryable TransientBackendError either."""
    backend = SQLiteBackend()
    with pytest.raises(BackendExecutionError) as excinfo:
        backend.execute("SELECT * FROM interrupt_log", timeout_seconds=5.0)
    assert "interrupt" in str(excinfo.value).lower()
    assert not isinstance(excinfo.value, QueryTimeoutError)
    assert not isinstance(excinfo.value, TransientBackendError)
    # The original driver exception stays reachable for diagnostics.
    assert isinstance(excinfo.value.cause, sqlite3.OperationalError)


def test_context_manager_closes_connection():
    with SQLiteBackend() as backend:
        assert backend.execute("SELECT 1").rows == [(1,)]
    # After close the backend fails with a library error, not a raw
    # sqlite3.ProgrammingError (regression: the seed leaked the latter).
    with pytest.raises(BackendClosedError):
        backend.execute("SELECT 1")


# -- decode -------------------------------------------------------------------------


def test_sequence_items_orders_by_pos_and_dedupes():
    columns = ("iter", "item", "pos")
    rows = [(1, 9, 2), (1, 4, 1), (1, 9, 3), (1, 4, 1)]
    assert sequence_items(columns, rows) == [4, 9]


def test_sequence_items_without_pos_keeps_row_order():
    assert sequence_items(("item",), [(7,), (3,), (7,)]) == [7, 3]


def test_ordered_items_keeps_first_occurrence_and_drops_nulls():
    # Value-join select lists carry extra ordering columns, so SQL's
    # DISTINCT dedupes full rows while the XQuery sequence dedupes items:
    # the decode keeps each item's first occurrence (same rule as
    # sequence_items).  NULL items (aggregate tails: avg over an empty
    # group) are dropped.
    columns = ("item", "item1")
    rows = [(5, 1), (2, 2), (None, 3), (5, 4)]
    assert ordered_items(columns, rows) == [5, 2]


# -- connection pool / lifecycle ----------------------------------------------------


def test_close_is_idempotent_and_sync_fails_after_close():
    backend = SQLiteBackend()
    encoding = _encoding()
    backend.sync(encoding)
    backend.close()
    backend.close()  # second close is a no-op, not an error
    with pytest.raises(BackendClosedError):
        backend.execute("SELECT 1")
    with pytest.raises(BackendClosedError):
        backend.sync(encoding)
    # BackendClosedError is part of the CatalogError family: one except
    # clause catches every backend misuse.
    assert issubclass(BackendClosedError, CatalogError)


def test_pooled_reads_from_many_threads_see_identical_rows():
    import threading

    backend = SQLiteBackend.from_encoding(_encoding())
    results = {}

    def read(i):
        results[i] = backend.execute("SELECT pre FROM doc WHERE name = 'b'").rows

    threads = [threading.Thread(target=read, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(rows == [(2,), (4,)] for rows in results.values()), results
    # Each thread got its own reader on top of the primary connection.
    assert backend.pool.size > 1
    backend.close()


def test_sync_invalidates_pooled_readers():
    import threading

    from repro.xmldb.encoding import DocumentEncoding

    encoding = DocumentEncoding()
    encoding.append_document(parse_xml("<a><b>1</b></a>", uri="one.xml"))
    backend = SQLiteBackend.from_encoding(encoding)

    counts = {}

    def count(i):
        counts[i] = backend.execute(
            "SELECT COUNT(*) FROM doc WHERE name = 'b'"
        ).rows[0][0]

    threads = [threading.Thread(target=count, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(value == 1 for value in counts.values())

    encoding.append_document(parse_xml("<x><b>2</b><b>3</b></x>", uri="two.xml"))
    backend.sync(encoding)

    threads = [threading.Thread(target=count, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(value == 3 for value in counts.values()), counts
    backend.close()


def test_write_statements_route_to_primary_and_invalidate_readers():
    import threading

    backend = SQLiteBackend.from_encoding(_encoding())
    # Reads on this thread now come from a pooled clone.
    assert backend.execute("SELECT COUNT(*) FROM doc").rows[0][0] == 6
    backend.execute("CREATE TABLE scratch (x INTEGER)")
    backend.execute("INSERT INTO scratch VALUES (41), (42)")
    # The DDL/DML ran on the primary and bumped the pool generation, so the
    # clone refreshes and sees the new table — from any thread.
    seen = {}

    def read(i):
        seen[i] = backend.execute("SELECT x FROM scratch ORDER BY x").rows

    read(0)
    thread = threading.Thread(target=read, args=(1,))
    thread.start()
    thread.join()
    assert seen[0] == seen[1] == [(41,), (42,)]
    backend.close()


def test_cte_prefixed_dml_routes_to_the_primary():
    """Regression: SQLite allows WITH-prefixed INSERT/UPDATE/DELETE — those
    must not run on a thread-private reader clone (the write would vanish
    with the clone at the next refresh)."""
    import threading

    backend = SQLiteBackend.from_encoding(_encoding())
    backend.execute("CREATE TABLE scratch2 (x INTEGER)")
    backend.execute(
        "WITH v(x) AS (VALUES (7), (8)) INSERT INTO scratch2 SELECT x FROM v"
    )
    seen = {}

    def read(i):
        seen[i] = backend.execute("SELECT x FROM scratch2 ORDER BY x").rows

    read(0)
    thread = threading.Thread(target=read, args=(1,))
    thread.start()
    thread.join()
    assert seen[0] == seen[1] == [(7,), (8,)]
    backend.close()


def test_dead_thread_readers_are_pruned():
    """A long-lived backend serving short-lived threads must not keep one
    clone per thread that ever existed."""
    import threading

    backend = SQLiteBackend.from_encoding(_encoding())
    for _ in range(10):
        thread = threading.Thread(
            target=lambda: backend.execute("SELECT COUNT(*) FROM doc")
        )
        thread.start()
        thread.join()
    # One more reader creation sweeps the dead threads' connections.
    backend.execute("SELECT 1")
    assert backend.pool.size <= 3  # primary + this thread (+ <=1 unswept)
    backend.close()


# -- driver-error classification ------------------------------------------------------


@pytest.mark.parametrize(
    "message, expected",
    [
        ("database is locked", TransientBackendError),
        ("database table is locked: doc", TransientBackendError),
        ("database is busy", TransientBackendError),
        ("disk I/O error", TransientBackendError),
        ("interrupted", TransientBackendError),
        ("database disk image is malformed", MirrorIntegrityError),
        ("file is not a database", MirrorIntegrityError),
        ("malformed database schema (doc_idx_name)", MirrorIntegrityError),
        ("no such table: missing", BackendExecutionError),
        ("near \"FROM\": syntax error", BackendExecutionError),
        # A genuine SQL error that merely *mentions* interrupt stays
        # permanent — only the bare "interrupted" message is the VM abort.
        ("no such table: interrupt_log", BackendExecutionError),
        ("interrupted transfer table missing", BackendExecutionError),
    ],
)
def test_classify_driver_error_table(message, expected):
    from repro.sqlbackend.backend import classify_driver_error

    original = sqlite3.OperationalError(message)
    classified = classify_driver_error(original)
    assert type(classified) is expected
    assert classified.cause is original
    # The taxonomy is strict: transient and integrity never overlap, and a
    # timeout is never produced by classification (that is the progress
    # handler's flag, not a message).
    assert not isinstance(classified, QueryTimeoutError)


def test_no_raw_sqlite_error_escapes_execute():
    backend = SQLiteBackend.from_encoding(_encoding())
    with pytest.raises(BackendExecutionError) as excinfo:
        backend.execute("SELECT * FROM nowhere")
    assert isinstance(excinfo.value.cause, sqlite3.Error)
    backend.close()


# -- fault injection at the pool boundary ---------------------------------------------


def test_clone_fault_does_not_leak_the_half_initialized_reader():
    """Regression: a clone failure inside _new_reader used to leave the
    fresh connection open and unregistered — unreachable but unclosed."""
    from repro.testing.faults import FaultPlan

    backend = SQLiteBackend.from_encoding(_encoding())
    baseline = backend.pool.size
    raised = {}
    with FaultPlan() as plan:
        plan.script(
            "mirror.clone", sqlite3.OperationalError("disk I/O error"), times=1
        )

        def probe():
            try:
                backend.execute("SELECT COUNT(*) FROM doc")
            except BaseException as error:
                raised["error"] = error

        import threading

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert plan.fired == {"mirror.clone": 1}
    assert isinstance(raised.get("error"), TransientBackendError)
    # The failed thread registered nothing; pool size is unchanged.
    assert backend.pool.size == baseline
    # And the pool still works for new threads.
    results = {}

    def read():
        results["rows"] = backend.execute("SELECT COUNT(*) FROM doc").rows

    import threading

    thread = threading.Thread(target=read)
    thread.start()
    thread.join()
    assert results["rows"] == [(len(_encoding()),)]
    backend.close()


def test_refresh_clone_fault_discards_the_stale_reader():
    """A clone fault during a *refresh* (stale generation) must drop the
    thread's reader entirely — the next acquire starts clean and succeeds."""
    from repro.testing.faults import FaultPlan

    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    backend.execute("SELECT COUNT(*) FROM doc")  # this thread now has a reader
    backend.pool.mark_changed()  # make it stale
    with FaultPlan() as plan:
        plan.script(
            "mirror.clone", sqlite3.OperationalError("disk I/O error"), times=1
        )
        with pytest.raises(TransientBackendError):
            backend.execute("SELECT COUNT(*) FROM doc")
    assert backend.execute("SELECT COUNT(*) FROM doc").rows == [(len(encoding),)]
    backend.close()


# -- integrity verification & self-healing --------------------------------------------


def test_verify_integrity_passes_on_a_healthy_mirror():
    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    assert backend.verify_integrity()
    assert backend.rebuilds == 0
    backend.close()


def test_verify_integrity_detects_silent_row_loss():
    """PRAGMA integrity_check cannot see a DELETE — the prefix check must."""
    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    with backend.pool.write_lock:
        backend.pool.primary.execute("DELETE FROM doc WHERE pre = 2")
        backend.pool.primary.commit()
    assert not backend.verify_integrity()
    backend.close()


def test_verify_integrity_detects_mutated_rows():
    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    with backend.pool.write_lock:
        backend.pool.primary.execute("UPDATE doc SET name = 'zzz' WHERE pre = 2")
        backend.pool.primary.commit()
    assert not backend.verify_integrity()
    backend.close()


def test_heal_rebuilds_a_damaged_mirror_and_queries_recover():
    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    expected = backend.execute("SELECT * FROM doc ORDER BY pre").rows
    with backend.pool.write_lock:
        backend.pool.primary.execute("DELETE FROM doc")
        backend.pool.primary.commit()
    backend.pool.mark_changed()
    assert backend.heal() is True
    assert backend.rebuilds == 1
    assert backend.heal() is False  # already healthy again
    assert backend.execute("SELECT * FROM doc ORDER BY pre").rows == expected
    assert backend.verify_integrity()
    backend.close()


def test_rebuild_without_an_encoding_raises_catalog_error():
    backend = SQLiteBackend()  # never synced: nothing canonical to copy
    with pytest.raises(CatalogError):
        backend.rebuild_mirror()
    backend.close()


def test_rebuild_invalidates_pooled_readers_in_other_threads():
    import threading

    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    seen = {}
    ready = threading.Event()
    go = threading.Event()

    def reader():
        seen["before"] = backend.execute("SELECT COUNT(*) FROM doc").rows
        ready.set()
        assert go.wait(10)
        seen["after"] = backend.execute("SELECT COUNT(*) FROM doc").rows

    thread = threading.Thread(target=reader)
    thread.start()
    assert ready.wait(10)
    backend.rebuild_mirror()
    go.set()
    thread.join()
    assert seen["before"] == seen["after"] == [(len(encoding),)]
    backend.close()


def test_file_backed_rebuild_quarantines_the_corrupt_file(tmp_path):
    path = tmp_path / "mirror.db"
    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding, path=path)
    expected = backend.execute("SELECT * FROM doc ORDER BY pre").rows
    with backend.pool.write_lock:
        backend.pool.primary.execute("DELETE FROM doc WHERE pre >= 2")
        backend.pool.primary.commit()
    assert not backend.verify_integrity()
    assert backend.heal() is True
    assert backend.execute("SELECT * FROM doc ORDER BY pre").rows == expected
    quarantined = tmp_path / "mirror.db.quarantined-0"
    assert quarantined.exists()
    # The quarantined image still holds the damaged state for post-mortems.
    leftovers = sqlite3.connect(quarantined)
    assert leftovers.execute("SELECT COUNT(*) FROM doc").fetchone()[0] < len(
        encoding
    )
    leftovers.close()
    backend.close()


def test_corruption_during_execute_triggers_auto_heal():
    """An injected malformed-image fault classifies as integrity, the
    backend rebuilds in place, and the surfaced error is *transient* — the
    retry layer's cue that a re-execution will hit a healthy mirror."""
    from repro.testing.faults import FaultPlan

    encoding = _encoding()
    backend = SQLiteBackend.from_encoding(encoding)
    with FaultPlan() as plan:
        plan.script(
            "backend.execute",
            sqlite3.DatabaseError("database disk image is malformed"),
            times=1,
        )
        with pytest.raises(TransientBackendError, match="rebuilt; retry"):
            backend.execute("SELECT COUNT(*) FROM doc")
        assert plan.fired == {"backend.execute": 1}
    assert backend.rebuilds == 1
    assert backend.execute("SELECT COUNT(*) FROM doc").rows == [(len(encoding),)]
    backend.close()


def test_corruption_with_no_encoding_left_surfaces_integrity_error():
    """When the canonical encoding is gone the rebuild is impossible — the
    integrity error must stand (not masquerade as transient)."""
    from repro.testing.faults import FaultPlan

    backend = SQLiteBackend.from_encoding(_encoding())
    gc.collect()  # drop the weakly-referenced encoding
    with FaultPlan() as plan:
        plan.script(
            "backend.execute",
            sqlite3.DatabaseError("database disk image is malformed"),
            times=1,
        )
        with pytest.raises(MirrorIntegrityError):
            backend.execute("SELECT COUNT(*) FROM doc")
    assert backend.rebuilds == 0
    backend.close()

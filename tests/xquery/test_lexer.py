"""Tests for the XQuery tokenizer."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery.lexer import tokenize


def _types(source):
    return [t.type for t in tokenize(source)]


def test_simple_path_tokens():
    tokens = tokenize('doc("a.xml")/descendant::open_auction')
    texts = [t.text for t in tokens]
    assert "doc" in texts and "a.xml" in texts and "::" in texts and "open_auction" in texts


def test_double_slash_vs_slash():
    assert "//" in [t.text for t in tokenize("$a//b")]
    assert "//" not in [t.text for t in tokenize("$a/b/c")]


def test_prefixed_names_keep_colon():
    texts = [t.text for t in tokenize("fs:ddo(fn:boolean($x))")]
    assert "fs:ddo" in texts and "fn:boolean" in texts


def test_axis_separator_not_swallowed():
    texts = [t.text for t in tokenize("child::bidder")]
    assert texts[:3] == ["child", "::", "bidder"]


def test_numbers_and_strings():
    tokens = tokenize("price > 500.5 and name = 'x'")
    kinds = {t.type for t in tokens}
    assert "number" in kinds and "string" in kinds


def test_comments_are_skipped():
    assert _types("(: comment :) $x") == ["$", "name", "eof"]


def test_keywords_classified():
    types = {t.text: t.type for t in tokenize("for x in y return z if then else where let")}
    assert types["for"] == "keyword" and types["where"] == "keyword"


@pytest.mark.parametrize("bad", ["'unterminated", "(: open comment", "#"])
def test_lexer_errors(bad):
    with pytest.raises(XQuerySyntaxError):
        tokenize(bad)

"""Tests for XQuery Core normalization."""

import pytest

from repro.errors import XQueryCompilationError
from repro.xquery import ast
from repro.xquery.ast import render
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery


def test_q1_normalization_matches_paper():
    expr = parse_xquery('doc("auction.xml")/descendant::open_auction[bidder]')
    core = normalize(expr)
    # for $dot in fs:ddo(doc(...)/descendant::open_auction)
    # return if (fn:boolean(fs:ddo($dot/child::bidder))) then $dot else ()
    assert isinstance(core, ast.ForExpr)
    assert isinstance(core.sequence, ast.FsDdo)
    body = core.body
    assert isinstance(body, ast.IfExpr)
    assert isinstance(body.condition, ast.FnBoolean)
    assert isinstance(body.then_branch, ast.VarRef) and body.then_branch.name == core.var
    text = render(core)
    assert "fs:ddo" in text and "fn:boolean" in text


def test_paths_wrapped_once():
    core = normalize(parse_xquery('doc("a.xml")/child::a/child::b/child::c'))
    assert isinstance(core, ast.FsDdo)
    inner = core.argument
    count = 0
    while isinstance(inner, ast.Step):
        count += 1
        inner = inner.input
    assert count == 3 and isinstance(inner, ast.Doc)


def test_conjunction_becomes_nested_ifs():
    core = normalize(parse_xquery('/dblp/phdthesis[year < "1994" and author and title]'), default_document="dblp.xml")
    body = core.body
    assert isinstance(body, ast.IfExpr)
    assert isinstance(body.then_branch, ast.IfExpr)
    assert isinstance(body.then_branch.then_branch, ast.IfExpr)


def test_where_becomes_if():
    core = normalize(parse_xquery("for $x in doc('d.xml')//a where $x/@id = 'k' return $x"))
    assert isinstance(core.body, ast.IfExpr)


def test_root_requires_default_document():
    with pytest.raises(XQueryCompilationError):
        normalize(parse_xquery("/site/people"))
    core = normalize(parse_xquery("/site/people"), default_document="auction.xml")
    base = core.argument
    while isinstance(base, ast.Step):
        base = base.input
    assert isinstance(base, ast.Doc) and base.uri == "auction.xml"


def test_context_item_outside_predicate_rejected():
    with pytest.raises(XQueryCompilationError):
        normalize(parse_xquery("./a"))


def test_predicate_context_replaced_by_variable():
    core = normalize(parse_xquery("doc('a.xml')//x[@id = 'k']"))
    condition = core.body.condition
    comparison = condition.argument
    assert isinstance(comparison, ast.Comparison)
    base = comparison.left
    while isinstance(base, ast.Step):
        base = base.input
    assert isinstance(base, ast.VarRef) and base.name == core.var


def test_literals_preserved():
    core = normalize(parse_xquery("doc('a.xml')//x[price > 500]"))
    comparison = core.body.condition.argument
    assert isinstance(comparison.right, ast.NumberLiteral)

def test_exists_in_condition_is_plain_existence_test():
    core = normalize(
        parse_xquery("for $p in doc('s.xml')//p where fn:exists($p/w) return $p")
    )
    body = core.body
    assert isinstance(body, ast.IfExpr)
    assert isinstance(body.condition, ast.FnBoolean)
    # No Exists node survives normalization.
    assert "exists" not in render(core)


def test_empty_desugars_to_count_comparison():
    core = normalize(
        parse_xquery("for $p in doc('s.xml')//p where fn:empty($p/w) return $p")
    )
    comparison = core.body.condition.argument
    assert isinstance(comparison, ast.Comparison) and comparison.op == "="
    assert isinstance(comparison.left, ast.Aggregate)
    assert comparison.left.function == "count"
    assert isinstance(comparison.right, ast.NumberLiteral) and comparison.right.value == 0


def test_some_desugars_to_witness_loop():
    core = normalize(
        parse_xquery(
            "for $p in doc('s.xml')//p "
            "where some $w in $p/w satisfies $w/text() = 'k' return $p"
        )
    )
    condition = core.body.condition
    assert isinstance(condition, ast.FnBoolean)
    witness = condition.argument
    assert isinstance(witness, ast.ForExpr) and witness.var == "w"
    assert isinstance(witness.body, ast.IfExpr)


def test_every_desugars_to_zero_violation_count():
    core = normalize(
        parse_xquery(
            "for $p in doc('s.xml')//p "
            "where every $w in $p/w satisfies $w/text() = 'k' return $p"
        )
    )
    comparison = core.body.condition.argument
    assert isinstance(comparison.left, ast.Aggregate)
    violations = comparison.left.argument
    assert isinstance(violations, ast.ForExpr)
    # The violation loop tests the *negated* comparison.
    negated = violations.body.condition.argument
    assert isinstance(negated, ast.Comparison) and negated.op == "!="


def test_every_over_conjunction_rejected():
    with pytest.raises(XQueryCompilationError):
        normalize(
            parse_xquery(
                "for $p in doc('s.xml')//p "
                "where every $w in $p/w satisfies $w/a = 1 and $w/b = 2 return $p"
            )
        )


def test_exists_outside_condition_position_rejected():
    with pytest.raises(XQueryCompilationError):
        normalize(parse_xquery("for $p in doc('s.xml')//p return fn:exists($p/w)"))


def test_order_key_survives_normalization():
    core = normalize(
        parse_xquery(
            "for $p in doc('s.xml')//p order by $p/name/text() return $p"
        )
    )
    assert isinstance(core, ast.ForExpr)
    assert core.order_key is not None
    # The key path is normalized like any sequence expression (ddo-wrapped).
    assert isinstance(core.order_key, ast.FsDdo)

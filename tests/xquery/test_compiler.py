"""Tests for the loop-lifting compiler (Fig. 13)."""

import pytest

from repro.errors import XQueryCompilationError
from repro.algebra.dag import count_operators, node_count, operator_histogram
from repro.algebra.interpreter import evaluate_plan
from repro.algebra.operators import Distinct, DocTable, Join, RowId, RowRank, Serialize
from repro.xquery.compiler import CompilerSettings, LoopLiftingCompiler, compile_query


def test_compiled_plan_has_iter_pos_item_interface():
    plan = compile_query('doc("auction.xml")/descendant::open_auction')
    assert isinstance(plan, Serialize)
    assert set(plan.columns) == {"iter", "pos", "item"}


def test_single_shared_doc_instance():
    plan = compile_query('doc("auction.xml")/descendant::open_auction[bidder]')
    assert count_operators(plan, DocTable) == 1


def test_q1_plan_profile_matches_fig4():
    plan = compile_query('doc("auction.xml")/descendant::open_auction[bidder]')
    histogram = operator_histogram(plan)
    # Stacked plans scatter joins and blocking operators throughout (Fig. 4).
    assert histogram["Join"] >= 5
    assert histogram["RowRank"] >= 4
    assert histogram["Distinct"] >= 3
    assert histogram["RowId"] == 1


def test_for_rule_introduces_row_id():
    plan = compile_query('for $x in doc("a.xml")//a return $x/child::b')
    assert count_operators(plan, RowId) == 1


def test_unbound_variable_rejected():
    with pytest.raises(XQueryCompilationError):
        compile_query("$nope/child::a")


def test_standalone_literal_rejected():
    compiler = LoopLiftingCompiler()
    from repro.xquery import ast
    with pytest.raises(XQueryCompilationError):
        compiler.compile(ast.StringLiteral("x"))


def test_serialization_step_adds_descendant_or_self():
    settings = CompilerSettings(add_serialization_step=True)
    plan_with = compile_query('doc("auction.xml")//open_auction', settings)
    plan_without = compile_query('doc("auction.xml")//open_auction')
    assert node_count(plan_with) > node_count(plan_without)


def test_q1_results_on_small_document(small_auction_doc_table, small_auction_encoding):
    plan = compile_query('doc("auction.xml")/descendant::open_auction[bidder]')
    result = evaluate_plan(plan, small_auction_doc_table)
    items = sorted({row[result.column_index("item")] for row in result.rows})
    names = [small_auction_encoding.record(item).name for item in items]
    assert names == ["open_auction", "open_auction"]
    assert len(items) == 2


def test_comparison_against_string_literal(small_auction_doc_table, small_auction_encoding):
    plan = compile_query('doc("auction.xml")//open_auction[@id = "2"]')
    result = evaluate_plan(plan, small_auction_doc_table)
    items = {row[result.column_index("item")] for row in result.rows}
    assert len(items) == 1
    (item,) = items
    assert small_auction_encoding.record(item).name == "open_auction"


def test_numeric_comparison_uses_data_column(small_auction_doc_table):
    plan = compile_query('doc("auction.xml")//open_auction[initial > 10]')
    result = evaluate_plan(plan, small_auction_doc_table)
    assert len({row[result.column_index("item")] for row in result.rows}) == 2


def test_nested_for_order_by_document_order(small_auction_doc_table):
    plan = compile_query('for $a in doc("auction.xml")//open_auction return $a/child::bidder')
    result = evaluate_plan(plan, small_auction_doc_table)
    items = [row[result.column_index("item")] for row in result.rows]
    assert len(items) == 3

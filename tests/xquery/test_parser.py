"""Tests for the XQuery parser."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


def test_q1_shape():
    expr = parse_xquery('doc("auction.xml")/descendant::open_auction[bidder]')
    assert isinstance(expr, ast.Filter)
    step = expr.input
    assert isinstance(step, ast.Step) and step.axis == "descendant"
    assert isinstance(step.input, ast.Doc) and step.input.uri == "auction.xml"
    predicate = expr.predicate
    assert isinstance(predicate, ast.Step) and predicate.node_test == "bidder"


def test_abbreviations():
    expr = parse_xquery("$a//closed_auction/price/@id")
    assert isinstance(expr, ast.Step) and expr.axis == "attribute"
    price = expr.input
    assert price.axis == "child" and price.node_test == "price"
    closed = price.input
    assert closed.axis == "descendant"


def test_leading_slash_and_kind_test():
    expr = parse_xquery("/site/people/person/name/text()")
    assert expr.node_test == "text()"
    base = expr
    while isinstance(base, ast.Step):
        base = base.input
    assert isinstance(base, ast.Root)


def test_flwor_with_multiple_for_and_where():
    expr = parse_xquery(
        "for $x in doc('d.xml')//a, $y in doc('d.xml')//b where $x/@i = $y/@j return $x"
    )
    assert isinstance(expr, ast.ForExpr)
    inner = expr.body
    assert isinstance(inner, ast.ForExpr)
    assert isinstance(inner.body, ast.IfExpr)
    assert isinstance(inner.body.condition, ast.Comparison)


def test_let_binding():
    expr = parse_xquery('let $a := doc("x.xml") return $a/child::b')
    assert isinstance(expr, ast.LetExpr) and expr.var == "a"


def test_if_requires_empty_else():
    expr = parse_xquery("if ($x/b) then $x else ()")
    assert isinstance(expr, ast.IfExpr)
    with pytest.raises(XQuerySyntaxError):
        parse_xquery("if ($x/b) then $x else $y")


def test_predicate_with_and_and_comparison():
    expr = parse_xquery('/dblp/phdthesis[year < "1994" and author and title]')
    assert isinstance(expr, ast.Filter)
    assert isinstance(expr.predicate, ast.AndExpr)


def test_comparison_with_numeric_literal():
    expr = parse_xquery("$a//closed_auction[price > 500]")
    comparison = expr.predicate
    assert isinstance(comparison, ast.Comparison)
    assert isinstance(comparison.right, ast.NumberLiteral) and comparison.right.value == 500


def test_explicit_axes():
    expr = parse_xquery("$x/ancestor::site")
    assert expr.axis == "ancestor"
    with pytest.raises(XQuerySyntaxError):
        parse_xquery("$x/sideways::a")


def test_or_rejected():
    with pytest.raises(XQuerySyntaxError):
        parse_xquery("if ($a or $b) then $a else ()")


def test_trailing_garbage_rejected():
    with pytest.raises(XQuerySyntaxError):
        parse_xquery("$a $b")


def test_wildcard_and_attribute_wildcard():
    expr = parse_xquery("/dblp/*")
    assert expr.node_test == "*" and expr.axis == "child"

def test_order_by_parses_onto_for():
    expr = parse_xquery(
        'for $p in doc("s.xml")//person order by $p/name/text() return $p'
    )
    assert isinstance(expr, ast.ForExpr)
    assert expr.order_key is not None
    assert isinstance(expr.order_key, ast.Step)


def test_order_by_accepts_explicit_ascending():
    expr = parse_xquery(
        'for $p in doc("s.xml")//person order by $p/name ascending return $p'
    )
    assert expr.order_key is not None


def test_order_by_rejects_descending_and_multiple_keys():
    with pytest.raises(XQuerySyntaxError):
        parse_xquery('for $p in doc("s.xml")//a order by $p/b descending return $p')
    with pytest.raises(XQuerySyntaxError):
        parse_xquery('for $p in doc("s.xml")//a order by $p/b, $p/c return $p')


def test_order_by_requires_single_for_binding():
    with pytest.raises(XQuerySyntaxError):
        parse_xquery(
            'for $a in doc("s.xml")//a, $b in doc("s.xml")//b '
            "order by $a/k return $a"
        )


def test_order_and_by_stay_legal_element_names():
    expr = parse_xquery('doc("s.xml")/child::order/child::by')
    assert expr.node_test == "by"
    assert expr.input.node_test == "order"


def test_quantified_expressions_parse():
    expr = parse_xquery(
        'for $p in doc("s.xml")//person '
        'where some $w in $p/watch satisfies $w/text() = "i1" return $p'
    )
    # The where clause keeps the surface Quantified node until normalization.
    quantified = expr.body
    while not isinstance(quantified, ast.Quantified):
        quantified = (
            quantified.condition
            if isinstance(quantified, ast.IfExpr)
            else quantified.body
        )
    assert quantified.quantifier == "some" and quantified.var == "w"
    assert isinstance(quantified.predicate, ast.Comparison)


def test_every_and_satisfies_keywords():
    expr = parse_xquery(
        'for $p in doc("s.xml")//person '
        "where every $w in $p/watch satisfies $w/text() return $p"
    )
    assert isinstance(expr, ast.ForExpr)


def test_quantifier_rejects_multiple_bindings():
    with pytest.raises(XQuerySyntaxError):
        parse_xquery(
            'for $p in doc("s.xml")//p '
            "where some $a in $p/x, $b in $p/y satisfies $a = $b return $p"
        )


def test_exists_and_empty_parse_with_and_without_prefix():
    for name in ("exists", "fn:exists"):
        expr = parse_xquery(f'doc("s.xml")//person[{name}(watch)]')
        assert isinstance(expr.predicate, ast.Exists)
    for name in ("empty", "fn:empty"):
        expr = parse_xquery(f'doc("s.xml")//person[{name}(watch)]')
        assert isinstance(expr.predicate, ast.Empty)


def test_some_and_every_stay_legal_element_names():
    expr = parse_xquery('doc("s.xml")/child::some/child::every')
    assert expr.node_test == "every"
    assert expr.input.node_test == "some"

"""External variable declarations: prolog parsing, substitution, compilation."""

import pytest

from repro.errors import (
    XQueryBindingError,
    XQueryCompilationError,
    XQuerySyntaxError,
)
from repro.xquery import ast
from repro.xquery.ast import (
    ExternalVar,
    ExternalVariable,
    bind_external_variables,
    check_bindings,
)
from repro.xquery.compiler import LoopLiftingCompiler
from repro.xquery.lexer import tokenize
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_module, parse_xquery


# -- lexing -----------------------------------------------------------------------


def test_lexer_prolog_tokens():
    tokens = tokenize("declare variable $x as xs:decimal external;")
    kinds = [(token.type, token.text) for token in tokens]
    assert ("keyword", "declare") in kinds
    assert ("keyword", "variable") in kinds
    assert ("keyword", "as") in kinds
    assert ("keyword", "external") in kinds
    assert (";", ";") in kinds
    assert ("name", "xs:decimal") in kinds


def test_prolog_keywords_still_work_as_element_names():
    expr = parse_xquery('doc("a.xml")/child::variable/child::external')
    assert isinstance(expr, ast.Step)
    assert expr.node_test == "external"


def test_prolog_keywords_still_work_as_variable_names():
    """Regression: promoting declare/variable/external/as to keywords must
    not break ``$variable``-style names or FLWOR bindings using them."""
    expr = parse_xquery('for $variable in doc("t.xml")/child::a return $variable')
    assert isinstance(expr, ast.ForExpr)
    assert expr.var == "variable"
    assert expr.body == ast.VarRef("variable")
    let = parse_xquery('let $as := doc("t.xml")/child::a return $as')
    assert isinstance(let, ast.LetExpr) and let.var == "as"


def test_path_starting_with_declare_element():
    """A lone ``declare`` is an element name; only ``declare variable``
    opens a prolog declaration."""
    expr = parse_xquery("declare/child::x")
    assert isinstance(expr, ast.Step)
    assert expr.node_test == "x"
    inner = expr.input
    assert isinstance(inner, ast.Step) and inner.node_test == "declare"


# -- parsing ----------------------------------------------------------------------


def test_parse_module_without_prolog():
    module = parse_module('doc("a.xml")/descendant::b')
    assert module.externals == ()
    assert isinstance(module.body, ast.Step)


def test_parse_module_declarations_and_substitution():
    module = parse_module(
        "declare variable $lo as xs:decimal external;"
        "declare variable $tag external;"
        'for $b in doc("a.xml")/descendant::b '
        "where $b/child::c > $lo and $b/child::d = $tag return $b"
    )
    assert module.externals == (
        ExternalVariable("lo", "xs:decimal"),
        ExternalVariable("tag", None),
    )
    rendered = ast.render(module.body)
    assert "$lo" in rendered and "$tag" in rendered
    found = set()

    def walk(expr):
        if isinstance(expr, ExternalVar):
            found.add((expr.name, expr.xs_type))
        for child in ast.child_expressions(expr):
            walk(child)

    walk(module.body)
    assert found == {("lo", "xs:decimal"), ("tag", None)}


def test_for_binding_shadows_external_of_same_name():
    module = parse_module(
        "declare variable $x external;"
        'for $x in doc("a.xml")/descendant::b return $x'
    )
    body = module.body
    assert isinstance(body, ast.ForExpr)
    assert body.body == ast.VarRef("x")  # shadowed: still a VarRef, not ExternalVar


def test_duplicate_declaration_rejected():
    with pytest.raises(XQuerySyntaxError, match="duplicate"):
        parse_module(
            "declare variable $x external; declare variable $x external; //b"
        )


def test_unsupported_type_annotation_rejected():
    with pytest.raises(XQuerySyntaxError, match="unsupported external variable type"):
        parse_module("declare variable $x as xs:date external; //b")


def test_parse_xquery_rejects_external_declarations():
    with pytest.raises(XQuerySyntaxError, match="external variable"):
        parse_xquery("declare variable $x external; //b")


# -- bindings validation ------------------------------------------------------------


DECLS = (ExternalVariable("n", "xs:decimal"), ExternalVariable("s", None))


def test_check_bindings_normalizes_numerics_to_float():
    values = check_bindings(DECLS, {"n": 5, "s": "x"})
    assert values == {"n": 5.0, "s": "x"}
    assert isinstance(values["n"], float)


def test_check_bindings_missing_and_unknown():
    with pytest.raises(XQueryBindingError, match=r"missing binding.*\$s"):
        check_bindings(DECLS, {"n": 1})
    with pytest.raises(XQueryBindingError, match=r"undeclared.*\$oops"):
        check_bindings(DECLS, {"n": 1, "s": "x", "oops": 2})


def test_check_bindings_type_errors():
    with pytest.raises(XQueryBindingError, match="xs:decimal"):
        check_bindings(DECLS, {"n": "5", "s": "x"})
    with pytest.raises(XQueryBindingError, match="as xs:decimal"):
        # Binding a number to an untyped (string) external suggests the fix.
        check_bindings(DECLS, {"n": 1, "s": 7})
    with pytest.raises(XQueryBindingError):
        check_bindings((ExternalVariable("b", "xs:integer"),), {"b": True})


def test_integer_types_require_integral_values():
    decls = (ExternalVariable("k", "xs:integer"),)
    assert check_bindings(decls, {"k": 3})["k"] == 3.0
    assert check_bindings(decls, {"k": 3.0})["k"] == 3.0
    with pytest.raises(XQueryBindingError, match="non-integral"):
        check_bindings(decls, {"k": 2.5})
    with pytest.raises(XQueryBindingError, match="non-integral"):
        check_bindings(decls, {"k": float("nan")})
    # xs:decimal keeps accepting fractional values.
    assert check_bindings((ExternalVariable("k", "xs:decimal"),), {"k": 2.5})["k"] == 2.5


def test_bind_external_variables_substitutes_literals():
    module = parse_module(
        "declare variable $n as xs:decimal external; //b[. > $n]"
    )
    bound = bind_external_variables(module.body, {"n": 2.0})
    rendered = ast.render(bound)
    assert "$n" not in rendered
    assert "2" in rendered


# -- normalization + compilation -----------------------------------------------------


def test_normalize_keeps_external_vars():
    module = parse_module("declare variable $n as xs:decimal external; //b[. > $n]")
    core = normalize(module.body, default_document="a.xml")
    assert "$n" in ast.render(core)


def _compiled_parameters(plan):
    from repro.algebra.dag import iter_nodes
    from repro.algebra.operators import Join, Select

    names = set()
    for node in iter_nodes(plan):
        if isinstance(node, (Select, Join)):
            names |= node.predicate.parameters()
    return names


def test_compiler_emits_parameter_slots():
    module = parse_module(
        "declare variable $n as xs:decimal external; "
        'doc("a.xml")/descendant::b[. > $n]'
    )
    core = normalize(module.body)
    plan = LoopLiftingCompiler().compile(core)
    assert _compiled_parameters(plan) == {"n"}


def test_typed_parameter_targets_data_untyped_targets_value():
    from repro.algebra.dag import iter_nodes
    from repro.algebra.operators import Select
    from repro.algebra.predicates import ColumnRef, Parameter

    def column_for(source):
        module = parse_module(source)
        plan = LoopLiftingCompiler().compile(normalize(module.body))
        for node in iter_nodes(plan):
            if isinstance(node, Select) and node.predicate.parameters():
                (conjunct,) = node.predicate.conjuncts
                assert isinstance(conjunct.right, Parameter)
                assert isinstance(conjunct.left, ColumnRef)
                return conjunct.left.name
        raise AssertionError("no parameterized selection in the plan")

    numeric = 'declare variable $v as xs:decimal external; doc("a.xml")/descendant::b[. > $v]'
    untyped = 'declare variable $v external; doc("a.xml")/descendant::b[. = $v]'
    assert column_for(numeric) == "data"
    assert column_for(untyped) == "value"


def test_standalone_external_variable_rejected():
    module = parse_module("declare variable $x external; $x")
    with pytest.raises(XQueryCompilationError, match="comparison operand"):
        LoopLiftingCompiler().compile(normalize(module.body))

"""Front-end tests for the widened fragment: aggregates + positional predicates."""

import pytest

from repro.errors import XQueryCompilationError, XQuerySyntaxError
from repro.algebra.operators import GroupAggregate, Select
from repro.algebra.dag import find_nodes
from repro.xquery.ast import (
    Aggregate,
    Filter,
    NumberLiteral,
    PositionFilter,
    Step,
)
from repro.xquery.compiler import CompilerSettings, compile_query
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery


SETTINGS = CompilerSettings(default_document="t.xml")


# -- parsing --------------------------------------------------------------------------


def test_aggregate_function_calls_parse():
    for spelling in ("count", "fn:count", "sum", "fn:sum", "avg", "fn:avg"):
        expr = parse_xquery(f"{spelling}(//b)")
        assert isinstance(expr, Aggregate)
        assert expr.function == spelling.removeprefix("fn:")
        assert isinstance(expr.argument, Step)


def test_count_remains_a_legal_element_name():
    """Only a following '(' makes ``count`` a function call."""
    path = parse_xquery("//count")
    assert isinstance(path, Step)
    assert path.node_test == "count"
    nested = parse_xquery("child::sum/child::avg")
    assert isinstance(nested, Step)
    assert nested.node_test == "avg"


def test_aggregate_requires_an_argument():
    with pytest.raises(XQuerySyntaxError):
        parse_xquery("count()")


def test_numeric_predicate_parses_as_filter():
    expr = parse_xquery("//b[2]")
    assert isinstance(expr, Filter)
    assert isinstance(expr.predicate, NumberLiteral)


# -- normalization --------------------------------------------------------------------


def test_numeric_predicate_normalizes_to_position_filter():
    core = normalize(parse_xquery("//b[2]"), default_document="t.xml")
    filters = [core] if isinstance(core, PositionFilter) else []
    assert filters and filters[0].position == 2.0
    assert filters[0].parameter is None


def test_numeric_external_predicate_normalizes_to_parameter_position():
    from repro.xquery.parser import parse_module

    module = parse_module(
        "declare variable $n as xs:integer external; //b[$n]"
    )
    core = normalize(module.body, default_document="t.xml")
    assert isinstance(core, PositionFilter)
    assert core.parameter == "n"
    assert core.position is None


def test_aggregate_argument_is_normalized_in_sequence_position():
    core = normalize(parse_xquery("count(//b)"), default_document="t.xml")
    assert isinstance(core, Aggregate)
    # The path argument got the usual fs:ddo wrapping.
    from repro.xquery.ast import FsDdo

    assert isinstance(core.argument, FsDdo)


# -- compilation ----------------------------------------------------------------------


def test_aggregate_compiles_to_group_aggregate():
    plan = compile_query("count(//b)", SETTINGS)
    aggregates = find_nodes(plan, lambda n: isinstance(n, GroupAggregate))
    assert len(aggregates) == 1
    assert aggregates[0].function == "count"
    assert aggregates[0].value_column is None
    assert aggregates[0].unit_column == "item"


def test_sum_compiles_with_a_value_column():
    plan = compile_query("sum(//b)", SETTINGS)
    (aggregate,) = find_nodes(plan, lambda n: isinstance(n, GroupAggregate))
    assert aggregate.function == "sum"
    assert aggregate.value_column is not None


def test_positional_predicate_compiles_to_a_pos_selection():
    plan = compile_query("//b[2]", SETTINGS)
    selections = find_nodes(
        plan,
        lambda n: isinstance(n, Select) and "pos" in n.predicate.columns(),
    )
    assert selections


def test_non_integral_position_compiles_to_empty():
    from repro.algebra.operators import LiteralTable

    plan = compile_query("//b[2.5]", SETTINGS)
    literals = find_nodes(
        plan, lambda n: isinstance(n, LiteralTable) and not n.rows
    )
    assert literals


def test_aggregate_versus_path_comparison_is_rejected():
    with pytest.raises(XQueryCompilationError):
        compile_query("//a[count(child::b) = child::c]", SETTINGS)


def test_aggregate_versus_literal_comparison_compiles():
    plan = compile_query("//a[count(child::b) > 1]", SETTINGS)
    assert find_nodes(plan, lambda n: isinstance(n, GroupAggregate))


def test_literal_on_left_of_aggregate_comparison_compiles():
    """Regression: '1 < count(...)' passed the literal as the aggregate
    operand (the swap keyed on left_literal instead of left_aggregate)."""
    plan = compile_query("//a[1 < count(child::b)]", SETTINGS)
    assert find_nodes(plan, lambda n: isinstance(n, GroupAggregate))


def test_aggregate_versus_aggregate_comparison_is_rejected():
    with pytest.raises(XQueryCompilationError):
        compile_query("//a[count(child::b) = count(child::c)]", SETTINGS)

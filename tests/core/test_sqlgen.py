"""SQL emission fixes: literal rendering, deterministic row ids, join order.

Covers the satellite repairs that make the emitted SQL *executable* on a
real RDBMS: Python ``True``/``False``/``None`` leaking into SQL text, the
nondeterministic ``ROW_NUMBER() OVER ()``, and the CROSS JOIN order hint
of ``render_join_graph``.
"""

import sqlite3

import pytest

from repro.errors import JoinGraphError
from repro.algebra.operators import Attach, LiteralTable, RowId, Select, Serialize
from repro.algebra.predicates import Comparison, Predicate, column, const
from repro.core.joingraph import ConstantTerm, extract_join_graph
from repro.core.rewriter import isolate
from repro.core.sqlgen import _sql_literal, generate_stacked_sql, render_join_graph
from repro.sqlbackend import SQLiteBackend
from repro.xquery.compiler import compile_query


# -- _sql_literal -------------------------------------------------------------------


@pytest.mark.parametrize(
    "value, rendered",
    [
        (True, "1"),
        (False, "0"),
        (None, "NULL"),
        (42, "42"),
        (1.5, "1.5"),
        ("plain", "'plain'"),
        ("O'Hara", "'O''Hara'"),
    ],
)
def test_sql_literal_renders_valid_sql(value, rendered):
    assert _sql_literal(value) == rendered


@pytest.mark.parametrize(
    "value, rendered",
    [(True, "1"), (False, "0"), (None, "NULL"), ("O'Hara", "'O''Hara'"), (7, "7")],
)
def test_constant_term_renders_valid_sql(value, rendered):
    assert ConstantTerm(value).render() == rendered


def test_attached_boolean_and_null_render_as_sql(tmp_path):
    plan = Attach(Attach(LiteralTable(("iter",), [(1,)]), "flag", True), "gap", None)
    sql = generate_stacked_sql(plan)
    assert "True" not in sql and "None" not in sql
    # The rendered text must actually execute on a stock RDBMS.
    rows = sqlite3.connect(":memory:").execute(sql).fetchall()
    assert rows == [(1, 1, None)]


def test_predicate_literals_render_as_sql():
    plan = Select(
        LiteralTable(("iter", "flag"), [(1, 1), (2, 0)]),
        Predicate.of(Comparison(column("flag"), "=", const(True))),
    )
    sql = generate_stacked_sql(plan)
    assert "= 1" in sql and "True" not in sql
    assert sqlite3.connect(":memory:").execute(sql).fetchall() == [(1, 1)]


# -- deterministic ROW_NUMBER ------------------------------------------------------


def test_rowid_rendering_orders_over_input_columns():
    plan = RowId(LiteralTable(("v",), [(3,), (1,), (2,)]), "rid")
    sql = generate_stacked_sql(plan)
    assert "ROW_NUMBER() OVER ()" not in sql
    assert "ROW_NUMBER() OVER (ORDER BY v)" in sql
    rows = sqlite3.connect(":memory:").execute(sql).fetchall()
    assert sorted(rows) == [(1, 1), (2, 2), (3, 3)]  # ids follow the v order


def test_stacked_sql_has_no_unordered_window():
    stacked = compile_query(
        'for $a in doc("auction.xml")/descendant::open_auction return $a/child::initial'
    )
    sql = generate_stacked_sql(stacked)
    assert "OVER ()" not in sql


# -- join order hints ---------------------------------------------------------------


def _graph(query='doc("auction.xml")/descendant::open_auction[bidder]'):
    plan, _report = isolate(compile_query(query))
    return extract_join_graph(plan)


def test_render_join_graph_with_explicit_join_order():
    graph = _graph()
    hinted = render_join_graph(graph, join_order=list(reversed(graph.aliases)))
    assert "CROSS JOIN" in hinted
    # Same SELECT/WHERE content, different FROM shape.
    default = render_join_graph(graph)
    assert hinted.splitlines()[0] == default.splitlines()[0]
    assert default.count("doc AS") == hinted.count("doc AS")


def test_render_join_graph_rejects_non_permutations():
    graph = _graph()
    with pytest.raises(JoinGraphError):
        render_join_graph(graph, join_order=graph.aliases[:-1])
    with pytest.raises(JoinGraphError):
        render_join_graph(graph, join_order=graph.aliases + ["d99"])


def test_join_order_variants_agree_on_sqlite(small_auction_encoding):
    backend = SQLiteBackend.from_encoding(small_auction_encoding)
    graph = _graph()
    default = backend.execute(render_join_graph(graph)).rows
    hinted = backend.execute(
        render_join_graph(graph, join_order=list(reversed(graph.aliases)))
    ).rows
    assert default == hinted
    assert default  # the small document has qualifying auctions

"""SQL emission fixes: literal rendering, deterministic row ids, join order.

Covers the satellite repairs that make the emitted SQL *executable* on a
real RDBMS: Python ``True``/``False``/``None`` leaking into SQL text, the
nondeterministic ``ROW_NUMBER() OVER ()``, and the CROSS JOIN order hint
of ``render_join_graph``.
"""

import sqlite3

import pytest

from repro.errors import JoinGraphError
from repro.algebra.operators import Attach, LiteralTable, RowId, Select, Serialize
from repro.algebra.predicates import Comparison, Predicate, column, const
from repro.core.joingraph import ConstantTerm, extract_join_graph
from repro.core.rewriter import isolate
from repro.core.sqlgen import _sql_literal, generate_stacked_sql, render_join_graph
from repro.sqlbackend import SQLiteBackend
from repro.xquery.compiler import compile_query


# -- _sql_literal -------------------------------------------------------------------


@pytest.mark.parametrize(
    "value, rendered",
    [
        (True, "1"),
        (False, "0"),
        (None, "NULL"),
        (42, "42"),
        (1.5, "1.5"),
        ("plain", "'plain'"),
        ("O'Hara", "'O''Hara'"),
    ],
)
def test_sql_literal_renders_valid_sql(value, rendered):
    assert _sql_literal(value) == rendered


@pytest.mark.parametrize(
    "value, rendered",
    [(True, "1"), (False, "0"), (None, "NULL"), ("O'Hara", "'O''Hara'"), (7, "7")],
)
def test_constant_term_renders_valid_sql(value, rendered):
    assert ConstantTerm(value).render() == rendered


def test_attached_boolean_and_null_render_as_sql(tmp_path):
    plan = Attach(Attach(LiteralTable(("iter",), [(1,)]), "flag", True), "gap", None)
    sql = generate_stacked_sql(plan)
    assert "True" not in sql and "None" not in sql
    # The rendered text must actually execute on a stock RDBMS.
    rows = sqlite3.connect(":memory:").execute(sql).fetchall()
    assert rows == [(1, 1, None)]


def test_predicate_literals_render_as_sql():
    plan = Select(
        LiteralTable(("iter", "flag"), [(1, 1), (2, 0)]),
        Predicate.of(Comparison(column("flag"), "=", const(True))),
    )
    sql = generate_stacked_sql(plan)
    assert "= 1" in sql and "True" not in sql
    assert sqlite3.connect(":memory:").execute(sql).fetchall() == [(1, 1)]


# -- deterministic ROW_NUMBER ------------------------------------------------------


def test_rowid_rendering_orders_over_input_columns():
    plan = RowId(LiteralTable(("v",), [(3,), (1,), (2,)]), "rid")
    sql = generate_stacked_sql(plan)
    assert "ROW_NUMBER() OVER ()" not in sql
    assert "ROW_NUMBER() OVER (ORDER BY v)" in sql
    rows = sqlite3.connect(":memory:").execute(sql).fetchall()
    assert sorted(rows) == [(1, 1), (2, 2), (3, 3)]  # ids follow the v order


def test_stacked_sql_has_no_unordered_window():
    stacked = compile_query(
        'for $a in doc("auction.xml")/descendant::open_auction return $a/child::initial'
    )
    sql = generate_stacked_sql(stacked)
    assert "OVER ()" not in sql


# -- join order hints ---------------------------------------------------------------


def _graph(query='doc("auction.xml")/descendant::open_auction[bidder]'):
    plan, _report = isolate(compile_query(query))
    return extract_join_graph(plan)


def test_render_join_graph_with_explicit_join_order():
    graph = _graph()
    hinted = render_join_graph(graph, join_order=list(reversed(graph.aliases)))
    assert "CROSS JOIN" in hinted
    # Same SELECT/WHERE content, different FROM shape.
    default = render_join_graph(graph)
    assert hinted.splitlines()[0] == default.splitlines()[0]
    assert default.count("doc AS") == hinted.count("doc AS")


def test_render_join_graph_rejects_non_permutations():
    graph = _graph()
    with pytest.raises(JoinGraphError):
        render_join_graph(graph, join_order=graph.aliases[:-1])
    with pytest.raises(JoinGraphError):
        render_join_graph(graph, join_order=graph.aliases + ["d99"])


def test_join_order_variants_agree_on_sqlite(small_auction_encoding):
    backend = SQLiteBackend.from_encoding(small_auction_encoding)
    graph = _graph()
    default = backend.execute(render_join_graph(graph)).rows
    hinted = backend.execute(
        render_join_graph(graph, join_order=list(reversed(graph.aliases)))
    ).rows
    assert default == hinted
    assert default  # the small document has qualifying auctions


# -- windowed-rank determinism ------------------------------------------------------


def test_windowed_rank_is_join_order_invariant(small_auction_encoding):
    """DENSE_RANK ranks must not depend on the FROM clause's join order.

    The positional window is computed in its own derived table over the
    rank's pinned alias/condition prefix — never over the full SFW block —
    so pinning the CROSS JOIN order (any permutation) may change the access
    path but must return bit-for-bit identical rows.  This is the
    regression gate for the windowed-rank isolation of the coverage-matrix
    close: a rank accidentally computed over the joined result would shift
    with row arrival order and break exactly this test.
    """
    backend = SQLiteBackend.from_encoding(small_auction_encoding)
    graph = _graph(
        "for $a in doc(\"auction.xml\")/descendant::open_auction "
        "return $a/child::bidder[2]"
    )
    assert graph.windows, "the positional predicate must compile to a window"
    default_sql = render_join_graph(graph)
    assert "DENSE_RANK() OVER" in default_sql
    default = backend.execute(default_sql).rows
    assert default  # the small document has auctions with a second bidder
    permutations = [
        list(reversed(graph.aliases)),
        graph.aliases[1:] + graph.aliases[:1],  # rotation
        graph.aliases[-1:] + graph.aliases[:-1],
    ]
    for order in permutations:
        pinned_sql = render_join_graph(graph, join_order=order)
        assert "CROSS JOIN" in pinned_sql
        assert backend.execute(pinned_sql).rows == default, order


def test_windowed_rank_scope_excludes_downstream_joins(small_auction_encoding):
    """The window ranks over its own condition prefix, not the full block.

    A downstream join partner (here the ``increase`` child the result
    projects) must not constrain the window subquery: joining bidders to
    their ``increase`` children *before* ranking would eliminate
    increase-less bidders and renumber everyone after the gap.  The
    bidder-to-increase ancestor join therefore appears only in the outer
    block, never inside the derived window table.
    """
    graph = _graph(
        "for $a in doc(\"auction.xml\")/descendant::open_auction "
        "return $a/child::bidder[1]/child::increase"
    )
    assert graph.windows
    sql = render_join_graph(graph)
    subquery = sql[sql.index("(SELECT") : sql.index(") AS w1")]
    outer = sql[sql.index(") AS w1") :]
    # d2=bidder, d1=increase: the step join is outer-only.
    assert "d2.pre < d1.pre" not in subquery
    assert "d2.pre < d1.pre" in outer
    # ...and the ranking itself partitions/orders only on auction/bidder.
    over = subquery[subquery.index("DENSE_RANK") : subquery.index(" AS rnk")]
    assert "d1" not in over

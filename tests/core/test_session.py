"""Session / DocumentStore: multi-document catalogs and prepared queries."""

import pytest

from repro.errors import CatalogError, XQueryBindingError
from repro.core.session import DocumentStore, Session
from repro.xmldb.parser import parse_xml

BOOKS = "<books><book><title>AA</title></book><book><title>BB</title></book></books>"
AUCTION = (
    "<site><open_auction><initial>15</initial></open_auction>"
    "<open_auction><initial>7</initial></open_auction></site>"
)


@pytest.fixture()
def session():
    s = Session()
    s.register("books.xml", BOOKS)
    s.register("auction.xml", AUCTION)
    return s


# -- DocumentStore ----------------------------------------------------------------


def test_store_registers_multiple_documents():
    store = DocumentStore()
    first = store.register_xml("a.xml", "<a/>")
    second = store.register_xml("b.xml", "<b><c/></b>")
    assert first == 0 and second > first
    assert set(store.document_uris()) == {"a.xml", "b.xml"}
    assert "a.xml" in store and len(store) == 2
    # pre ranks continue across documents; both DOC rows are resolvable.
    assert store.encoding.document_root("a.xml") == first
    assert store.encoding.document_root("b.xml") == second


def test_store_rejects_duplicates_and_anonymous_documents():
    store = DocumentStore()
    store.register_xml("a.xml", "<a/>")
    with pytest.raises(CatalogError, match="already registered"):
        store.register_xml("a.xml", "<a/>")
    with pytest.raises(CatalogError, match="document node"):
        doc = parse_xml("<a/>", uri="x.xml")
        store.register_document(doc.children[0])


# -- query routing ------------------------------------------------------------------


def test_doc_function_targets_the_named_document(session):
    books = session.execute('doc("books.xml")/descendant::title')
    auctions = session.execute('doc("auction.xml")/descendant::initial')
    assert books.node_count == 2
    assert auctions.node_count == 2
    # Serialization proves the items belong to the right documents.
    assert "<title>" in session.serialize(sorted(books.items))
    assert "<initial>" in session.serialize(sorted(auctions.items))


def test_session_without_documents_refuses_queries():
    with pytest.raises(CatalogError, match="no registered documents"):
        Session().execute("//a")


# -- prepared queries across catalog growth ------------------------------------------


def test_prepared_query_survives_document_registration(session):
    prepared = session.prepare(
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::initial[. > $lo]'
    )
    before = prepared.run({"lo": 10}).items
    assert len(before) == 1
    # Growing the catalog must not invalidate the handle, the cached plan,
    # or the pre ranks of already-registered documents (append-only).
    session.register("more.xml", "<more><initial>99</initial></more>")
    misses = session.plan_cache.stats()["misses"]
    after = prepared.run({"lo": 10}).items
    assert after == before
    assert session.plan_cache.stats()["misses"] == misses
    # And the new document is immediately queryable.
    assert session.execute('doc("more.xml")/descendant::initial').node_count == 1


def test_plan_cache_is_shared_across_processor_refreshes(session):
    query = 'doc("books.xml")/descendant::title'
    session.execute(query)
    misses = session.plan_cache.stats()["misses"]
    session.register("extra.xml", "<x/>")
    session.execute(query)  # processor rebuilt, compilation reused
    stats = session.plan_cache.stats()
    assert stats["misses"] == misses
    assert stats["hits"] >= 1


def test_prepared_binding_validation(session):
    prepared = session.prepare(
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::initial[. > $lo]'
    )
    with pytest.raises(XQueryBindingError, match="missing binding"):
        prepared.run()
    with pytest.raises(XQueryBindingError, match="undeclared"):
        prepared.run({"lo": 1, "hi": 2})
    with pytest.raises(XQueryBindingError, match="xs:decimal"):
        prepared.run({"lo": "cheap"})


def test_prepared_explain_requires_bindings(session):
    from repro.errors import PlanningError

    prepared = session.prepare(
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::initial[. > $lo]'
    )
    assert prepared.join_graph_sql is not None
    assert ":lo" in prepared.join_graph_sql  # unbound marker in the SQL text
    assert "RETURN" in prepared.explain({"lo": 10})
    # The raw (unbound) graph refuses to plan: slots must be bound first.
    with pytest.raises(PlanningError, match=":lo"):
        session.processor.engine.plan(prepared.compilation.join_graph)


def test_purexml_engine_over_store(session):
    engine = session.purexml_engine("books.xml")
    prepared = engine.prepare(
        "declare variable $t external; "
        'doc("books.xml")/descendant::title[. = $t]'
    )
    assert [n.string_value() for n in prepared.run({"t": "BB"}).nodes] == ["BB"]
    assert prepared.run({"t": "nope"}).node_count == 0

"""Driver equivalence, pinned XMark histograms, ablations, and provenance.

The worklist driver must be an *optimisation only*: on every runnable
XMark query it has to apply the identical rule sequence, record the
identical rejections, and produce the identical plan as the legacy
restart-from-root driver.  The histograms below are additionally **pinned**
— a change to any count is a behaviour change of the rewrite system and
must be deliberate, not incidental.

Also covered here: cleanup-phase rules never reject (their premises are
purely local, so the global operator invariants cannot trip), the
non-convergence ``RewriteError`` message is diagnosable (histogram + last
applications), each ``enable_*`` ablation knob produces its documented
degraded plan shape, and ``CompilationResult.rewrite_trace`` surfaces the
full provenance.
"""

import itertools
import re

import pytest

from repro.errors import RewriteError
from repro.algebra.dag import count_operators, node_count
from repro.algebra.operators import Distinct, Join, RowRank
from repro.algebra.render import render_plan
from repro.bench.xmark import XMARK_SUITE
from repro.core.rewrite import CLEANUP_GROUP, RANK_GROUP, RuleContext
from repro.core.rewriter import JoinGraphIsolation, isolate
from repro.xquery.compiler import CompilerSettings, compile_query

SETTINGS = CompilerSettings(default_document="auction.xml")

RUNNABLE = tuple(case for case in XMARK_SUITE if case.refusal is None)

CLEANUP_RULE_NAMES = frozenset(rule.name for rule in CLEANUP_GROUP)

#: ``rules_fired()`` for every runnable XMark query — identical for both
#: drivers, pinned so histogram drift is a deliberate act, not an accident.
PINNED_HISTOGRAMS = {
    "Q1": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 9,
        "project_const_source": 16,
        "project_fuse": 20,
        "prune_attach(3)": 21,
        "prune_project(4)": 19,
        "prune_rank(2)": 8,
        "prune_rowid(1)": 1,
        "rank_prune_const(13)": 1,
        "rank_to_project(12)": 1,
        "remove_distinct(6)": 3,
    },
    "Q2": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 7,
        "project_const_source": 9,
        "project_fuse": 17,
        "prune_attach(3)": 13,
        "prune_project(4)": 13,
        "prune_rank(2)": 6,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 2,
    },
    "Q3": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 14,
        "project_const_source": 9,
        "project_fuse": 31,
        "prune_attach(3)": 16,
        "prune_project(4)": 33,
        "prune_rank(2)": 10,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 5,
    },
    "Q4": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 12,
        "project_const_source": 10,
        "project_fuse": 30,
        "prune_attach(3)": 16,
        "prune_project(4)": 40,
        "prune_rank(2)": 9,
        "prune_rowid(1)": 2,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 5,
    },
    "Q5": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 8,
        "project_const_source": 11,
        "project_fuse": 19,
        "prune_attach(3)": 15,
        "prune_project(4)": 21,
        "prune_rank(2)": 8,
        "prune_rowid(1)": 1,
        "remove_distinct(6)": 4,
    },
    "Q6": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 4,
        "project_const_source": 7,
        "project_fuse": 12,
        "prune_attach(3)": 11,
        "prune_project(4)": 10,
        "prune_rank(2)": 4,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 1,
    },
    "Q8": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 15,
        "project_const_source": 10,
        "project_fuse": 35,
        "prune_attach(3)": 18,
        "prune_project(4)": 36,
        "prune_rank(2)": 11,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 3,
    },
    "Q9": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 29,
        "project_const_source": 12,
        "project_fuse": 60,
        "prune_attach(3)": 23,
        "prune_project(4)": 83,
        "prune_rank(2)": 17,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 4,
        "remove_distinct(6)": 7,
    },
    "Q10": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 17,
        "project_const_source": 9,
        "project_fuse": 39,
        "prune_attach(3)": 16,
        "prune_project(4)": 45,
        "prune_rank(2)": 11,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 3,
        "remove_distinct(6)": 4,
    },
    "Q11": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 16,
        "project_const_source": 10,
        "project_fuse": 37,
        "prune_attach(3)": 17,
        "prune_project(4)": 42,
        "prune_rank(2)": 10,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 3,
        "remove_distinct(6)": 4,
    },
    "Q12": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 19,
        "project_const_source": 11,
        "project_fuse": 42,
        "prune_attach(3)": 20,
        "prune_project(4)": 43,
        "prune_rank(2)": 12,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 3,
        "remove_distinct(6)": 6,
    },
    "Q13": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 5,
        "project_const_source": 12,
        "project_fuse": 11,
        "prune_attach(3)": 14,
        "prune_project(4)": 6,
        "prune_rank(2)": 5,
        "rank_prune_const(13)": 1,
        "rank_to_project(12)": 1,
    },
    "Q15": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 7,
        "project_const_source": 16,
        "project_fuse": 15,
        "prune_attach(3)": 18,
        "prune_project(4)": 8,
        "prune_rank(2)": 7,
        "rank_prune_const(13)": 1,
        "rank_to_project(12)": 1,
    },
    "Q16": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 10,
        "project_const_source": 9,
        "project_fuse": 25,
        "prune_attach(3)": 12,
        "prune_project(4)": 28,
        "prune_rank(2)": 9,
        "prune_rowid(1)": 1,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 3,
    },
    "Q17": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 7,
        "project_const_source": 9,
        "project_fuse": 19,
        "prune_attach(3)": 15,
        "prune_project(4)": 18,
        "prune_rank(2)": 6,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 3,
    },
    "Q19": {
        "cross_to_attach(5)": 1,
        "introduce_distinct(8)": 1,
        "key_join_collapse(9*)": 8,
        "project_const_source": 9,
        "project_fuse": 18,
        "prune_attach(3)": 12,
        "prune_project(4)": 13,
        "prune_rank(2)": 7,
        "rank_prune_const(13)": 2,
        "rank_to_project(12)": 2,
        "remove_distinct(6)": 2,
    },
    "Q20": {
        "cross_to_attach(5)": 1,
        "key_join_collapse(9*)": 8,
        "project_const_source": 12,
        "project_fuse": 18,
        "prune_attach(3)": 16,
        "prune_project(4)": 18,
        "prune_rank(2)": 7,
        "prune_rowid(1)": 1,
        "remove_distinct(6)": 3,
    },
}


def _normalize(text: str) -> str:
    """Erase the process-wide fresh-column numbering for comparison."""
    return re.sub(r"_w\d+", "_wN", text)


def _isolate_with(driver: str, plan):
    RuleContext._fresh_columns = itertools.count(1)
    isolated, report = JoinGraphIsolation(driver=driver).isolate(plan)
    applications = [
        (step.rule, _normalize(step.target), _normalize(step.replacement))
        for step in report.applications
    ]
    rejections = [
        (rejection.rule, _normalize(rejection.target), rejection.error)
        for rejection in report.rejections
    ]
    return isolated, report, applications, rejections


# -- driver differential + pinned histograms ----------------------------------------


@pytest.mark.parametrize("case", RUNNABLE, ids=lambda case: case.name)
def test_drivers_agree_and_histograms_are_pinned(case):
    plan = compile_query(case.xquery, SETTINGS)
    legacy_plan, legacy_report, legacy_apps, legacy_rejs = _isolate_with("legacy", plan)
    work_plan, work_report, work_apps, work_rejs = _isolate_with("worklist", plan)

    # The worklist driver is an optimisation only: identical applications,
    # identical rejections, identical isolated plan.
    assert legacy_apps == work_apps
    assert legacy_rejs == work_rejs
    assert _normalize(render_plan(legacy_plan)) == _normalize(render_plan(work_plan))
    assert legacy_report.converged and work_report.converged

    # Pinned counts: a drifted histogram is a behaviour change.
    assert work_report.rules_fired() == PINNED_HISTOGRAMS[case.name]

    # Cleanup rules only ever shrink what is already there — their
    # premises are local, so the global operator invariants cannot trip.
    for rejection in work_report.rejections:
        assert rejection.rule not in CLEANUP_RULE_NAMES, (
            f"cleanup rule {rejection.rule!r} rejected on {case.name}"
        )


# -- non-convergence diagnostics ----------------------------------------------------


def test_divergence_error_includes_histogram_and_tail():
    plan = compile_query(RUNNABLE[0].xquery, SETTINGS)
    with pytest.raises(RewriteError) as excinfo:
        isolate(plan, JoinGraphIsolation(max_steps=3))
    message = str(excinfo.value)
    assert "did not converge within 3 steps" in message
    assert "rules fired:" in message
    assert "last" in message and "applications:" in message
    # The histogram names actual rules, not an empty placeholder.
    assert re.search(r"\w+.*×\d+", message)


# -- ablation knobs -----------------------------------------------------------------


@pytest.fixture(scope="module")
def q1_plan():
    return compile_query('doc("auction.xml")/descendant::open_auction[bidder]', SETTINGS)


@pytest.fixture(scope="module")
def q1_full(q1_plan):
    return JoinGraphIsolation().isolate(q1_plan)


def test_ablation_no_cleanup_fires_no_cleanup_rules(q1_plan, q1_full):
    full_plan, _ = q1_full
    partial, report = JoinGraphIsolation(enable_cleanup=False).isolate(q1_plan)
    assert report.converged
    assert not set(report.rules_fired()) & CLEANUP_RULE_NAMES
    # Without house cleaning the dead operators stay in the plan.
    assert node_count(partial) > node_count(full_plan)


def test_ablation_no_rank_goal_leaves_ranks_in_place(q1_plan, q1_full):
    full_plan, _ = q1_full
    partial, report = JoinGraphIsolation(enable_rank_goal=False).isolate(q1_plan)
    assert report.converged
    rank_rules = {rule.name for rule in RANK_GROUP}
    assert not set(report.rules_fired()) & rank_rules
    assert count_operators(partial, RowRank) >= count_operators(full_plan, RowRank)


def test_ablation_no_distinct_goal_fires_no_distinct_rules(q1_plan):
    partial, report = JoinGraphIsolation(enable_distinct_goal=False).isolate(q1_plan)
    assert report.converged
    assert not any("distinct" in rule for rule in report.rules_fired())


def test_ablation_no_join_goals_keeps_the_join_bundle(q1_plan, q1_full):
    full_plan, _ = q1_full
    partial, report = JoinGraphIsolation(
        enable_join_goal=False, enable_distinct_goal=False
    ).isolate(q1_plan)
    assert report.converged
    assert count_operators(partial, Join) > count_operators(full_plan, Join)
    assert "key_join_collapse(9*)" not in report.rules_fired()


def test_ablation_all_goals_off_still_converges(q1_plan):
    config = JoinGraphIsolation(
        enable_cleanup=False,
        enable_rank_goal=False,
        enable_distinct_goal=False,
        enable_join_goal=False,
    )
    partial, report = config.isolate(q1_plan)
    assert report.converged
    assert report.applications == []
    assert node_count(partial) == node_count(q1_plan)


def test_ablation_no_distinct_goal_may_leave_extra_distincts(q1_plan, q1_full):
    full_plan, _ = q1_full
    partial, _report = JoinGraphIsolation(
        enable_distinct_goal=False, enable_join_goal=False
    ).isolate(q1_plan)
    assert count_operators(partial, Distinct) >= count_operators(full_plan, Distinct)


# -- provenance surface -------------------------------------------------------------


def test_compilation_result_exposes_rewrite_trace(small_processor):
    result = small_processor.compile(
        'doc("auction.xml")/descendant::open_auction[bidder]'
    )
    trace = result.rewrite_trace
    assert trace.steps == tuple(result.isolation_report.applications)
    assert trace.rejections == tuple(result.isolation_report.rejections)
    assert trace.rules_fired() == result.isolation_report.rules_fired()
    assert trace.converged
    rendered = trace.render()
    assert rendered.startswith("isolation:")
    assert "worklist driver" in rendered
    # Every applied step appears in the rendering, in order.
    for step in trace.steps:
        assert step.rule in rendered


def test_trace_records_node_identities(small_processor):
    trace = small_processor.compile(
        'doc("auction.xml")//open_auction/child::bidder'
    ).rewrite_trace
    assert trace.steps
    for position, step in enumerate(trace.steps):
        assert step.index == position
        assert step.target_id != 0
        assert step.replacement_id != 0
    # A later step may rewrite an earlier step's replacement; identities
    # make that correlation observable.
    replacement_ids = {step.replacement_id for step in trace.steps}
    assert any(step.target_id in replacement_ids for step in trace.steps[1:])

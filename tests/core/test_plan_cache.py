"""The compilation cache: key contract, settings sensitivity, LRU behaviour.

Regression background: the seed cached compilations keyed on the raw source
string and handled per-call ``isolation`` overrides by *disabling* caching
altogether, so ablation runs recompiled on every call and a cached default
result could never coexist with an override.  The keyed :class:`PlanCache`
keys on (core AST, compiler settings, isolation configuration) instead.
"""

import pytest

from repro.core.pipeline import PlanCache, XQueryProcessor
from repro.core.rewriter import JoinGraphIsolation
from repro.xmldb.encoding import encode_document
from repro.xmldb.parser import parse_xml

XML = "<site><a><b>1</b></a><a><b>2</b></a></site>"
QUERY = 'doc("t.xml")/descendant::a/child::b'


@pytest.fixture()
def processor():
    encoding = encode_document(parse_xml(XML, uri="t.xml"))
    return XQueryProcessor(encoding, default_document="t.xml")


# -- key contract --------------------------------------------------------------------


def test_recompilation_hits_the_cache(processor):
    first = processor.compile(QUERY)
    second = processor.compile(QUERY)
    assert second is first
    assert processor.plan_cache.stats()["hits"] == 1


def test_source_formatting_does_not_miss(processor):
    """Whitespace / comment variants normalize to the same core AST key."""
    first = processor.compile(QUERY)
    variant = processor.compile(
        ' doc("t.xml") (: the same query :) /descendant::a/child::b '
    )
    assert variant is first


def test_auto_fallback_decision_is_cached(processor, monkeypatch):
    """Auto-mode refusals are decided once per plan-cache key.

    A query whose isolated plan is not a pure join graph (here: ``order
    by`` over a grouped aggregate) makes ``"auto"`` fall back to the
    stacked interpreter.  That decision is recorded on the cached
    :class:`CompilationResult` (``auto_engine``/``join_graph_error``), so
    re-executing the same query must hit the cache and never re-run
    isolation — the historical failure mode was paying the full rewrite
    search on every refused call.
    """
    refused = (
        'for $a in doc("t.xml")/descendant::a '
        "order by $a/child::b/text() return fn:count($a/child::b)"
    )
    isolate_calls = []
    original = JoinGraphIsolation.isolate

    def counting_isolate(self, plan):
        isolate_calls.append(plan)
        return original(self, plan)

    monkeypatch.setattr(JoinGraphIsolation, "isolate", counting_isolate)
    first = processor.execute(refused, configuration="auto")
    compilation = processor.compile(refused)
    assert compilation.join_graph is None
    assert compilation.join_graph_error is not None
    assert compilation.auto_engine == "stacked"
    assert len(isolate_calls) == 1
    stats_before = processor.plan_cache.stats()
    for _ in range(3):
        repeat = processor.execute(refused, configuration="auto")
        assert repeat.items == first.items
        assert repeat.configuration == first.configuration
    stats_after = processor.plan_cache.stats()
    assert len(isolate_calls) == 1  # isolation ran once, ever
    assert stats_after["misses"] == stats_before["misses"]
    assert stats_after["hits"] == stats_before["hits"] + 3


def test_auto_dispatches_to_the_join_graph_when_isolated(processor):
    """The cached decision's other arm: an isolable query keeps running on
    the join-graph engine under ``"auto"``."""
    compilation = processor.compile(QUERY)
    assert compilation.auto_engine == "join-graph"
    outcome = processor.execute(QUERY, configuration="auto")
    assert outcome.configuration == "join-graph"


def test_isolation_override_is_cached_under_its_own_key(processor):
    """Regression: overrides used to disable caching instead of keying it."""
    ablated = JoinGraphIsolation(enable_join_goal=False, enable_distinct_goal=False)
    full = processor.compile(QUERY)
    off = processor.compile(QUERY, isolation=ablated)
    assert off is not full
    # The ablated pipeline leaves a bigger plan than full isolation.
    assert (
        off.isolation_report.final_operator_count
        > full.isolation_report.final_operator_count
    )
    # Both configurations are cached, independently.
    assert processor.compile(QUERY, isolation=ablated) is off
    assert processor.compile(QUERY) is full


def test_equivalent_isolation_config_shares_the_entry(processor):
    """The key is the isolation *configuration*, not the object identity."""
    first = processor.compile(QUERY, isolation=JoinGraphIsolation())
    default = processor.compile(QUERY)
    again = processor.compile(QUERY, isolation=JoinGraphIsolation())
    assert first is default is again


def test_prologs_with_same_body_do_not_collide(processor):
    """Regression: the declarations are part of the key, not just the body.

    Two sources whose bodies normalize identically but whose prologs differ
    (an extra declared-but-unused external) have different binding
    interfaces and must not share a cache entry.
    """
    one = processor.compile(
        'declare variable $n as xs:decimal external; doc("t.xml")/descendant::b[. > $n]'
    )
    two = processor.compile(
        "declare variable $n as xs:decimal external; "
        "declare variable $m as xs:decimal external; "
        'doc("t.xml")/descendant::b[. > $n]'
    )
    assert two is not one
    assert one.parameter_names == ("n",)
    assert two.parameter_names == ("n", "m")
    # Both entries stay valid and executable with their own interfaces.
    assert (
        processor.execute_stacked(two.source, bindings={"n": 0, "m": 9}).items
        == processor.execute_stacked(one.source, bindings={"n": 0}).items
    )


def test_bindings_do_not_fragment_the_cache(processor):
    source = 'declare variable $n as xs:decimal external; doc("t.xml")/descendant::b[. > $n]'
    prepared = processor.prepare(source)
    misses_after_prepare = processor.plan_cache.stats()["misses"]
    assert prepared.run({"n": 0}).items != prepared.run({"n": 1}).items
    assert processor.plan_cache.stats()["misses"] == misses_after_prepare
    assert processor.prepare(source).compilation is prepared.compilation


# -- LRU mechanics -------------------------------------------------------------------


def test_lru_eviction_and_counters():
    encoding = encode_document(parse_xml(XML, uri="t.xml"))
    processor = XQueryProcessor(
        encoding, default_document="t.xml", plan_cache=PlanCache(maxsize=2)
    )
    q1 = 'doc("t.xml")/descendant::a'
    q2 = 'doc("t.xml")/descendant::b'
    q3 = 'doc("t.xml")/child::site'
    first = processor.compile(q1)
    processor.compile(q2)
    processor.compile(q3)  # evicts q1
    stats = processor.plan_cache.stats()
    assert stats["size"] == 2
    assert stats["evictions"] == 1
    assert processor.compile(q1) is not first  # recompiled after eviction


def test_lru_recency_refresh():
    cache = PlanCache(maxsize=2)
    cache.put("a", "A")
    cache.put("b", "B")
    assert cache.get("a") == "A"  # refresh 'a'
    cache.put("c", "C")  # evicts 'b', not 'a'
    assert cache.get("a") == "A"
    assert cache.get("b") is None
    assert cache.stats()["evictions"] == 1


def test_plan_cache_rejects_zero_size():
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


# -- thread safety -------------------------------------------------------------------


def test_clear_resets_counters_with_entries():
    """Regression: clear() used to drop entries but keep the traffic
    counters, so stats() reported hits/misses/evictions that no entry of
    the current cache generation ever produced."""
    cache = PlanCache(maxsize=2)
    cache.put("a", "A")
    cache.put("b", "B")
    cache.put("c", "C")          # one eviction
    assert cache.get("a") is None  # one miss ('a' was evicted)
    assert cache.get("b") == "B"   # one hit
    cache.clear()
    assert cache.stats() == {
        "size": 0,
        "maxsize": 2,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "source_memo_size": 0,
    }


def test_concurrent_get_put_keeps_counters_consistent():
    import threading

    cache = PlanCache(maxsize=8)
    threads_n, per_thread = 8, 200
    keys = [f"k{i}" for i in range(16)]  # 2x maxsize: constant eviction churn
    barrier = threading.Barrier(threads_n)

    def hammer(seed):
        barrier.wait()
        for i in range(per_thread):
            key = keys[(seed + i) % len(keys)]
            if cache.get(key) is None:
                cache.put(key, key.upper())

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = cache.stats()
    # Exact invariant: every get() incremented exactly one of hits/misses.
    assert stats["hits"] + stats["misses"] == threads_n * per_thread
    # Size never exceeds maxsize, and the LRU structure survived the churn.
    assert 0 < stats["size"] <= 8
    assert len(cache) == stats["size"]


# -- the raw-source memo (lockstep with plan eviction) --------------------------------


def test_source_memo_evicts_in_lockstep_with_plans():
    """Regression: the source side-map pruned purely by size, so it could
    retain mappings to evicted plans and drop mappings to live ones.  Memo
    entries now leave exactly when their plan does."""
    cache = PlanCache(maxsize=2)
    cache.put("ka", "A")
    cache.remember_source("src-a", "ka")
    cache.put("kb", "B")
    cache.remember_source("src-b1", "kb")
    cache.remember_source("src-b2", "kb")  # formatting variant, same plan
    assert cache.stats()["source_memo_size"] == 3

    cache.put("kc", "C")  # evicts "ka" (LRU) -> its memo entry goes with it
    assert cache.key_for_source("src-a") is None
    assert cache.key_for_source("src-b1") == "kb"
    assert cache.key_for_source("src-b2") == "kb"
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["source_memo_size"] == 2

    # Every surviving memo entry resolves to a live plan.
    for memo in ("src-b1", "src-b2"):
        assert cache.get(cache.key_for_source(memo)) is not None


def test_source_memo_is_bounded_and_prunes_reverse_index():
    cache = PlanCache(maxsize=1)
    cache.put("k", "V")
    for i in range(10):
        cache.remember_source(f"src-{i}", "k")
    # Bounded at 4x maxsize; the stalest memo entries were dropped.
    assert cache.stats()["source_memo_size"] == 4
    assert cache.key_for_source("src-0") is None
    assert cache.key_for_source("src-9") == "k"


def test_remember_source_refuses_dangling_mappings():
    """A clear() (or eviction) racing between put() and remember_source()
    must not leave a memo entry pointing at a plan the cache cannot
    produce."""
    cache = PlanCache(maxsize=2)
    cache.put("k", "V")
    cache.clear()
    cache.remember_source("src", "k")  # the plan is gone: no-op
    assert cache.key_for_source("src") is None
    assert cache.stats()["source_memo_size"] == 0


def test_clear_mid_traffic_keeps_stats_consistent():
    """Concurrency regression: clears interleaved with compile traffic must
    leave one coherent cache generation — every memo entry resolves to a
    live plan, and the counters obey their exact invariants."""
    import threading

    encoding = encode_document(parse_xml(XML, uri="t.xml"))
    processor = XQueryProcessor(encoding, default_document="t.xml", plan_cache_size=4)
    cache = processor.plan_cache
    queries = [
        QUERY,
        'doc("t.xml")/descendant::b',
        'fn:count(doc("t.xml")/descendant::b)',
        'for $a in doc("t.xml")/descendant::a return fn:count($a/child::b)',
        'doc("t.xml")/descendant::b[1]',
    ]
    stop = threading.Event()
    errors: list = []

    def traffic(seed):
        i = 0
        while not stop.is_set() or i < 50:
            if i >= 50 and stop.is_set():
                break
            source = queries[(seed + i) % len(queries)]
            try:
                processor.execute(source, configuration="stacked")
            except Exception as error:  # pragma: no cover - the assertion below
                errors.append(error)
                break
            i += 1

    threads = [threading.Thread(target=traffic, args=(s,)) for s in range(4)]
    for t in threads:
        t.start()
    for _ in range(20):
        cache.clear()
    stop.set()
    for t in threads:
        t.join()

    assert not errors
    stats = cache.stats()
    assert stats["size"] <= stats["maxsize"]
    # One coherent generation: every memo entry maps to a live plan.
    with cache._lock:
        for memo_key, cache_key in cache._key_by_source.items():
            assert cache_key in cache._entries, (memo_key, cache_key)
        for cache_key, memo_keys in cache._sources_by_key.items():
            assert cache_key in cache._entries
            for memo_key in memo_keys:
                assert cache._key_by_source.get(memo_key) == cache_key
    assert stats["source_memo_size"] <= 4 * stats["maxsize"]

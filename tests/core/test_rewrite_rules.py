"""Per-rule differential tests and registry lint for the declarative rules.

Every registered rule carries an *exemplar* — a small evaluable plan on
which exactly that rule fires.  The differential tests run each rule to its
fixpoint on its own exemplar through **both** drivers and assert

* the drivers applied the identical step sequence and produced the
  identical plan (bit for bit, modulo fresh-column numbering), and
* evaluating the exemplar before and after the rewrite yields the same
  decoded sequence — the semantic-preservation contract of Fig. 5.

The lint tests exercise :func:`repro.core.rewrite.rule.validate_rule`: a
rule without a declared pattern root, a non-left-linear pattern, a builder
that mutates operators in place, or one that copies leaves instead of
sharing them must all fail at registration time.
"""

import itertools
import re

import pytest

from repro.algebra.interpreter import evaluate_plan
from repro.algebra.operators import (
    Attach,
    DocTable,
    Operator,
    Project,
    Serialize,
)
from repro.algebra.render import render_plan
from repro.core.rewrite import (
    REGISTRY,
    Pattern,
    Rule,
    RuleContext,
    RuleRegistry,
    RuleValidationError,
    run_phases,
    validate_rule,
)
from repro.core.rewrite.rule import MATCHED, PatternIndex, is_left_linear, pattern


def _normalize(text: str) -> str:
    """Erase the process-wide fresh-column numbering for comparison."""
    return re.sub(r"_w\d+", "_wN", text)


def _reset_fresh_columns() -> None:
    RuleContext._fresh_columns = itertools.count(1)


def _run_single_rule(rule: Rule, driver: str):
    """Run ``rule`` to fixpoint on its own exemplar with one driver."""
    _reset_fresh_columns()
    plan = rule.exemplar()
    if not isinstance(plan, Serialize):
        plan = Serialize(plan)
    rewritten, engine = run_phases(plan, [("exemplar", (rule,))], driver=driver)
    steps = [
        (step.rule, _normalize(step.target), _normalize(step.replacement))
        for step in engine.steps
    ]
    return plan, rewritten, steps


# -- per-rule differential ----------------------------------------------------------


@pytest.mark.parametrize("rule", REGISTRY.rules, ids=lambda rule: rule.name)
def test_rule_fires_identically_under_both_drivers(rule):
    _, legacy_plan, legacy_steps = _run_single_rule(rule, "legacy")
    _, worklist_plan, worklist_steps = _run_single_rule(rule, "worklist")
    assert legacy_steps, f"rule {rule.name!r} did not fire on its exemplar"
    assert legacy_steps == worklist_steps
    assert _normalize(render_plan(legacy_plan)) == _normalize(render_plan(worklist_plan))


@pytest.mark.parametrize("rule", REGISTRY.rules, ids=lambda rule: rule.name)
def test_rule_preserves_exemplar_semantics(rule, small_auction_doc_table):
    before, after, steps = _run_single_rule(rule, "worklist")
    assert steps
    original = evaluate_plan(before, small_auction_doc_table)
    rewritten = evaluate_plan(after, small_auction_doc_table)
    assert _sequence(original) == _sequence(rewritten)


def _sequence(table):
    """The decoded item sequence: items in ``pos`` order.

    ``pos`` is an *ordering* key, not a value — rule (12) legitimately
    replaces a dense rank by its ordering source, so absolute positions
    may change while the decoded sequence stays identical.
    """
    pos = table.column_index("pos")
    item = table.column_index("item")
    return [row[item] for row in sorted(table.rows, key=lambda row: row[pos])]


def test_every_registered_rule_revalidates():
    for rule in REGISTRY:
        validate_rule(rule)  # exemplar run included; must not raise


def test_pattern_index_dispatches_each_rule_at_its_exemplar():
    index = PatternIndex(REGISTRY.rules)
    for rule in REGISTRY:
        plan = rule.exemplar()
        matched = [
            node
            for node in _iter(plan)
            if not isinstance(node, Serialize) and rule in index.for_node(node)
        ]
        assert matched, f"no bucket offers {rule.name!r} on its exemplar"


def _iter(root):
    from repro.algebra.dag import iter_nodes

    return iter_nodes(root)


# -- registry lint ------------------------------------------------------------------


def _head(body: Operator) -> Serialize:
    return Serialize(Project(body, [("pos", "pre"), ("item", "pre")]))


def _attach_exemplar() -> Operator:
    return _head(Attach(DocTable(), "dead", 1))


def _lint_rule(**overrides) -> Rule:
    """A well-formed baseline rule the lint tests break one axis at a time."""
    fields = dict(
        name="lint_rule",
        pattern=pattern(Attach),
        guard=lambda node, ctx: MATCHED,
        build=lambda node, match, ctx: node.children[0],
        exemplar=_attach_exemplar,
    )
    fields.update(overrides)
    return Rule(**fields)


def test_lint_baseline_rule_is_valid():
    validate_rule(_lint_rule())


def test_lint_rejects_missing_pattern_root():
    with pytest.raises(RuleValidationError, match="pattern root"):
        validate_rule(_lint_rule(pattern=Pattern(root=())))


def test_lint_rejects_non_left_linear_pattern():
    # An operator *instance* in the pattern is an identity constraint —
    # exactly what left-linearity forbids (it belongs in the guard).
    shared = DocTable()
    rule = _lint_rule(pattern=Pattern(root=(Attach,), children=((shared,),)))
    assert not is_left_linear(rule)
    with pytest.raises(RuleValidationError, match="left-linear"):
        validate_rule(rule)


def test_lint_rejects_serialize_root():
    with pytest.raises(RuleValidationError, match="serialization point"):
        validate_rule(_lint_rule(pattern=pattern(Serialize)))


def test_lint_rejects_missing_exemplar():
    with pytest.raises(RuleValidationError, match="exemplar"):
        validate_rule(_lint_rule(exemplar=None))


def test_lint_rejects_rule_that_never_fires():
    rule = _lint_rule(guard=lambda node, ctx: None)
    with pytest.raises(RuleValidationError, match="does not fire"):
        validate_rule(rule)


def test_lint_rejects_in_place_mutation():
    def mutating_build(node, match, ctx):
        node.value = 999  # forbidden: operators are immutable by contract
        return node.children[0]

    with pytest.raises(RuleValidationError, match="in place"):
        validate_rule(_lint_rule(build=mutating_build))


def test_lint_rejects_leaf_copying():
    def copying_build(node, match, ctx):
        # A fresh DocTable leaf instead of the matched plan's own object.
        return Attach(DocTable(), node.column, node.value)

    with pytest.raises(RuleValidationError, match="sharing"):
        validate_rule(_lint_rule(build=copying_build))


def test_registry_rejects_duplicate_names():
    registry = RuleRegistry()
    registry.register(_lint_rule())
    with pytest.raises(RuleValidationError, match="duplicate"):
        registry.register(_lint_rule())

"""Tests for the icols/const/key/set property inference (Tables II-V)."""

from repro.algebra.operators import (
    Attach, Cross, Distinct, DocTable, Join, LiteralTable, Project, RowId, RowRank, Select, Serialize,
)
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate
from repro.core.properties import infer_properties


def test_icols_seeded_at_serialization_point():
    leaf = LiteralTable(("iter", "pos", "item"), [(1, 1, 1)])
    plan = Serialize(leaf)
    properties = infer_properties(plan)
    assert properties.icols(leaf) == frozenset({"pos", "item"})


def test_icols_through_projection_renaming():
    doc = DocTable()
    project = Project(doc, [("item", "pre"), ("pos", "size")])
    plan = Serialize(project)
    properties = infer_properties(plan)
    assert properties.icols(doc) == frozenset({"pre", "size"})


def test_icols_accumulates_over_shared_parents():
    doc = DocTable()
    a = Project(doc, [("item", "pre")])
    b = Project(doc, [("pos", "level")])
    plan = Serialize(Cross(a, b))
    properties = infer_properties(plan)
    assert {"pre", "level"} <= set(properties.icols(doc))


def test_const_from_attach_and_literal():
    base = Attach(LiteralTable(("iter",), [(1,)]), "pos", 7)
    properties = infer_properties(Serialize(base))
    assert properties.const(base) == {"iter": 1, "pos": 7}


def test_const_propagates_through_join():
    left = Attach(LiteralTable(("a",), [(1,), (2,)]), "c", 5)
    right = LiteralTable(("b",), [(1,)])
    join = Join(left, right, Predicate.equality("a", "b"))
    properties = infer_properties(Serialize(join))
    assert properties.const(join)["c"] == 5 and properties.const(join)["b"] == 1


def test_keys_of_doc_and_rowid_and_distinct():
    doc = DocTable()
    rowid = RowId(Project(doc, [("item", "pre")]), "inner")
    distinct = Distinct(Project(doc, [("kind", "kind")]))
    properties = infer_properties(Serialize(Cross(rowid, distinct)))
    assert frozenset({"pre"}) in properties.keys(doc)
    assert frozenset({"inner"}) in properties.keys(rowid)
    assert frozenset({"kind"}) in properties.keys(distinct)


def test_key_preserved_through_equi_join_on_key():
    doc = DocTable()
    left = Project(doc, [("a", "pre"), ("n", "name")])
    right = Project(doc, [("b", "pre")])
    join = Join(left, right, Predicate.equality("a", "b"))
    properties = infer_properties(Serialize(join))
    assert any(key <= {"a", "n", "b"} and ("a" in key or "b" in key) for key in properties.keys(join))


def test_set_false_below_root_true_below_distinct():
    doc = DocTable()
    select = Select(doc, Predicate.of(Comparison(ColumnRef("kind"), "=", Literal("ELEM"))))
    distinct = Distinct(select)
    plan = Serialize(distinct)
    properties = infer_properties(plan)
    assert properties.is_set(select) is True
    assert properties.is_set(distinct) is False


def test_rank_key_inference():
    base = LiteralTable(("iter", "pos"), [(1, 1), (1, 2), (2, 1)])
    rank = RowRank(base, "r", ("iter", "pos"))
    properties = infer_properties(Serialize(rank))
    assert frozenset({"iter", "pos"}) in properties.keys(base)
    assert any("r" in key for key in properties.keys(rank))

"""Tests for join graph isolation: rule applications and semantic preservation."""

import pytest

from repro.algebra.dag import count_operators, node_count
from repro.algebra.interpreter import evaluate_plan
from repro.algebra.operators import Distinct, DocTable, Join, RowId, RowRank
from repro.algebra.table import Table
from repro.core.rewriter import JoinGraphIsolation, isolate
from repro.xmldb.encoding import DOC_COLUMNS
from repro.xquery.compiler import compile_query

QUERIES = {
    "q_step": 'doc("auction.xml")/descendant::open_auction',
    "q1": 'doc("auction.xml")/descendant::open_auction[bidder]',
    "q_two_steps": 'doc("auction.xml")//open_auction/child::bidder/child::increase',
    "q_value": 'doc("auction.xml")//open_auction[@id = "2"]',
    "q_numeric": 'doc("auction.xml")//open_auction[initial > 10]',
    "q_for": 'for $a in doc("auction.xml")//open_auction return $a/child::bidder',
    "q_text": 'doc("auction.xml")//bidder/child::time/child::text()',
}


def _items(table: Table) -> set:
    index = table.column_index("item")
    return {row[index] for row in table.rows}


@pytest.mark.parametrize("name,query", sorted(QUERIES.items()))
def test_isolation_preserves_semantics(name, query, small_auction_doc_table):
    original = compile_query(query)
    isolated, report = isolate(original)
    assert report.converged
    before = _items(evaluate_plan(original, small_auction_doc_table))
    after = _items(evaluate_plan(isolated, small_auction_doc_table))
    assert before == after


@pytest.mark.parametrize("name,query", sorted(QUERIES.items()))
def test_isolation_moves_blocking_operators_to_tail(name, query):
    original = compile_query(query)
    isolated, _report = isolate(original)
    assert count_operators(isolated, Distinct) <= 1
    assert count_operators(isolated, RowRank) <= 1
    assert count_operators(isolated, RowId) == 0
    assert node_count(isolated) < node_count(original)


def test_q1_isolates_to_three_fold_self_join():
    original = compile_query(QUERIES["q1"])
    isolated, _report = isolate(original)
    # Fig. 7: the join bundle is a three-fold self join of doc -> two joins.
    assert count_operators(isolated, Join) == 2
    assert count_operators(isolated, DocTable) == 1


def test_report_records_rule_applications():
    original = compile_query(QUERIES["q1"])
    _isolated, report = isolate(original)
    fired = report.rules_fired()
    assert any("key_join_collapse" in rule for rule in fired)
    assert any("rank_to_project" in rule for rule in fired)
    assert report.final_operator_count < report.initial_operator_count


def test_goals_can_be_disabled_for_ablation():
    original = compile_query(QUERIES["q1"])
    config = JoinGraphIsolation(enable_join_goal=False, enable_distinct_goal=False)
    partial, report = config.isolate(original)
    full, _ = isolate(original)
    assert count_operators(partial, Join) > count_operators(full, Join)


def test_step_limit_guards_termination():
    original = compile_query(QUERIES["q1"])
    config = JoinGraphIsolation(max_steps=3)
    _plan, report = config.isolate(original)
    assert not report.converged

"""Tests for join graph extraction and SQL emission (Fig. 7/8/9)."""

import pytest

from repro.errors import JoinGraphError
from repro.core.joingraph import extract_join_graph
from repro.core.rewriter import isolate
from repro.core.sqlgen import generate_join_graph_sql, generate_stacked_sql
from repro.xquery.compiler import compile_query


def _isolated(query):
    plan, _ = isolate(compile_query(query))
    return plan


def test_q1_join_graph_matches_fig8():
    graph = extract_join_graph(_isolated('doc("auction.xml")/descendant::open_auction[bidder]'))
    assert graph.self_join_width == 3
    assert graph.distinct
    rendered = generate_join_graph_sql(graph)
    assert rendered.startswith("SELECT DISTINCT")
    assert rendered.count("doc AS d") == 3
    assert "name = 'auction.xml'" in rendered
    assert "name = 'open_auction'" in rendered
    assert "name = 'bidder'" in rendered
    assert "ORDER BY" in rendered


def test_join_graph_conditions_are_conjunctive_and_local():
    graph = extract_join_graph(_isolated('doc("auction.xml")//open_auction[@id = "2"]'))
    assert all(len(condition.aliases()) <= 2 for condition in graph.conditions)
    local = [c for alias in graph.aliases for c in graph.conditions_for(alias)]
    assert local  # kind/name tests are per-alias conditions


def test_value_comparison_lands_in_where():
    sql = generate_join_graph_sql(_isolated('doc("auction.xml")//open_auction[initial > 10]'))
    assert "data > 10" in sql


def test_order_by_reflects_document_order():
    sql = generate_join_graph_sql(_isolated('doc("auction.xml")/descendant::open_auction'))
    assert "ORDER BY" in sql and ".pre" in sql


def test_isolation_shrinks_the_join_graph():
    # Extracting directly from the stacked plan either fails or yields a much
    # wider self-join (redundant context joins); isolation gets it down to the
    # three-fold self-join of Fig. 8.
    query = 'doc("auction.xml")/descendant::open_auction[bidder]'
    isolated_width = extract_join_graph(_isolated(query)).self_join_width
    assert isolated_width == 3
    try:
        stacked_width = extract_join_graph(compile_query(query)).self_join_width
    except JoinGraphError:
        return
    assert stacked_width > isolated_width


def test_stacked_sql_mentions_rank_and_distinct():
    stacked = compile_query('doc("auction.xml")/descendant::open_auction[bidder]')
    sql = generate_stacked_sql(stacked)
    assert sql.startswith("WITH ")
    assert "RANK() OVER" in sql
    assert "SELECT DISTINCT" in sql


def test_nested_for_produces_wider_join_graph(xmark_processor):
    q = 'for $a in doc("auction.xml")//closed_auction return $a/child::price/child::text()'
    compilation = xmark_processor.compile(q)
    assert compilation.join_graph is not None
    assert compilation.join_graph.self_join_width >= 3

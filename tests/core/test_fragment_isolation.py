"""Isolation + extraction of the widened fragment (value joins, aggregates)."""

import pytest

from repro.core.joingraph import AggregateTerm, ColumnTerm, extract_join_graph
from repro.core.sqlgen import render_join_graph
from repro.errors import JoinGraphError
from repro.xquery.compiler import CompilerSettings, compile_query
from repro.core.rewriter import isolate

SETTINGS = CompilerSettings(default_document="t.xml")

VALUE_JOIN = (
    'for $p in doc("t.xml")/descendant::person '
    'for $i in doc("t.xml")/descendant::item '
    "where $p/child::watch = $i/attribute::id "
    "return $i/child::name"
)


def _isolated(query):
    plan = compile_query(query, SETTINGS)
    isolated, _report = isolate(plan)
    return isolated


def test_value_join_isolates_to_a_pure_join_graph():
    graph = extract_join_graph(_isolated(VALUE_JOIN))
    # The value comparison survives as a plain condition over two aliases.
    value_conditions = [
        condition
        for condition in graph.conditions
        if isinstance(condition.left, ColumnTerm)
        and isinstance(condition.right, ColumnTerm)
        and condition.left.column == "value"
        and condition.right.column == "value"
    ]
    assert len(value_conditions) == 1
    assert graph.aggregate is None
    # The FLWOR nest's complete iteration order made it into ORDER BY: the
    # outer variable's document order first, then the inner one's.
    assert len(graph.order_terms) >= 2


def test_value_join_order_terms_are_renderable():
    graph = extract_join_graph(_isolated(VALUE_JOIN))
    sql = render_join_graph(graph)
    assert "ORDER BY" in sql
    assert ".value = " in sql


def test_scalar_aggregate_extracts_with_a_spec():
    graph = extract_join_graph(_isolated('count(doc("t.xml")/descendant::b)'))
    assert graph.aggregate is not None
    assert graph.aggregate.is_scalar
    assert graph.aggregate.function == "count"
    assert isinstance(graph.select_items[0][0], AggregateTerm)
    sql = render_join_graph(graph)
    assert "COUNT(" in sql
    assert "SELECT DISTINCT" in sql  # the argument dedup pushed into SQL


def test_nested_aggregate_extracts_with_grouping():
    graph = extract_join_graph(
        _isolated('for $a in doc("t.xml")/descendant::a return sum($a/child::b)')
    )
    spec = graph.aggregate
    assert spec is not None and not spec.is_scalar
    assert spec.function == "sum"
    assert spec.value is not None
    # The outer scope holds a strict subset of the graph's aliases.
    assert 0 < spec.outer_alias_count < len(graph.aliases)
    sql = render_join_graph(graph)
    assert "GROUP BY" in sql
    assert "LEFT JOIN" in sql
    assert "COALESCE(SUM(" in sql


def test_aggregate_join_order_pins_both_scopes():
    graph = extract_join_graph(
        _isolated('for $a in doc("t.xml")/descendant::a return count($a/child::b)')
    )
    order = list(reversed(graph.aliases))
    sql = render_join_graph(graph, join_order=order)
    assert "CROSS JOIN" in sql


def test_positional_predicate_extracts_as_window():
    """The rank-compared guard keeps rule (12) from rewriting the position
    rank away; the surviving compared rank now extracts as a windowed
    dense-rank condition instead of defeating extraction."""
    graph = extract_join_graph(_isolated('doc("t.xml")/descendant::b[2]'))
    assert len(graph.windows) == 1
    window = graph.windows[0]
    assert window.op == "="
    assert window.value.value == 2
    sql = render_join_graph(graph)
    assert "DENSE_RANK() OVER" in sql
    assert ".rnk = 2" in sql


def test_aggregate_inside_a_condition_extracts_as_having():
    graph = extract_join_graph(
        _isolated(
            'for $a in doc("t.xml")/descendant::a '
            "where count($a/child::b) > 1 return $a"
        )
    )
    assert len(graph.having) == 1
    having = graph.having[0]
    assert having.op == ">"
    assert having.value.value == 1
    sql = render_join_graph(graph)
    assert "COUNT(" in sql
    assert ") > 1" in sql

"""Concurrency stress tests: one shared Session, many threads, identical results.

The serving layer's whole contract is that concurrency is *transparent*:
N threads hammering one :class:`~repro.core.session.Session` (directly or
through a :class:`~repro.service.QueryService`) must produce bit-for-bit
the results serial execution produces, for every engine configuration, and
must leave the shared plan cache in a deterministically explainable state.

Design notes for determinism:

* every (query, configuration, binding) combination is first executed
  serially to record the expected items; worker threads then re-execute
  the same combinations many times and record mismatches;
* the plan-cache invariant checked at the end is exact: each ad-hoc
  ``execute``/``prepare`` performs exactly one cache lookup, so
  ``hits + misses == lookups``; racing *first* compilations may miss more
  than once (both threads build, last put wins), so ``misses`` is bounded
  by [distinct entries, thread count x distinct entries] and ``size`` is
  exactly the number of distinct entries.
"""

import threading

import pytest

from repro.core.session import Session
from repro.service import QueryService

THREADS = 8
ITERATIONS = 3

XML = (
    "<site>"
    "<open_auction><bidder>10</bidder><bidder>20</bidder></open_auction>"
    "<open_auction><initial>5</initial></open_auction>"
    "<open_auction><bidder>30</bidder></open_auction>"
    "<closed_auction><price>500</price></closed_auction>"
    "<closed_auction><price>700</price></closed_auction>"
    "</site>"
)
OTHER_XML = "<log><entry>1</entry><entry>2</entry><entry>3</entry></log>"

ADHOC_QUERIES = (
    'doc("site.xml")/descendant::open_auction[child::bidder]',
    'doc("site.xml")/descendant::closed_auction/child::price',
    'doc("site.xml")/descendant::bidder',
)
PARAM_QUERY = (
    "declare variable $lo as xs:decimal external; "
    'doc("site.xml")/descendant::price[. > $lo]'
)
BINDINGS = ({"lo": 400}, {"lo": 600}, {"lo": 900})

CONFIGURATIONS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")


def _fresh_session():
    session = Session()
    session.register("site.xml", XML)
    session.register("log.xml", OTHER_XML)
    return session


def _expected_results(session, prepared):
    expected = {}
    for query in ADHOC_QUERIES:
        for configuration in CONFIGURATIONS:
            expected[(query, configuration, None)] = session.execute(
                query, configuration=configuration
            ).items
    for binding in BINDINGS:
        for configuration in CONFIGURATIONS:
            expected[(PARAM_QUERY, configuration, binding["lo"])] = prepared.run(
                binding, engine=configuration
            ).items
    return expected


def test_eight_threads_on_one_session_match_serial_bit_for_bit():
    session = _fresh_session()
    prepared = session.prepare(PARAM_QUERY)
    expected = _expected_results(session, prepared)
    lookups_before = _cache_lookups(session)
    size_before = session.cache_stats()["size"]

    mismatches = []
    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(seed: int):
        try:
            barrier.wait()  # maximize interleaving
            for iteration in range(ITERATIONS):
                for offset, query in enumerate(ADHOC_QUERIES):
                    configuration = CONFIGURATIONS[
                        (seed + iteration + offset) % len(CONFIGURATIONS)
                    ]
                    outcome = session.execute(query, configuration=configuration)
                    key = (query, configuration, None)
                    if outcome.items != expected[key]:
                        mismatches.append((key, outcome.items))
                for offset, binding in enumerate(BINDINGS):
                    configuration = CONFIGURATIONS[
                        (seed + iteration + offset + 1) % len(CONFIGURATIONS)
                    ]
                    outcome = prepared.run(binding, engine=configuration)
                    key = (PARAM_QUERY, configuration, binding["lo"])
                    if outcome.items != expected[key]:
                        mismatches.append((key, outcome.items))
        except Exception as error:  # pragma: no cover - diagnostic path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    assert not mismatches, mismatches[:5]

    # -- deterministic cache invariants ------------------------------------------
    stats = session.cache_stats()
    # No new compilations: every source text was compiled during the serial
    # warm-up, so concurrent traffic was pure hits and the entry set is frozen.
    assert stats["size"] == size_before
    assert stats["evictions"] == 0
    # Exactly one lookup per ad-hoc execute; prepared runs never look up.
    adhoc_executions = THREADS * ITERATIONS * len(ADHOC_QUERIES)
    assert _cache_lookups(session) == lookups_before + adhoc_executions
    # All misses came from the serial warm-up (one per distinct source);
    # every concurrent lookup was a hit.
    assert stats["misses"] == stats["size"]


def _cache_lookups(session) -> int:
    stats = session.cache_stats()
    return stats["hits"] + stats["misses"]


def test_query_service_stress_matches_serial_across_configurations():
    session = _fresh_session()
    prepared = session.prepare(PARAM_QUERY)
    expected = _expected_results(session, prepared)

    requests = []
    keys = []
    for repeat in range(THREADS):
        for offset, query in enumerate(ADHOC_QUERIES):
            configuration = CONFIGURATIONS[(repeat + offset) % len(CONFIGURATIONS)]
            requests.append((query, configuration, None))
            keys.append((query, configuration, None))
        for offset, binding in enumerate(BINDINGS):
            configuration = CONFIGURATIONS[(repeat + offset + 2) % len(CONFIGURATIONS)]
            requests.append((PARAM_QUERY, configuration, binding))
            keys.append((PARAM_QUERY, configuration, binding["lo"]))

    from repro.service import QueryRequest

    violations: list = []
    stop_sampling = threading.Event()

    def sample_invariant(service):
        # The snapshot-consistency invariant: every engine snapshot is taken
        # under the metrics lock, so a submitted query is never double- or
        # un-counted — even mid-flight, submitted covers all finished work.
        while not stop_sampling.is_set():
            for name, engine in service.service_stats()["engines"].items():
                finished = engine["completed"] + engine["failed"] + engine["timed_out"]
                if engine["submitted"] < finished:
                    violations.append((name, engine))

    with QueryService(session, max_workers=THREADS) as service:
        sampler = threading.Thread(target=sample_invariant, args=(service,))
        sampler.start()
        try:
            outcomes = service.execute_many(
                [
                    QueryRequest(
                        source=source, configuration=configuration, bindings=binding
                    )
                    for source, configuration, binding in requests
                ]
            )
        finally:
            stop_sampling.set()
            sampler.join()
        stats = service.service_stats()

    assert not violations, violations[:3]

    for key, outcome in zip(keys, outcomes):
        assert outcome.items == expected[key], key

    completed = sum(engine["completed"] for engine in stats["engines"].values())
    assert completed == len(requests)
    assert stats["in_flight"] == 0
    assert all(
        engine["failed"] == 0 and engine["timed_out"] == 0
        for engine in stats["engines"].values()
    )


def test_registration_during_concurrent_traffic_is_safe():
    """Catalog growth mid-traffic: old queries stay valid, new doc appears."""
    session = _fresh_session()
    expected = session.execute(ADHOC_QUERIES[0], configuration="sql").items
    errors = []
    stop = threading.Event()

    def reader():
        try:
            while not stop.is_set():
                outcome = session.execute(ADHOC_QUERIES[0], configuration="sql")
                assert outcome.items == expected
        except Exception as error:  # pragma: no cover - diagnostic path
            errors.append(error)

    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        for index in range(5):
            session.register(f"extra-{index}.xml", f"<extra><n>{index}</n></extra>")
    finally:
        stop.set()
        for thread in readers:
            thread.join()

    assert not errors, errors
    # The new documents are queryable, through every backend.
    for configuration in CONFIGURATIONS:
        outcome = session.execute(
            'doc("extra-4.xml")/descendant::n', configuration=configuration
        )
        assert len(outcome.items) == 1, configuration
    # Old results survived the rebuilds bit-for-bit.
    assert session.execute(ADHOC_QUERIES[0], configuration="sql").items == expected


def test_concurrent_processor_rebuild_happens_once():
    session = _fresh_session()
    results = []
    barrier = threading.Barrier(THREADS)

    def grab():
        barrier.wait()
        results.append(session.processor)

    threads = [threading.Thread(target=grab) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len({id(processor) for processor in results}) == 1


def test_plan_cache_clear_during_service_traffic_stays_consistent():
    """Regression: Session.cache_stats() and QueryService.service_stats()
    must describe one coherent cache generation even when the plan cache is
    cleared mid-traffic — no memo entry may survive pointing at a plan the
    cleared cache cannot produce, and results stay bit-for-bit correct."""
    session = _fresh_session()
    expected = {
        source: session.execute(source, configuration="stacked").items
        for source in ADHOC_QUERIES
    }
    mismatches: list = []
    stop = threading.Event()

    def traffic(seed: int) -> None:
        i = 0
        while not stop.is_set() or i < 30:
            if i >= 30 and stop.is_set():
                break
            source = ADHOC_QUERIES[(seed + i) % len(ADHOC_QUERIES)]
            outcome = service.submit(source, configuration="stacked").result()
            if outcome.items != expected[source]:
                mismatches.append((source, outcome.items))
                break
            i += 1

    with QueryService(session, max_workers=4) as service:
        threads = [threading.Thread(target=traffic, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(15):
            session.plan_cache.clear()
        stop.set()
        for thread in threads:
            thread.join()
        assert not mismatches
        service_view = service.service_stats()["plan_cache"]
        session_view = session.cache_stats()

    # Both views come from the same locked snapshot mechanism.
    assert set(service_view) == set(session_view)
    cache = session.plan_cache
    with cache._lock:
        for memo_key, cache_key in cache._key_by_source.items():
            assert cache_key in cache._entries, (memo_key, cache_key)
    stats = session.cache_stats()
    assert stats["size"] <= stats["maxsize"]
    assert stats["source_memo_size"] <= 4 * stats["maxsize"]

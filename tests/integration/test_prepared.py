"""Differential tests: prepared-with-bindings ≡ ad-hoc-with-literals.

For every parameterized query and every binding, the prepared execution must
produce results identical to compiling the query with the bound value spliced
in as a literal — per engine configuration (stacked plan, isolated plan, SQL
join graph, and the navigational pureXML path).
"""

import pytest

from repro.purexml.engine import PureXMLEngine
from repro.purexml.storage import XMLColumnStore


#: (name, prepared source template, ad-hoc literal template, bindings to sweep)
#: The ad-hoc template receives the binding values via str.format.
PARAM_QUERIES = [
    (
        "initial-threshold",
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::open_auction[child::initial > $lo]',
        'doc("auction.xml")/descendant::open_auction[child::initial > {lo}]',
        [{"lo": 10}, {"lo": 100}, {"lo": 1000}],
    ),
    (
        "flwor-where",
        "declare variable $lo as xs:decimal external; "
        'for $a in doc("auction.xml")/descendant::open_auction '
        "where $a/child::initial > $lo return $a/child::initial",
        'for $a in doc("auction.xml")/descendant::open_auction '
        "where $a/child::initial > {lo} return $a/child::initial",
        [{"lo": 50}, {"lo": 500}],
    ),
    (
        "string-equality",
        "declare variable $c external; "
        'doc("auction.xml")/descendant::item[child::location = $c]',
        'doc("auction.xml")/descendant::item[child::location = "{c}"]',
        [{"c": "Europe"}, {"c": "Asia"}, {"c": "Atlantis"}],
    ),
]


def _literal_source(template: str, bindings: dict) -> str:
    rendered = {
        name: (int(value) if isinstance(value, (int, float)) else value)
        for name, value in bindings.items()
    }
    return template.format(**rendered)


@pytest.mark.parametrize("name,prepared_src,adhoc_tpl,sweeps", PARAM_QUERIES)
def test_prepared_equals_adhoc_stacked(name, prepared_src, adhoc_tpl, sweeps, xmark_processor):
    prepared = xmark_processor.prepare(prepared_src)
    for bindings in sweeps:
        adhoc = xmark_processor.execute_stacked(
            _literal_source(adhoc_tpl, bindings), timeout_seconds=120
        )
        got = prepared.run(bindings, engine="stacked", timeout_seconds=120)
        assert got.items == adhoc.items, f"{name} {bindings}"


@pytest.mark.parametrize("name,prepared_src,adhoc_tpl,sweeps", PARAM_QUERIES)
def test_prepared_equals_adhoc_isolated(name, prepared_src, adhoc_tpl, sweeps, xmark_processor):
    prepared = xmark_processor.prepare(prepared_src)
    for bindings in sweeps:
        adhoc = xmark_processor.execute_isolated_interpreted(
            _literal_source(adhoc_tpl, bindings), timeout_seconds=120
        )
        got = prepared.run(bindings, engine="isolated", timeout_seconds=120)
        assert got.items == adhoc.items, f"{name} {bindings}"


@pytest.mark.parametrize("name,prepared_src,adhoc_tpl,sweeps", PARAM_QUERIES)
def test_prepared_equals_adhoc_join_graph(name, prepared_src, adhoc_tpl, sweeps, xmark_processor):
    prepared = xmark_processor.prepare(prepared_src)
    assert prepared.compilation.join_graph is not None, prepared.compilation.join_graph_error
    for bindings in sweeps:
        adhoc = xmark_processor.execute_join_graph(
            _literal_source(adhoc_tpl, bindings), timeout_seconds=120
        )
        got = prepared.run(bindings, engine="join-graph", timeout_seconds=120)
        assert got.items == adhoc.items, f"{name} {bindings}"


@pytest.mark.parametrize("name,prepared_src,adhoc_tpl,sweeps", PARAM_QUERIES)
def test_prepared_equals_adhoc_purexml(name, prepared_src, adhoc_tpl, sweeps, xmark_document):
    engine = PureXMLEngine(XMLColumnStore.whole(xmark_document))
    prepared = engine.prepare(prepared_src)
    for bindings in sweeps:
        adhoc = engine.execute(_literal_source(adhoc_tpl, bindings), timeout_seconds=120)
        got = prepared.run(bindings, timeout_seconds=120)
        assert [id(n) for n in got.nodes] == [id(n) for n in adhoc.nodes], f"{name} {bindings}"


def test_param_query_sweeps_are_not_vacuous(xmark_processor):
    """Guard: every differential case matches something for some binding."""
    for name, prepared_src, _adhoc_tpl, sweeps in PARAM_QUERIES:
        prepared = xmark_processor.prepare(prepared_src)
        counts = [prepared.run(bindings, timeout_seconds=120).node_count for bindings in sweeps]
        assert any(counts), f"{name}: all sweeps returned empty results"


def test_prepared_rerun_skips_the_compiler(xmark_processor):
    """Re-execution touches neither the parser, the compiler nor isolation."""
    source = (
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::open_auction[child::initial > $lo]'
    )
    prepared = xmark_processor.prepare(source)
    stats_before = dict(xmark_processor.plan_cache.stats())
    results = {lo: prepared.run({"lo": lo}).node_count for lo in (10, 100, 1000)}
    # Monotonically fewer auctions as the threshold rises; bindings matter.
    assert results[10] >= results[100] >= results[1000]
    assert results[10] > results[1000]
    # No cache traffic at all: run() never went back through compile().
    assert xmark_processor.plan_cache.stats() == stats_before


def test_cross_engine_agreement_on_prepared_results(xmark_processor, xmark_document):
    source = (
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::open_auction[child::initial > $lo]'
    )
    prepared = xmark_processor.prepare(source)
    pure = PureXMLEngine(XMLColumnStore.whole(xmark_document)).prepare(source)
    for lo in (10, 500):
        stacked = prepared.run({"lo": lo}, engine="stacked", timeout_seconds=120)
        relational = prepared.run({"lo": lo}, engine="join-graph", timeout_seconds=120)
        navigational = pure.run({"lo": lo}, timeout_seconds=120)
        assert set(stacked.items) == set(relational.items)
        assert len(set(stacked.items)) == navigational.node_count

"""Differential tests: all execution strategies must agree on the workload."""

import pytest

from repro.bench.workloads import WORKLOAD, query_by_name
from repro.purexml.engine import PureXMLEngine


XMARK_QUERIES = ["Q1", "Q3", "Q4", "Q2"]
DBLP_QUERIES = ["Q5", "Q6"]


def _processor_for(query, xmark_processor, dblp_processor):
    return xmark_processor if query.dataset == "xmark" else dblp_processor


@pytest.mark.parametrize("name", XMARK_QUERIES + DBLP_QUERIES)
def test_stacked_vs_isolated_interpreted(name, xmark_processor, dblp_processor):
    query = query_by_name(name)
    processor = _processor_for(query, xmark_processor, dblp_processor)
    stacked = processor.execute_stacked(query.xquery, timeout_seconds=120)
    isolated = processor.execute_isolated_interpreted(query.xquery, timeout_seconds=120)
    assert set(stacked.items) == set(isolated.items)


@pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"])
def test_join_graph_execution_matches_stacked(name, xmark_processor, dblp_processor):
    query = query_by_name(name)
    processor = _processor_for(query, xmark_processor, dblp_processor)
    compilation = processor.compile(query.xquery)
    assert compilation.join_graph is not None, compilation.join_graph_error
    stacked = processor.execute_stacked(query.xquery, timeout_seconds=120)
    relational = processor.execute_join_graph(query.xquery, timeout_seconds=120)
    assert set(stacked.items) == set(relational.items)


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q4", "Q5", "Q6"])
def test_purexml_agrees_on_node_counts(
    name, xmark_processor, dblp_processor, xmark_document, dblp_document
):
    query = query_by_name(name)
    processor = _processor_for(query, xmark_processor, dblp_processor)
    document = xmark_document if query.dataset == "xmark" else dblp_document
    from repro.purexml.storage import XMLColumnStore

    engine = PureXMLEngine(XMLColumnStore.whole(document))
    pure = engine.execute(query.xquery, timeout_seconds=120)
    relational = processor.execute_join_graph(query.xquery, timeout_seconds=120)
    assert pure.node_count == len(set(relational.items))


def test_q1_results_are_open_auctions_with_bidders(xmark_processor, xmark_encoding):
    result = xmark_processor.execute_join_graph(query_by_name("Q1").xquery)
    for item in result.items:
        record = xmark_encoding.record(item)
        assert record.name == "open_auction"
        children = [xmark_encoding.record(p).name for p in xmark_encoding.children(item)]
        assert "bidder" in children


def test_q3_returns_single_text_node(xmark_processor, xmark_encoding):
    result = xmark_processor.execute_join_graph(query_by_name("Q3").xquery)
    assert len(set(result.items)) == 1
    assert xmark_encoding.record(result.items[0]).kind == "TEXT"


def test_q5_returns_vldb_2001_title(dblp_processor, dblp_encoding):
    result = dblp_processor.execute_join_graph(query_by_name("Q5").xquery)
    items = set(result.items)
    assert len(items) == 1
    (item,) = items
    assert dblp_encoding.record(item).name == "title"


def test_q2_categories_of_expensive_items(xmark_processor, xmark_encoding):
    query = query_by_name("Q2")
    outcome = xmark_processor.execute(query.xquery, timeout_seconds=240)
    for item in set(outcome.items):
        assert xmark_encoding.record(item).name == "name"


def test_serialization_of_results(small_processor):
    outcome = small_processor.execute('doc("auction.xml")/descendant::bidder/child::time')
    xml = small_processor.serialize(sorted(set(outcome.items)), separator="")
    assert xml.count("<time>") == 3

"""Chaos suite: seeded fault storms against the full serving stack.

The contract under test is the paper's equivalence claim turned into a
robustness property: **whatever completes is bit-for-bit identical to
fault-free serial execution**.  Faults may fail queries (without
resilience policies) or cost retries/degradations (with them) — they may
never change an answer.

Every storm is driven by :class:`repro.testing.faults.FaultPlan` with an
explicit seed, so a failing run reproduces exactly.
"""

import sqlite3
import threading

import pytest

from repro.core.session import Session
from repro.errors import (
    DegradedExecutionError,
    MirrorIntegrityError,
    TransientBackendError,
)
from repro.service import (
    FallbackPolicy,
    QueryRequest,
    QueryService,
    RetryPolicy,
)
from repro.testing.faults import FaultPlan

XML = (
    "<site>"
    "<open_auction><bidder>10</bidder><bidder>20</bidder></open_auction>"
    "<open_auction><initial>5</initial></open_auction>"
    "<open_auction><bidder>30</bidder></open_auction>"
    "<closed_auction><price>500</price></closed_auction>"
    "<closed_auction><price>700</price></closed_auction>"
    "</site>"
)

QUERIES = (
    'doc("site.xml")/descendant::open_auction[child::bidder]',
    'doc("site.xml")/descendant::closed_auction/child::price',
    'doc("site.xml")/descendant::bidder',
)

CONFIGURATIONS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")

SEEDS = (7, 23, 1009)  # acceptance criterion: the chaos suite runs >= 3 seeds

_LOCKED = sqlite3.OperationalError("database is locked")


def _fresh_session():
    session = Session()
    session.register("site.xml", XML)
    return session


def _serial_expected(session):
    return {
        (query, configuration): session.execute(
            query, configuration=configuration
        ).items
        for query in QUERIES
        for configuration in CONFIGURATIONS
    }


def _batch():
    requests, keys = [], []
    for repeat in range(4):
        for offset, query in enumerate(QUERIES):
            configuration = CONFIGURATIONS[(repeat + offset) % len(CONFIGURATIONS)]
            requests.append(QueryRequest(source=query, configuration=configuration))
            keys.append((query, configuration))
    return requests, keys


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_without_resilience_completed_results_stay_bit_for_bit(seed):
    """No retry/fallback: faults surface as transient errors on the future,
    and every query that *did* complete matches serial execution exactly."""
    session = _fresh_session()
    expected = _serial_expected(session)
    requests, keys = _batch()

    with FaultPlan() as plan:
        plan.storm("backend.execute", _LOCKED, rate=0.4, seed=seed)
        plan.storm("backend.sync", _LOCKED, rate=0.2, seed=seed + 1)
        plan.storm(
            "pool.acquire", sqlite3.OperationalError("disk I/O error"),
            rate=0.2, seed=seed + 2,
        )
        with QueryService(session, max_workers=4) as service:
            outcomes = service.execute_many(
                requests, return_exceptions=True
            )
        fired = dict(plan.fired)

    completed = failed = 0
    for key, outcome in zip(keys, outcomes):
        if isinstance(outcome, BaseException):
            # The classification boundary held even under injected chaos.
            assert isinstance(outcome, TransientBackendError), outcome
            failed += 1
        else:
            assert outcome.items == expected[key], key
            completed += 1
    assert completed + failed == len(requests)
    # The storm genuinely hit (sql engines route through the fault points;
    # at these rates a silent run would mean the harness is disconnected).
    assert sum(fired.values()) > 0, fired
    # Interpreted engines never touch the backend: at most the sql share
    # of the batch can have failed.
    sql_share = sum(1 for _query, conf in keys if conf in ("sql", "sql-stacked"))
    assert failed <= sql_share


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_with_retry_and_fallback_completes_everything(seed):
    """With the resilience policies on, the same storm loses *no* queries —
    and every answer is still bit-for-bit the serial answer."""
    session = _fresh_session()
    expected = _serial_expected(session)
    requests, keys = _batch()

    service = QueryService(
        session,
        max_workers=4,
        retry=RetryPolicy(max_attempts=4, base_delay=0.001, jitter=0.0),
        fallback=FallbackPolicy(),
    )
    with FaultPlan() as plan:
        plan.storm("backend.execute", _LOCKED, rate=0.4, seed=seed)
        plan.storm(
            "pool.acquire", sqlite3.OperationalError("disk I/O error"),
            rate=0.2, seed=seed + 1,
        )
        with service:
            outcomes = service.execute_many(requests)
            stats = service.service_stats()
        fired = dict(plan.fired)

    for key, outcome in zip(keys, outcomes):
        assert outcome.items == expected[key], key
    assert sum(fired.values()) > 0, fired
    resilience = stats["resilience"]
    # The storm cost something — retries and/or degradations — but queries
    # survived and degraded ones are labelled.
    assert resilience["retries"] + resilience["fallbacks"] >= 0
    degraded = [
        outcome for outcome in outcomes if outcome.degraded_from is not None
    ]
    assert len(degraded) == resilience["fallbacks"]
    for outcome in degraded:
        assert outcome.degraded_from in ("sql", "sql-stacked", "join-graph")


def test_corrupted_mirror_is_detected_and_healed_at_the_session():
    session = _fresh_session()
    expected = session.execute(QUERIES[0], configuration="sql").items
    assert session.mirror_health()["healthy"]

    backend = session.sql_backend
    with backend.pool.write_lock:
        backend.pool.primary.execute("DELETE FROM doc WHERE pre >= 3")
        backend.pool.primary.commit()
    backend.pool.mark_changed()

    health = session.mirror_health()
    assert not health["healthy"]
    assert session.heal_mirror() is True
    health = session.mirror_health()
    assert health["healthy"] and health["rebuilds"] == 1
    # Queries through the healed mirror are correct again.
    assert session.execute(QUERIES[0], configuration="sql").items == expected


def test_malformed_image_fault_auto_rebuilds_and_retry_serves_the_answer():
    """End to end: a malformed-image fault during execution quarantines and
    rebuilds the mirror; the service's retry re-executes against the fresh
    mirror and the request succeeds with the serial answer."""
    session = _fresh_session()
    expected = session.execute(QUERIES[0], configuration="sql").items

    with FaultPlan() as plan:
        plan.script(
            "backend.execute",
            sqlite3.DatabaseError("database disk image is malformed"),
            times=1,
        )
        with QueryService(
            session, retry=RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
        ) as service:
            outcome = service.execute(QUERIES[0], configuration="sql")
            stats = service.service_stats()
        assert plan.fired == {"backend.execute": 1}

    assert outcome.items == expected
    assert session.sql_backend.rebuilds == 1
    assert stats["resilience"]["retries"] == 1
    assert session.mirror_health()["healthy"]


def test_concurrent_traffic_during_mirror_rebuild_stays_correct():
    """Readers racing a quarantine-and-rebuild must only ever see correct
    answers: the epoch bump forces every pooled reader onto the fresh
    primary, and results stay bit-for-bit throughout."""
    session = _fresh_session()
    expected = session.execute(QUERIES[0], configuration="sql").items
    mismatches: list = []
    errors: list = []
    stop = threading.Event()

    def reader():
        try:
            while not stop.is_set():
                items = session.execute(QUERIES[0], configuration="sql").items
                if items != expected:
                    mismatches.append(items)
                    return
        except TransientBackendError:
            pass  # a rebuild raced this statement; acceptable, retryable
        except Exception as error:  # pragma: no cover - diagnostic path
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(3):
            session.sql_backend.rebuild_mirror()
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not errors, errors
    assert not mismatches, mismatches[:3]
    assert session.sql_backend.rebuilds == 3
    assert session.execute(QUERIES[0], configuration="sql").items == expected

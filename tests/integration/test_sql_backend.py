"""Differential tests for ``configuration="sql"``: SQLite vs the interpreters.

The SQL backend must be *bit-for-bit* interchangeable with the in-tree
engines: the isolated SFW block on SQLite returns exactly the interpreted
join-graph sequence, the stacked WITH-chain on SQLite returns exactly the
stacked interpreter's sequence — across the XMark and DBLP workloads, and
for prepared queries under rebinding.
"""

import pytest

from repro.errors import JoinGraphError
from repro.bench.workloads import WORKLOAD, query_by_name
from repro.core.session import Session

JOIN_GRAPH_QUERIES = ["Q1", "Q3", "Q4", "Q5", "Q6"]
ALL_QUERIES = [query.name for query in WORKLOAD]


def _processor_for(query, xmark_processor, dblp_processor):
    return xmark_processor if query.dataset == "xmark" else dblp_processor


@pytest.mark.parametrize("name", JOIN_GRAPH_QUERIES)
def test_sql_matches_interpreted_join_graph_exactly(name, xmark_processor, dblp_processor):
    query = query_by_name(name)
    processor = _processor_for(query, xmark_processor, dblp_processor)
    sql = processor.execute(query.xquery, timeout_seconds=120, configuration="sql")
    interpreted = processor.execute_join_graph(query.xquery, timeout_seconds=120)
    assert sql.configuration == "sql"
    assert sql.items == interpreted.items


@pytest.mark.parametrize("name", ALL_QUERIES)
def test_sql_stacked_matches_interpreted_stacked_exactly(
    name, xmark_processor, dblp_processor
):
    query = query_by_name(name)
    processor = _processor_for(query, xmark_processor, dblp_processor)
    sql = processor.execute_sql_stacked(query.xquery, timeout_seconds=240)
    interpreted = processor.execute_stacked(query.xquery, timeout_seconds=240)
    assert sql.configuration == "sql-stacked"
    assert sql.items == interpreted.items


@pytest.mark.parametrize("name", JOIN_GRAPH_QUERIES)
def test_sql_agrees_with_stacked_on_node_sets(name, xmark_processor, dblp_processor):
    query = query_by_name(name)
    processor = _processor_for(query, xmark_processor, dblp_processor)
    sql = processor.execute_sql(query.xquery, timeout_seconds=120)
    stacked = processor.execute_stacked(query.xquery, timeout_seconds=240)
    isolated = processor.execute_isolated_interpreted(query.xquery, timeout_seconds=240)
    assert set(sql.items) == set(stacked.items) == set(isolated.items)


def test_unknown_configuration_is_rejected(small_processor):
    with pytest.raises(ValueError):
        small_processor.execute("//b", configuration="")
    with pytest.raises(ValueError):
        small_processor.execute("//b", configuration="sqlite")
    prepared = small_processor.prepare("//b")
    with pytest.raises(ValueError):
        prepared.run(engine="")


def test_q2_value_join_isolates_and_runs_on_sql(xmark_processor):
    # The multi-conjunct key-join collapse reduces Q2 (value joins over
    # itemref/@item and incategory/@category) to one pure join graph; it
    # executes on SQLite bit-for-bit like the interpreted configurations.
    query = query_by_name("Q2")
    compilation = xmark_processor.compile(query.xquery)
    assert compilation.join_graph is not None
    via_sql = xmark_processor.execute_sql(query.xquery)
    stacked = xmark_processor.execute_stacked(query.xquery)
    assert via_sql.items == stacked.items


def test_positional_predicate_isolates_and_runs_on_sql(xmark_processor):
    # A positional predicate filters on a rank column; the windowed-rank
    # extraction renders it as a DENSE_RANK derived table inside the single
    # SFW block, bit-for-bit with the interpreted configurations.
    query = 'doc("auction.xml")/descendant::open_auction[2]/child::bidder'
    compilation = xmark_processor.compile(query)
    assert compilation.join_graph is not None
    assert len(compilation.join_graph.windows) == 1
    via_sql = xmark_processor.execute_sql(query)
    stacked = xmark_processor.execute_stacked(query)
    assert via_sql.items == stacked.items


def test_sql_requires_a_join_graph(xmark_processor):
    # A windowed rank condition combined with an aggregate-valued result
    # still exceeds the single-SFW fragment — the sql configuration must
    # refuse, not guess.
    query = (
        'for $a in doc("auction.xml")/descendant::open_auction[2] '
        "return fn:count($a/child::bidder)"
    )
    compilation = xmark_processor.compile(query)
    assert compilation.join_graph is None
    with pytest.raises(JoinGraphError):
        xmark_processor.execute_sql(query)


def test_sql_results_serialize(small_processor):
    outcome = small_processor.execute(
        'doc("auction.xml")/descendant::bidder/child::time', configuration="sql"
    )
    xml = small_processor.serialize(sorted(set(outcome.items)))
    assert xml.count("<time>") == 3


# -- prepared queries ---------------------------------------------------------------

PREPARED = (
    "declare variable $lo as xs:decimal external; "
    'doc("auction.xml")/descendant::open_auction[child::initial > $lo]'
)
AD_HOC = 'doc("auction.xml")/descendant::open_auction[child::initial > {value}]'


def test_prepared_sql_rebinds_through_named_parameters(xmark_processor):
    prepared = xmark_processor.prepare(PREPARED)
    sweep = [0, 5, 50, 500]
    for value in sweep:
        via_sql = prepared.run({"lo": value}, engine="sql")
        ad_hoc = xmark_processor.execute_sql(AD_HOC.format(value=value))
        interpreted = prepared.run({"lo": value}, engine="join-graph")
        assert via_sql.items == ad_hoc.items == interpreted.items
    # The sweep must actually discriminate, otherwise the test proves nothing.
    assert len({tuple(prepared.run({"lo": v}, engine="sql").items) for v in sweep}) > 1


def test_prepared_sql_renders_once(xmark_processor):
    prepared = xmark_processor.prepare(PREPARED)
    first = prepared.run({"lo": 1}, engine="sql")
    second = prepared.run({"lo": 99}, engine="sql")
    # Both runs executed the same SQL text (named :lo markers, no re-render)...
    assert first.details.sql is second.details.sql
    assert ":lo" in first.details.sql
    # ... with different bound values.
    assert first.details.bindings != second.details.bindings


def test_prepared_sql_can_be_explained_without_bindings(xmark_processor):
    prepared = xmark_processor.prepare(PREPARED)
    sql = prepared.run({"lo": 1}, engine="sql").details.sql
    plan = xmark_processor.sql_backend.query_plan(sql)  # :lo stays unbound
    assert any("doc" in line for line in plan), plan


def test_prepared_sql_stacked_rebinds(xmark_processor):
    prepared = xmark_processor.prepare(PREPARED)
    for value in (0, 30):
        via_sql = prepared.run({"lo": value}, engine="sql-stacked")
        interpreted = prepared.run({"lo": value}, engine="stacked")
        assert via_sql.items == interpreted.items


# -- session integration ------------------------------------------------------------


def test_session_mirrors_catalog_incrementally():
    session = Session()
    session.register("books.xml", "<books><book>A</book><book>B</book></books>")
    first = session.execute(
        'doc("books.xml")/child::books/child::book', configuration="sql"
    )
    assert first.node_count == 2
    loaded_before = session.sql_backend.loaded_rows
    session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
    second = session.execute('doc("tiny.xml")/descendant::b', configuration="sql")
    assert second.node_count == 2
    # Registration appended to the existing mirror rather than reloading it.
    assert session.sql_backend.loaded_rows > loaded_before
    assert session.sql_backend.row_count() == len(session.store.encoding)
    # Earlier results stay valid: pre ranks are append-only.
    assert session.execute(
        'doc("books.xml")/child::books/child::book', configuration="sql"
    ).items == first.items


def test_session_cache_stats_span_backends_and_registrations():
    session = Session()
    session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
    query = 'doc("tiny.xml")/descendant::b'
    baseline = session.cache_stats()
    session.execute(query, configuration="sql")
    session.execute(query, configuration="join-graph")
    session.execute(query, configuration="sql-stacked")
    stats = session.cache_stats()
    # One compilation serves every backend: first call misses, the rest hit.
    assert stats["misses"] == baseline["misses"] + 1
    assert stats["hits"] >= baseline["hits"] + 2
    session.register("more.xml", "<m><b>3</b></m>")
    session.execute(query, configuration="sql")
    after = session.cache_stats()
    assert after["misses"] == stats["misses"]  # registration kept the plan cache

def test_join_order_hint_refreshes_after_catalog_growth():
    session = Session()
    session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
    query = 'doc("tiny.xml")/descendant::b'
    first = session.execute(query, configuration="sql")
    session.register("big.xml", "<big>" + "<b>9</b>" * 50 + "</big>")
    second = session.execute(query, configuration="sql")
    assert second.items == first.items
    # The CROSS JOIN order is re-planned against the grown catalog's
    # statistics, not frozen from the first (tiny) database.
    compilation = session.processor.compile(query)
    stats_key, _sql = compilation.sql_backend_sql
    assert stats_key[1] == len(session.store.encoding)


def test_prepared_session_handle_survives_registration_on_sql():
    session = Session()
    session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
    prepared = session.prepare(
        "declare variable $n as xs:decimal external; "
        'doc("tiny.xml")/descendant::b[. > $n]'
    )
    before = prepared.run({"n": 0}, engine="sql").items
    session.register("other.xml", "<o><b>9</b></o>")
    assert prepared.run({"n": 0}, engine="sql").items == before
    assert prepared.run({"n": 1}, engine="sql").items != before

"""Differential tests for the widened fragment (PR 5).

Every construct the widened front end accepts — FLWOR ``let``/``where``,
value joins between two bound sequences, positional predicates, and
``fn:count``/``fn:sum``/``fn:avg`` aggregates — must produce bit-for-bit
identical item sequences on every engine configuration that accepts the
query, ad-hoc and prepared, including the property-style edge cases the
paper's workloads exercise: empty sequences, duplicate join keys, and
aggregates over empty groups.
"""

import pytest

from repro.core.session import Session
from repro.purexml.engine import PureXMLEngine
from repro.purexml.storage import XMLColumnStore
from repro.xmldb.parser import parse_xml

#: Engines with a join graph; positional queries run on the subset below.
ALL_CONFIGS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")
NO_JOIN_GRAPH_CONFIGS = ("stacked", "isolated", "sql-stacked")

#: Duplicate join keys on both sides (two watches naming one item, two
#: items sharing a name), an empty person, and an unreferenced item.
XML = """<site>
 <people>
  <person id="p0"><name>Alice</name><watch>i3</watch><watch>i1</watch></person>
  <person id="p1"><name>Bob</name><watch>i2</watch><watch>i3</watch></person>
  <person id="p2"><name>Cleo</name></person>
 </people>
 <items>
  <item id="i1"><name>Lamp</name><quantity>5</quantity></item>
  <item id="i2"><name>Desk</name><quantity>7</quantity></item>
  <item id="i3"><name>Lamp</name><quantity>2</quantity></item>
  <item id="i4"><name>Vase</name></item>
 </items>
</site>"""

VALUE_JOIN_QUERIES = [
    # plain value join, duplicate keys on both sides
    (
        'for $p in doc("site.xml")/descendant::person '
        'for $i in doc("site.xml")/descendant::item '
        "where $p/child::watch = $i/attribute::id "
        "return $i/child::name"
    ),
    # let-bound document, multi-variable for, conjunction with a literal test
    (
        'let $a := doc("site.xml") '
        "for $p in $a/descendant::person, $i in $a/descendant::item "
        'where $p/child::watch = $i/attribute::id and $p/attribute::id = "p0" '
        "return $i"
    ),
    # inequality value join
    (
        'for $p in doc("site.xml")/descendant::person '
        'for $i in doc("site.xml")/descendant::item '
        "where $p/child::watch != $i/attribute::id "
        "return $i"
    ),
    # empty result: no watch matches a nonexistent id scheme
    (
        'for $p in doc("site.xml")/descendant::person '
        'for $i in doc("site.xml")/descendant::item '
        "where $p/child::name = $i/attribute::id "
        "return $i"
    ),
]

AGGREGATE_QUERIES = [
    'fn:count(doc("site.xml")/descendant::watch)',
    'fn:count(doc("site.xml")/descendant::nosuch)',  # aggregate over empty
    'fn:sum(doc("site.xml")/descendant::quantity)',
    'fn:sum(doc("site.xml")/descendant::nosuch)',  # sum(()) = 0
    'fn:avg(doc("site.xml")/descendant::quantity)',
    'fn:avg(doc("site.xml")/descendant::nosuch)',  # avg(()) = ()
    # nested, with empty groups (p2 has no watch; i4 has no quantity)
    'for $p in doc("site.xml")/descendant::person return fn:count($p/child::watch)',
    'for $i in doc("site.xml")/descendant::item return fn:sum($i/child::quantity)',
    'for $i in doc("site.xml")/descendant::item return fn:avg($i/child::quantity)',
    # let-bound argument
    'let $ws := doc("site.xml")/descendant::watch return fn:count($ws)',
    # aggregate over a value-joined argument (XMark Q8 shape)
    (
        'for $p in doc("site.xml")/descendant::person '
        "return fn:count(doc(\"site.xml\")/descendant::item[attribute::id = $p/child::watch])"
    ),
]

POSITIONAL_QUERIES = [
    'doc("site.xml")/descendant::watch[2]',
    'doc("site.xml")/descendant::watch[9]',  # out of range: empty
    'doc("site.xml")/descendant::person[1]/child::watch',
]

ORDER_BY_QUERIES = [
    # order by a child value; Alice/Bob/Cleo are already sorted, so use the
    # watch values which are not in document order
    (
        'for $p in doc("site.xml")/descendant::person '
        "order by $p/child::name/text() return $p/child::name"
    ),
    (
        'for $w in doc("site.xml")/descendant::watch '
        "order by $w/text() return $w"
    ),
    # a binding with no key (i4 has no quantity) drops out of the result
    (
        'for $i in doc("site.xml")/descendant::item '
        "order by $i/child::quantity/text() return $i/attribute::id"
    ),
    # explicit ascending keyword
    (
        'for $i in doc("site.xml")/descendant::item '
        "order by $i/child::name/text() ascending return $i/child::name"
    ),
    # order by under a where clause
    (
        'for $p in doc("site.xml")/descendant::person '
        "where fn:count($p/child::watch) > 0 "
        "order by $p/child::name/text() return $p"
    ),
]

QUANTIFIED_QUERIES = [
    (
        'for $p in doc("site.xml")/descendant::person '
        'where some $w in $p/child::watch satisfies $w/text() = "i3" '
        "return $p/child::name"
    ),
    (  # vacuously true for the watch-less person p2
        'for $p in doc("site.xml")/descendant::person '
        'where every $w in $p/child::watch satisfies $w/text() = "i3" '
        "return $p/attribute::id"
    ),
    (  # quantifier inside a path predicate
        'doc("site.xml")/descendant::person'
        '[some $w in child::watch satisfies $w/text() = "i2"]/child::name'
    ),
]

EXISTS_EMPTY_QUERIES = [
    (
        'for $p in doc("site.xml")/descendant::person '
        "where fn:exists($p/child::watch) return $p/child::name"
    ),
    (
        'for $p in doc("site.xml")/descendant::person '
        "where fn:empty($p/child::watch) return $p/child::name"
    ),
    # unprefixed built-in names inside path predicates
    'doc("site.xml")/descendant::item[exists(child::quantity)]/attribute::id',
    'doc("site.xml")/descendant::item[empty(child::quantity)]/attribute::id',
    # exists over an empty-everywhere path: empty result
    (
        'for $p in doc("site.xml")/descendant::person '
        "where fn:exists($p/child::nosuch) return $p"
    ),
]

WHERE_AGGREGATE_QUERIES = [
    (
        'for $p in doc("site.xml")/descendant::person '
        "where fn:count($p/child::watch) > 1 return $p"
    ),
    (  # literal on the left: must mean the same as the flipped form
        'for $p in doc("site.xml")/descendant::person '
        "where 1 < fn:count($p/child::watch) return $p"
    ),
    (
        'for $p in doc("site.xml")/descendant::person '
        "where fn:count($p/child::watch) = 0 return $p/child::name"
    ),
]


@pytest.fixture(scope="module")
def session():
    session = Session()
    session.register("site.xml", XML)
    return session


def _assert_engines_agree(session, query, configs):
    results = {}
    for configuration in configs:
        results[configuration] = session.execute(query, configuration=configuration).items
    reference = results[configs[0]]
    for configuration, items in results.items():
        assert items == reference, (configuration, items, reference)
    return reference


@pytest.mark.parametrize("query", VALUE_JOIN_QUERIES)
def test_value_joins_agree_on_all_engines(session, query):
    _assert_engines_agree(session, query, ALL_CONFIGS)
    # Value joins reach the Fig. 8/9 SQL path: a join graph must exist.
    assert session.processor.compile(query).join_graph is not None


@pytest.mark.parametrize("query", AGGREGATE_QUERIES)
def test_aggregates_agree_on_all_engines(session, query):
    _assert_engines_agree(session, query, ALL_CONFIGS)
    compilation = session.processor.compile(query)
    assert compilation.join_graph is not None
    assert compilation.join_graph.aggregate is not None


@pytest.mark.parametrize("query", POSITIONAL_QUERIES)
def test_positional_predicates_agree_on_all_engines(session, query):
    """Positional predicates select on a rank; the windowed-rank extraction
    carries them into the join graph as DENSE_RANK conditions, so every
    configuration — including join-graph and sql — agrees bit-for-bit."""
    _assert_engines_agree(session, query, ALL_CONFIGS)
    compilation = session.processor.compile(query)
    assert compilation.join_graph is not None
    assert compilation.join_graph.windows


@pytest.mark.parametrize("query", WHERE_AGGREGATE_QUERIES)
def test_aggregates_in_conditions_agree_on_all_engines(session, query):
    """An aggregate compared inside a where clause renders as a correlated
    HAVING-style subquery on the grouped encoding; every configuration
    agrees bit-for-bit, including aggregates over empty groups."""
    _assert_engines_agree(session, query, ALL_CONFIGS)
    compilation = session.processor.compile(query)
    assert compilation.join_graph is not None
    assert compilation.join_graph.having


@pytest.mark.parametrize("query", ORDER_BY_QUERIES)
def test_order_by_agrees_on_all_engines(session, query):
    """``order by`` re-ranks each FLWOR iteration by its (single, ascending,
    string-valued) key before the positional rank is taken; all five
    relational configurations agree bit-for-bit."""
    _assert_engines_agree(session, query, ALL_CONFIGS)


@pytest.mark.parametrize("query", QUANTIFIED_QUERIES)
def test_quantified_expressions_agree_on_all_engines(session, query):
    """``some`` desugars to an existence test over a witness loop and
    ``every`` to a zero-violations aggregate comparison; both run on every
    configuration."""
    _assert_engines_agree(session, query, ALL_CONFIGS)


@pytest.mark.parametrize("query", EXISTS_EMPTY_QUERIES)
def test_exists_empty_agree_on_all_engines(session, query):
    """``fn:exists`` is the plain existence test; ``fn:empty`` routes through
    the count-comparison (HAVING) machinery so empty groups stay visible."""
    _assert_engines_agree(session, query, ALL_CONFIGS)


def test_every_with_existence_predicate_refuses_on_join_graph(session):
    """``every … satisfies <path>`` negates to fn:empty, which nests a count
    aggregate inside the violation count — outside the single-join-graph
    fragment.  Interpreted configurations still agree; join-graph and sql
    refuse with the documented error class."""
    from repro.errors import JoinGraphError

    query = (
        'for $i in doc("site.xml")/descendant::item '
        "where every $q in $i/child::quantity satisfies $q/text() "
        "return $i/attribute::id"
    )
    _assert_engines_agree(session, query, NO_JOIN_GRAPH_CONFIGS)
    for configuration in ("join-graph", "sql"):
        with pytest.raises(JoinGraphError):
            session.execute(query, configuration=configuration)


def test_order_by_result_is_key_ordered(session):
    """Acceptance: watches sorted by their text value, not document order."""
    query = (
        'for $w in doc("site.xml")/descendant::watch '
        "order by $w/text() return $w"
    )
    items = session.execute(query, configuration="sql").items
    encoding = session.processor.encoding
    assert [encoding.record(item).value for item in items] == [
        "i1",
        "i2",
        "i3",
        "i3",
    ]


def test_purexml_agrees_on_phase_c_constructs():
    """The navigational engine implements order by / quantifiers / exists /
    empty natively (no normalization) yet selects the same nodes in the same
    order as the relational stack."""
    document = parse_xml(XML, uri="site.xml")
    engine = PureXMLEngine(XMLColumnStore.whole(document))
    session = Session()
    session.register("site.xml", XML)
    encoding = session.processor.encoding
    for query in (
        ORDER_BY_QUERIES[:2]
        + QUANTIFIED_QUERIES[:2]
        + EXISTS_EMPTY_QUERIES[:2]
    ):
        relational = session.execute(query, configuration="sql")
        pure = engine.execute(query)
        assert [node.string_value() for node in pure.nodes] == [
            _string_value(encoding, item) for item in relational.items
        ], query


def _string_value(encoding, pre):
    """String value of an encoded node: concatenated text of its subtree."""
    record = encoding.record(pre)
    if record.kind in ("TEXT", "ATTR"):
        return record.value
    return "".join(
        encoding.record(inner).value
        for inner in encoding.subtree(pre, include_self=False)
        if encoding.record(inner).kind == "TEXT"
    )


def test_aggregate_value_duplicates_survive_decode(session):
    """Regression: per-iteration aggregate *values* may repeat across
    iterations (two persons each watching two items), and the decode step
    must not apply the node-sequence dedup to them.  Every configuration
    returns one count per person, duplicates included."""
    query = (
        'for $p in doc("site.xml")/descendant::person '
        "return fn:count($p/child::watch)"
    )
    for configuration in ALL_CONFIGS:
        items = session.execute(query, configuration=configuration).items
        assert items == [2, 2, 0], configuration
    correlated = (
        'for $p in doc("site.xml")/descendant::person '
        'return fn:count(doc("site.xml")/descendant::item'
        "[attribute::id = $p/child::watch])"
    )
    for configuration in ALL_CONFIGS:
        items = session.execute(correlated, configuration=configuration).items
        assert items == [2, 2, 0], configuration


def test_aggregates_rendered_as_native_sql():
    """Acceptance: the sql configuration must aggregate *in* SQL — COUNT/
    SUM/AVG appear in the executed statement and the result arrives already
    aggregated (a single row / one row per group), not as rows that Python
    re-aggregates."""
    session = Session()
    session.register("site.xml", XML)
    scalar = session.execute(
        'fn:count(doc("site.xml")/descendant::watch)', configuration="sql"
    )
    assert "COUNT(" in scalar.details.sql
    assert scalar.details.row_count == 1  # aggregated by SQLite, not in decode
    nested = session.execute(
        'for $p in doc("site.xml")/descendant::person return fn:count($p/child::watch)',
        configuration="sql",
    )
    assert "COUNT(" in nested.details.sql
    assert "GROUP BY" in nested.details.sql
    assert "LEFT JOIN" in nested.details.sql
    assert nested.details.row_count == 3  # one row per person
    summed = session.execute(
        'for $i in doc("site.xml")/descendant::item return fn:sum($i/child::quantity)',
        configuration="sql",
    )
    assert "SUM(" in summed.details.sql
    assert summed.items == [5.0, 7.0, 2.0, 0]


@pytest.mark.parametrize(
    "query,bindings_list",
    [
        (
            "declare variable $id external; "
            'for $p in doc("site.xml")/descendant::person '
            'for $i in doc("site.xml")/descendant::item '
            "where $p/child::watch = $i/attribute::id and $p/attribute::id = $id "
            "return $i",
            [{"id": "p0"}, {"id": "p1"}, {"id": "p2"}],
        ),
        (
            "declare variable $n as xs:integer external; "
            'doc("site.xml")/descendant::watch[$n]',
            [{"n": 1}, {"n": 3}, {"n": 9}],
        ),
    ],
)
def test_prepared_rebinding_matches_adhoc(session, query, bindings_list):
    prepared = session.prepare(query)
    configs = (
        ALL_CONFIGS if prepared.compilation.join_graph is not None else NO_JOIN_GRAPH_CONFIGS
    )
    for bindings in bindings_list:
        for configuration in configs:
            prepared_items = prepared.run(bindings, engine=configuration).items
            adhoc_items = session.execute(
                query, bindings=bindings, configuration=configuration
            ).items
            assert prepared_items == adhoc_items, (configuration, bindings)


def test_purexml_agrees_on_the_widened_fragment():
    """The navigational engine agrees with the relational stack on value
    joins (distinct node string values), positional predicates, and
    aggregate values."""
    document = parse_xml(XML, uri="site.xml")
    engine = PureXMLEngine(XMLColumnStore.whole(document))
    session = Session()
    session.register("site.xml", XML)
    encoding = session.processor.encoding

    join_query = (
        'for $p in doc("site.xml")/descendant::person '
        'for $i in doc("site.xml")/descendant::item '
        "where $p/child::watch = $i/attribute::id "
        "return $i/child::name"
    )
    relational = session.execute(join_query, configuration="sql")
    pure = engine.execute(join_query)
    # pureXML keeps per-iteration duplicates; compare the distinct value sets.
    assert {node.string_value() for node in pure.nodes} == {
        encoding.record(item).value for item in relational.items
    }

    positional = 'doc("site.xml")/descendant::watch[2]'
    pure_positional = engine.execute(positional)
    relational_positional = session.execute(positional, configuration="stacked")
    assert [node.string_value() for node in pure_positional.nodes] == [
        encoding.record(item).value for item in relational_positional.items
    ]

    for aggregate_query, expected in [
        ('fn:count(doc("site.xml")/descendant::watch)', [4]),
        ('fn:sum(doc("site.xml")/descendant::quantity)', [14.0]),
        ('fn:avg(doc("site.xml")/descendant::nosuch)', []),
    ]:
        assert engine.execute(aggregate_query).values == expected
        assert session.execute(aggregate_query, configuration="sql").items == expected

"""The full XMark Q1-Q20 suite, differentially across the five engines.

Every query of the XMark benchmark [Schmidt et al., VLDB 2002], adapted to
the reproduction's XQuery fragment and the in-tree auction-document
generator, runs on all five engine configurations — ad-hoc and prepared —
and must return bit-for-bit identical item sequences, with the stacked
interpreter as the oracle.  Queries whose original formulation uses a
construct outside the fragment (arithmetic in Q7/Q11/Q12/Q20,
``contains()`` in Q14, user-defined functions in Q18, node-order
comparison in Q4, element construction in Q10/Q19) are adapted to preserve
the query's *access pattern* — the joins, predicates, positionals,
quantifiers and aggregates the paper's compiler has to handle — and three
(Q7, Q14, Q18) are kept in their original out-of-fragment form as
executable refusal annotations: the documented error class is asserted on
every configuration, so the README coverage matrix stays checkable, not
prose.

This suite is the stress harness the ROADMAP asks for: it is what flushed
out the decode-stage bug where per-iteration aggregate values were
deduplicated like node sequences (Q8 returned one row per *distinct*
count instead of one per person).
"""

import pytest

from repro.bench.xmark import XMARK_SUITE as SUITE
from repro.core.session import Session
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document

CONFIGS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")

#: Small but structurally rich instance: every query below has a non-empty
#: answer (except where emptiness is the point), bidders/buyers/profiles
#: all exist, and incomes straddle the 50000 threshold Q12/Q20 test.  The
#: auction count is deliberately modest — Q3's two windowed ranks are
#: compared by an *inequality*, which gives the interpreted join graph no
#: equality predicate to order that comparison on, so tier-1 keeps the
#: auction count small even though window-scope pruning keeps each rank
#: pass itself cheap.
DATASET = XMarkConfig(
    scale=1.0,
    seed=11,
    items_per_region=2,
    categories=4,
    people=10,
    open_auctions=6,
    closed_auctions=8,
    max_bidders=4,
)

#: XMarkCase.min_items floors assume this module's DATASET counts.
assert DATASET.people == 10
assert DATASET.items_per_region * 6 == 12



@pytest.fixture(scope="module")
def session():
    session = Session(default_document="auction.xml")
    session.register_document(generate_xmark_document(DATASET))
    return session


@pytest.mark.parametrize("case", SUITE, ids=[case.name for case in SUITE])
def test_adhoc_differential(session, case):
    """Ad-hoc: every configuration matches the stacked oracle bit-for-bit,
    or every configuration raises the annotated error class."""
    if case.refusal is not None:
        for configuration in CONFIGS:
            with pytest.raises(case.refusal):
                session.execute(case.xquery, configuration=configuration)
        return
    oracle = session.execute(
        case.xquery, configuration="stacked", timeout_seconds=120
    ).items
    assert len(oracle) >= case.min_items, (case.name, oracle)
    for configuration in CONFIGS[1:]:
        items = session.execute(
            case.xquery, configuration=configuration, timeout_seconds=120
        ).items
        assert items == oracle, (case.name, configuration, items, oracle)


@pytest.mark.parametrize("case", SUITE, ids=[case.name for case in SUITE])
def test_prepared_differential(session, case):
    """Prepared: the compiled-once handle returns the same items as ad-hoc
    on every configuration; refusals surface at prepare time."""
    if case.refusal is not None:
        with pytest.raises(case.refusal):
            session.prepare(case.xquery)
        return
    prepared = session.prepare(case.xquery)
    oracle = session.execute(
        case.xquery, configuration="stacked", timeout_seconds=120
    ).items
    for configuration in CONFIGS:
        items = prepared.run(engine=configuration, timeout_seconds=120).items
        assert items == oracle, (case.name, configuration, items, oracle)


def test_every_runnable_query_isolates(session):
    """Acceptance for the closed matrix: every in-fragment XMark query now
    isolates a join graph — positionals (Q2/Q3) and where-aggregates
    included — so the join-graph and sql columns have no refusal rows
    left among Q1-Q20."""
    for case in SUITE:
        if case.refusal is not None:
            continue
        compilation = session.processor.compile(case.xquery)
        assert compilation.join_graph is not None, case.name
    windows = session.processor.compile(SUITE[1].xquery).join_graph.windows
    assert windows, "Q2 must carry its positional predicate as a window"


def test_refusals_are_uniform_and_documented(session):
    """The three out-of-fragment queries refuse with the *same* documented
    error class on every configuration: the refusal happens in the shared
    front end, never in one engine's private code path."""
    for case in SUITE:
        if case.refusal is None:
            continue
        for configuration in CONFIGS:
            with pytest.raises(case.refusal):
                session.execute(case.xquery, configuration=configuration)

"""Tests for the pureXML-substitute baseline (storage, indexes, XSCAN)."""

import pytest

from repro.purexml.engine import PureXMLEngine
from repro.purexml.pattern_index import XMLPatternIndex
from repro.purexml.storage import XMLColumnStore, segment_document
from repro.xmldb.parser import parse_xml

XML = """
<site>
  <people>
    <person id="person0"><name>Ada</name></person>
    <person id="person1"><name>Alan</name></person>
  </people>
  <closed_auctions>
    <closed_auction><price>600</price></closed_auction>
    <closed_auction><price>20</price></closed_auction>
  </closed_auctions>
</site>
"""


@pytest.fixture(scope="module")
def doc():
    return parse_xml(XML, uri="auction.xml")


def test_whole_store_has_single_row(doc):
    assert len(XMLColumnStore.whole(doc)) == 1


def test_segmentation_produces_many_small_rows(doc):
    store = XMLColumnStore.from_segments(doc, segment_depth=3)
    assert len(store) >= 4
    assert store.segmented


def test_pattern_index_lookup(doc):
    store = XMLColumnStore.from_segments(doc, segment_depth=3)
    index = XMLPatternIndex("/site/people/person/@id").build(store)
    rids = index.lookup("person0")
    assert len(rids) == 1


def test_pattern_index_range_lookup_typed(doc):
    store = XMLColumnStore.whole(doc)
    index = XMLPatternIndex("//closed_auction/price", as_type="DOUBLE").build(store)
    assert index.lookup_range(">", 500.0)
    assert not index.lookup_range(">", 10000.0)


def test_xscan_path_evaluation(doc):
    engine = PureXMLEngine(XMLColumnStore.whole(doc))
    result = engine.execute("/site/people/person/name/text()")
    assert result.node_count == 2
    assert result.rows_visited == 1


def test_xscan_predicate_and_index_pruning(doc):
    store = XMLColumnStore.from_segments(doc, segment_depth=3)
    engine = PureXMLEngine(store)
    engine.create_pattern_index("/site/people/person/@id")
    result = engine.execute('/site/people/person[@id = "person0"]/name/text()')
    assert result.node_count == 1
    assert result.used_index is not None
    assert result.rows_visited < len(store)


def test_whole_store_cannot_prune(doc):
    engine = PureXMLEngine(XMLColumnStore.whole(doc))
    engine.create_pattern_index("/site/people/person/@id")
    result = engine.execute('/site/people/person[@id = "person0"]/name/text()')
    assert result.rows_visited == 1  # the single monolithic row must be traversed


def test_flwor_evaluation(doc):
    engine = PureXMLEngine(XMLColumnStore.whole(doc))
    result = engine.execute(
        'for $c in /site/closed_auctions/closed_auction[price > 500] return $c/price/text()'
    )
    assert result.node_count == 1


def test_results_agree_with_relational_pipeline(small_auction_encoding, small_processor):
    from repro.xmldb.parser import parse_xml as parse
    from tests.conftest import SMALL_AUCTION_XML
    doc = parse(SMALL_AUCTION_XML, uri="auction.xml")
    engine = PureXMLEngine(XMLColumnStore.whole(doc))
    query = 'doc("auction.xml")/descendant::open_auction[bidder]'
    pure = engine.execute(query)
    relational = small_processor.execute_join_graph(query)
    assert pure.node_count == len(set(relational.items))

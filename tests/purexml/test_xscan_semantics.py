"""Regression tests for XSCAN semantics: fn:boolean EBV and real timeouts."""

import time

import pytest

from repro.errors import PureXMLError, QueryTimeoutError
from repro.purexml.xscan import XScan
from repro.xmldb.parser import parse_xml
from repro.xquery import ast

DOC = parse_xml("<r><a>1</a><b/></r>", uri="doc.xml")


def _ebv(argument):
    scan = XScan(DOC)
    return scan.evaluate(ast.FnBoolean(argument))


def test_fn_boolean_of_empty_sequence_is_false():
    assert _ebv(ast.EmptySequence()) == [False]


def test_fn_boolean_of_node_sequence_is_true():
    # /child::r yields one element node -> EBV true.
    assert _ebv(ast.Step(ast.Root(), "child", "r")) == [True]
    # A multi-node sequence is also true (first item is a node).
    assert _ebv(ast.Step(ast.Step(ast.Root(), "child", "r"), "child", "*")) == [True]


def test_fn_boolean_of_missing_nodes_is_false():
    assert _ebv(ast.Step(ast.Root(), "child", "nope")) == [False]


def test_fn_boolean_of_strings_and_numbers():
    assert _ebv(ast.StringLiteral("")) == [False]
    assert _ebv(ast.StringLiteral("x")) == [True]
    assert _ebv(ast.NumberLiteral(0)) == [False]
    assert _ebv(ast.NumberLiteral(0.0)) == [False]
    assert _ebv(ast.NumberLiteral(float("nan"))) == [False]
    assert _ebv(ast.NumberLiteral(7)) == [True]


def test_fn_boolean_multi_item_atomic_sequence_is_a_type_error():
    scan = XScan(DOC)
    env = {"two": ["a", "b"]}
    with pytest.raises(PureXMLError):
        scan.evaluate(ast.FnBoolean(ast.VarRef("two")), env)


def test_timeout_reports_real_budget_and_elapsed():
    budget = 0.25
    deadline = time.perf_counter() - 1.0  # already expired
    scan = XScan(DOC, deadline=deadline, budget=budget)
    with pytest.raises(QueryTimeoutError) as excinfo:
        scan.evaluate(ast.Step(ast.Root(), "descendant", "*"))
    error = excinfo.value
    assert error.budget_seconds == budget
    # Elapsed is measured, not the seed's hard-coded 0.0: the deadline passed
    # ~1s ago after a 0.25s budget, so elapsed must exceed the budget.
    assert error.elapsed_seconds > budget

"""Tier-1 slice of the property-based differential sweep.

The deep sweep runs nightly in CI (``python -m repro.testing.queries``);
this file pins a fixed seeded corpus of ~200 generated queries into the
regular test run so the generator, the differential contract and the five
engines are exercised on every push.
"""

import pytest

from repro.core.session import Session
from repro.testing.queries import (
    DIFFERENTIAL_XML,
    QueryGenerator,
    check_differential,
    run_sweep,
)

TIER1_SEED = 0
TIER1_CASES = 200

#: Chunked parametrization: one test per block of 25 keeps pytest output
#: readable while a failure still reports the exact reproducing
#: ``(seed, index, source)`` triple through check_differential's message.
BLOCK = 25


@pytest.fixture(scope="module")
def session():
    session = Session()
    session.register("site.xml", DIFFERENTIAL_XML)
    return session


@pytest.mark.parametrize("start", range(0, TIER1_CASES, BLOCK))
def test_generated_queries_agree_across_engines(session, start):
    generator = QueryGenerator(TIER1_SEED)
    for index in range(start, start + BLOCK):
        check_differential(session, generator.case(index))


def test_generation_is_deterministic():
    """Case ``i`` of seed ``s`` is stable — independent of corpus size."""
    a = QueryGenerator(7).corpus(40)
    b = [QueryGenerator(7).case(index) for index in range(40)]
    assert a == b
    assert QueryGenerator(7).case(3) != QueryGenerator(8).case(3)


def test_corpus_covers_every_feature_class():
    """The tier-1 corpus exercises each fragment construct the ISSUE names:
    paths, predicates, value joins, aggregates, positionals, quantifiers,
    order by."""
    features: set = set()
    for query in QueryGenerator(TIER1_SEED).corpus(TIER1_CASES):
        features.update(query.features)
    assert {
        "path",
        "positional",
        "comparison",
        "value-join",
        "aggregate",
        "where-aggregate",
        "return-aggregate",
        "exists-empty",
        "quantifier",
        "order-by",
    } <= features, sorted(features)


def test_sweep_reports_census(session):
    """run_sweep (the nightly entry point's core) returns outcomes plus a
    feature census and flags legitimate refusals as such."""
    outcomes, census = run_sweep(12, seed=3, session=session)
    assert len(outcomes) == 12
    assert sum(census["features"].values()) >= 12
    for outcome in outcomes:
        assert set(outcome.refused) <= {"join-graph", "sql"}

"""Columnar-vs-row differential sweep over the generated query corpus.

Satellite of the columnar execution core PR: the same seeded 200-case
slice that ``test_queries.py`` pins is run twice — through a session with
``columnar_execution=True`` (the default) and one with the row paths —
and every case must produce identical item sequences *and* identical
refusal behaviour under all five engine configurations.  This is the
property-level proof that the columnar flag is purely an execution-core
switch: plans, results and JoinGraphError refusals are unchanged.
"""

import pytest

from repro.core.session import DocumentStore, Session
from repro.errors import JoinGraphError
from repro.testing.queries import CONFIGS, DIFFERENTIAL_XML, QueryGenerator

SEED = 0
CASES = 200

#: Same chunking rationale as test_queries.py: readable pytest output,
#: failures still report the reproducing (seed, index, source) triple.
BLOCK = 25


@pytest.fixture(scope="module")
def sessions():
    store = DocumentStore()
    store.register_xml("site.xml", DIFFERENTIAL_XML)
    columnar = Session(store=store, columnar_execution=True)
    row = Session(store=store, columnar_execution=False)
    return columnar, row


def _outcome(session, source, configuration):
    """Items, or the refusal marker — refusals must match mode-for-mode."""
    try:
        return session.execute(source, configuration=configuration).items
    except JoinGraphError:
        return "refused"


@pytest.mark.parametrize("start", range(0, CASES, BLOCK))
def test_columnar_flag_is_differential(sessions, start):
    columnar, row = sessions
    generator = QueryGenerator(SEED)
    for index in range(start, start + BLOCK):
        query = generator.case(index)
        label = f"seed={query.seed} index={query.index} query={query.source!r}"
        for configuration in CONFIGS:
            columnar_outcome = _outcome(columnar, query.source, configuration)
            row_outcome = _outcome(row, query.source, configuration)
            assert columnar_outcome == row_outcome, (
                f"columnar and row execution disagree on {configuration} "
                f"({label}): {columnar_outcome!r} != {row_outcome!r}"
            )

"""Unit tests for the deterministic fault-injection harness itself.

The chaos suite's conclusions are only as strong as the harness: these
tests pin firing semantics (scripted budgets, skip counts, seeded storms,
exclusive installation) without involving any backend.
"""

import threading

import pytest

from repro.testing.faults import FaultPlan, fire, injection_counts


class _Boom(RuntimeError):
    pass


def test_fire_is_a_noop_without_a_plan():
    fire("backend.execute")  # must not raise
    assert injection_counts() == {}


def test_scripted_fault_fires_exactly_n_times():
    with FaultPlan() as plan:
        plan.script("backend.execute", _Boom("x"), times=2)
        with pytest.raises(_Boom):
            fire("backend.execute")
        with pytest.raises(_Boom):
            fire("backend.execute")
        fire("backend.execute")  # budget exhausted
        assert plan.fired == {"backend.execute": 2}
        assert injection_counts() == {"backend.execute": 2}


def test_after_skips_the_first_firings():
    with FaultPlan() as plan:
        plan.script("backend.sync", _Boom, times=1, after=2)
        fire("backend.sync")
        fire("backend.sync")
        with pytest.raises(_Boom):
            fire("backend.sync")
        fire("backend.sync")
        assert plan.fired == {"backend.sync": 1}


def test_error_spec_accepts_instance_class_and_factory():
    with FaultPlan() as plan:
        plan.script("pool.acquire", _Boom("instance"))
        with pytest.raises(_Boom, match="instance"):
            fire("pool.acquire")
    with FaultPlan() as plan:
        plan.script("pool.acquire", _Boom)
        with pytest.raises(_Boom):
            fire("pool.acquire")
    with FaultPlan() as plan:
        plan.script("pool.acquire", lambda: _Boom("made"))
        with pytest.raises(_Boom, match="made"):
            fire("pool.acquire")


def test_unknown_point_is_rejected_at_authoring_time():
    plan = FaultPlan()
    with pytest.raises(ValueError, match="unknown injection point"):
        plan.script("backend.exeucte", _Boom)  # typo guard


def test_storm_is_reproducible_from_its_seed():
    def run(seed):
        outcomes = []
        with FaultPlan() as plan:
            plan.storm("backend.execute", _Boom, rate=0.5, seed=seed)
            for _ in range(64):
                try:
                    fire("backend.execute")
                    outcomes.append(False)
                except _Boom:
                    outcomes.append(True)
        return outcomes

    assert run(7) == run(7)
    assert run(7) != run(8)  # astronomically unlikely to collide
    assert any(run(7)) and not all(run(7))


def test_storm_times_caps_total_faults():
    faults = 0
    with FaultPlan() as plan:
        plan.storm("backend.execute", _Boom, rate=1.0, seed=1, times=3)
        for _ in range(10):
            try:
                fire("backend.execute")
            except _Boom:
                faults += 1
    assert faults == 3
    assert plan.fired["backend.execute"] == 3


def test_plan_installation_is_exclusive():
    with FaultPlan():
        with pytest.raises(RuntimeError, match="already installed"):
            with FaultPlan():
                pass  # pragma: no cover
    # The failed nested enter must not have torn down the outer plan's slot.
    with FaultPlan():
        pass


def test_scripted_budget_is_consumed_atomically_across_threads():
    """times=2 fires exactly twice no matter how many threads race."""
    faults = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        for _ in range(25):
            try:
                fire("backend.execute")
            except _Boom:
                faults.append(1)

    with FaultPlan() as plan:
        plan.script("backend.execute", _Boom, times=2)
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.fired == {"backend.execute": 2}
    assert len(faults) == 2

"""Shared fixtures: small documents, encodings and processors."""

import pytest

from repro.core.pipeline import XQueryProcessor
from repro.xmldb.encoding import DOC_COLUMNS, encode_document
from repro.xmldb.generators.dblp import DblpConfig, generate_dblp_document
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document
from repro.xmldb.parser import parse_xml
from repro.algebra.table import Table

#: The paper's Fig. 2 example document.
AUCTION_SNIPPET = (
    '<open_auction id="1"><initial>15</initial>'
    "<bidder><time>18:43</time><increase>4.20</increase></bidder>"
    "</open_auction>"
)

SMALL_AUCTION_XML = """
<site>
  <open_auctions>
    <open_auction id="1"><initial>15</initial>
      <bidder><time>18:43</time><increase>4.20</increase></bidder>
    </open_auction>
    <open_auction id="2"><initial>20</initial></open_auction>
    <open_auction id="3"><initial>7</initial>
      <bidder><time>09:01</time><increase>2.00</increase></bidder>
      <bidder><time>10:30</time><increase>3.50</increase></bidder>
    </open_auction>
  </open_auctions>
</site>
"""


@pytest.fixture(scope="session")
def fig2_encoding():
    return encode_document(parse_xml(AUCTION_SNIPPET, uri="auction.xml"))


@pytest.fixture(scope="session")
def small_auction_encoding():
    return encode_document(parse_xml(SMALL_AUCTION_XML, uri="auction.xml"))


@pytest.fixture(scope="session")
def small_auction_doc_table(small_auction_encoding):
    return Table(DOC_COLUMNS, small_auction_encoding.rows())


@pytest.fixture(scope="session")
def xmark_document():
    return generate_xmark_document(XMarkConfig(scale=0.15, seed=11))


@pytest.fixture(scope="session")
def xmark_encoding(xmark_document):
    return encode_document(xmark_document)


@pytest.fixture(scope="session")
def dblp_document():
    return generate_dblp_document(DblpConfig(scale=0.1, seed=5))


@pytest.fixture(scope="session")
def dblp_encoding(dblp_document):
    return encode_document(dblp_document)


@pytest.fixture(scope="session")
def xmark_processor(xmark_encoding):
    return XQueryProcessor(xmark_encoding, default_document="auction.xml")


@pytest.fixture(scope="session")
def dblp_processor(dblp_encoding):
    return XQueryProcessor(dblp_encoding, default_document="dblp.xml")


@pytest.fixture(scope="session")
def small_processor(small_auction_encoding):
    return XQueryProcessor(small_auction_encoding, default_document="auction.xml")

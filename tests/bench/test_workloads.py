"""Tests for the benchmark harness pieces."""

from repro.bench.runner import TableNineRow, run_table_nine_row
from repro.bench.workloads import WORKLOAD, build_dblp_dataset, build_xmark_dataset, query_by_name
from repro.core.pipeline import XQueryProcessor


def test_workload_covers_all_paper_queries():
    names = [query.name for query in WORKLOAD]
    assert names == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
    assert {query.dataset for query in WORKLOAD} == {"xmark", "dblp"}


def test_dataset_builders_are_consistent():
    dataset = build_xmark_dataset(scale=0.1)
    assert dataset.node_count == len(dataset.encoding)
    assert len(dataset.whole_store) == 1
    assert len(dataset.segmented_store) > 1


def test_table_nine_row_runs_for_q1():
    dataset = build_xmark_dataset(scale=0.1)
    processor = XQueryProcessor(dataset.encoding, default_document=dataset.uri)
    row = run_table_nine_row(query_by_name("Q1"), dataset, processor, budget_seconds=60)
    assert row.query == "Q1"
    assert not row.join_graph.dnf
    assert row.join_graph.seconds is not None
    rendered = row.render()
    assert "Q1" in rendered
    assert TableNineRow.header().startswith("   Q")

"""Tests for the pre/size/level document encoding (Fig. 2 of the paper)."""

import pytest

from repro.xmldb.encoding import DOC_COLUMNS, encode_document, encode_documents
from repro.xmldb.infoset import NodeKind, XMLNode, document, element
from repro.xmldb.parser import parse_xml


def test_fig2_rows_match_paper(fig2_encoding):
    rows = [record.as_tuple() for record in fig2_encoding.records]
    assert rows[0][:5] == (0, 9, 0, "DOC", "auction.xml")
    assert rows[1][:5] == (1, 8, 1, "ELEM", "open_auction")
    assert rows[2][:6] == (2, 0, 2, "ATTR", "id", "1")
    assert rows[3][:4] == (3, 1, 2, "ELEM")
    assert rows[3][5:] == ("15", 15.0)
    assert rows[5][:5] == (5, 4, 2, "ELEM", "bidder")
    assert rows[9][5:] == ("4.20", 4.2)


def test_pre_is_dense_and_unique(fig2_encoding):
    pres = [record.pre for record in fig2_encoding.records]
    assert pres == list(range(len(fig2_encoding)))


def test_size_counts_subtree(fig2_encoding):
    for record in fig2_encoding.records:
        subtree = list(fig2_encoding.subtree(record.pre, include_self=False))
        assert record.size == len(subtree)


def test_level_is_parent_level_plus_one(fig2_encoding):
    for record in fig2_encoding.records:
        parent = fig2_encoding.parent(record.pre)
        if parent is None:
            assert record.level == 0
        else:
            assert record.level == fig2_encoding.record(parent).level + 1


def test_attributes_follow_owner(fig2_encoding):
    assert fig2_encoding.attributes(1) == [2]
    assert fig2_encoding.children(1) == [3, 5]


def test_value_column_only_for_small_subtrees(fig2_encoding):
    for record in fig2_encoding.records:
        if record.kind == "ELEM" and record.size > 1:
            assert record.value is None


def test_multiple_documents_share_one_table():
    doc_a = document("a.xml", element("a", text_content="1"))
    doc_b = document("b.xml", element("b", text_content="2"))
    encoding = encode_documents([doc_a, doc_b])
    assert encoding.document_root("a.xml") == 0
    assert encoding.document_root("b.xml") == 3
    assert encoding.record(3).kind == "DOC"
    assert len(encoding) == 6


def test_doc_columns_order():
    assert DOC_COLUMNS == ("pre", "size", "level", "kind", "name", "value", "data")


def test_data_column_casts_decimal():
    encoding = encode_document(parse_xml("<p><a>3.5</a><b>abc</b></p>", uri="d.xml"))
    by_name = {r.name: r for r in encoding.records if r.kind == "ELEM"}
    assert by_name["a"].data == 3.5
    assert by_name["b"].data is None


def test_rows_round_trip_via_tuples(fig2_encoding):
    rows = fig2_encoding.rows()
    assert len(rows) == len(fig2_encoding)
    assert all(len(row) == len(DOC_COLUMNS) for row in rows)

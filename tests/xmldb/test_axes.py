"""Tests for the XPath axis semantics over the encoding (Fig. 3)."""

import pytest

from repro.xmldb.axes import AXES, FORWARD_AXES, REVERSE_AXES, evaluate_axis, node_test_conditions
from repro.xmldb.encoding import encode_document
from repro.xmldb.parser import parse_xml

XML = """
<site>
  <a id="1"><b><c>x</c></b><b2/></a>
  <a id="2"><b><c>y</c></b></a>
</site>
"""


@pytest.fixture(scope="module")
def enc():
    return encode_document(parse_xml(XML, uri="t.xml"))


def _names(enc, pres):
    return [enc.record(p).name for p in pres]


def test_twelve_axes_defined():
    assert len(AXES) == 12
    assert set(FORWARD_AXES) | set(REVERSE_AXES) == set(AXES)


def test_child_axis(enc):
    site = 1
    assert _names(enc, evaluate_axis(enc, site, "child")) == ["a", "a"]


def test_child_excludes_attributes(enc):
    a1 = evaluate_axis(enc, 1, "child")[0]
    names = _names(enc, evaluate_axis(enc, a1, "child", "*"))
    assert "id" not in names


def test_descendant_vs_descendant_or_self(enc):
    a1 = evaluate_axis(enc, 1, "child")[0]
    descendants = evaluate_axis(enc, a1, "descendant")
    dos = evaluate_axis(enc, a1, "descendant-or-self")
    assert set(dos) - set(descendants) == {a1}


def test_parent_and_ancestor(enc):
    c_nodes = [r.pre for r in enc.records if r.name == "c"]
    first_c = c_nodes[0]
    parent = evaluate_axis(enc, first_c, "parent")
    assert _names(enc, parent) == ["b"]
    ancestors = evaluate_axis(enc, first_c, "ancestor")
    assert "site" in _names(enc, ancestors)


def test_following_and_preceding_are_disjoint(enc):
    b2 = [r.pre for r in enc.records if r.name == "b2"][0]
    following = set(evaluate_axis(enc, b2, "following"))
    preceding = set(evaluate_axis(enc, b2, "preceding"))
    assert not following & preceding
    assert b2 not in following | preceding


def test_attribute_axis(enc):
    a1 = evaluate_axis(enc, 1, "child")[0]
    attrs = evaluate_axis(enc, a1, "attribute")
    assert _names(enc, attrs) == ["id"]


def test_axis_duality():
    for name, spec in AXES.items():
        if spec.dual:
            assert AXES[spec.dual].dual == name


def test_node_test_conditions_name_test():
    conditions = node_test_conditions("bidder", "child")
    assert ("kind", "=", "ELEM") in conditions
    assert ("name", "=", "bidder") in conditions


def test_node_test_conditions_kind_tests():
    assert node_test_conditions("text()", "child") == [("kind", "=", "TEXT")]
    assert node_test_conditions("node()", "descendant") == []
    assert node_test_conditions("*", "attribute") == [("kind", "=", "ATTR")]


def test_unknown_axis_raises():
    with pytest.raises(ValueError):
        evaluate_axis(None, 0, "sideways")  # type: ignore[arg-type]


def test_sibling_axes_use_exact_parent(enc):
    a_nodes = [r.pre for r in enc.records if r.name == "a"]
    siblings = evaluate_axis(enc, a_nodes[0], "following-sibling")
    assert siblings == [a_nodes[1]]

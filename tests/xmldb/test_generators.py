"""Tests for the XMark / DBLP synthetic document generators."""

from repro.xmldb.generators.dblp import DblpConfig, generate_dblp_document
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document
from repro.xmldb.encoding import encode_document


def test_xmark_is_deterministic():
    a = generate_xmark_document(XMarkConfig(scale=0.1, seed=3))
    b = generate_xmark_document(XMarkConfig(scale=0.1, seed=3))
    assert encode_document(a).rows() == encode_document(b).rows()


def test_xmark_structure_supports_benchmark_queries():
    doc = generate_xmark_document(XMarkConfig(scale=0.1))
    enc = encode_document(doc)
    names = {record.name for record in enc.records}
    for required in (
        "site", "open_auction", "bidder", "closed_auction", "price", "itemref",
        "item", "incategory", "category", "person", "people", "name",
    ):
        assert required in names


def test_xmark_references_resolve():
    doc = generate_xmark_document(XMarkConfig(scale=0.1))
    enc = encode_document(doc)
    item_ids = {r.value for r in enc.records if r.kind == "ATTR" and r.name == "id" and str(r.value).startswith("item")}
    refs = {r.value for r in enc.records if r.kind == "ATTR" and r.name == "item"}
    assert refs <= item_ids


def test_xmark_scale_grows_nodes():
    small = len(encode_document(generate_xmark_document(XMarkConfig(scale=0.1))))
    large = len(encode_document(generate_xmark_document(XMarkConfig(scale=0.3))))
    assert large > small * 2


def test_xmark_has_expensive_prices():
    doc = generate_xmark_document(XMarkConfig(scale=0.2))
    enc = encode_document(doc)
    prices = [r.data for r in enc.records if r.kind == "ELEM" and r.name == "price" and r.data]
    assert any(p > 500 for p in prices)
    assert any(p <= 500 for p in prices)


def test_dblp_contains_vldb2001_key_once():
    doc = generate_dblp_document(DblpConfig(scale=0.1))
    enc = encode_document(doc)
    keys = [r.value for r in enc.records if r.kind == "ATTR" and r.name == "key"]
    assert keys.count("conf/vldb2001") == 1


def test_dblp_has_early_theses():
    doc = generate_dblp_document(DblpConfig(scale=0.2))
    enc = encode_document(doc)
    years = [
        r.value
        for r in enc.records
        if r.kind == "ELEM" and r.name == "year" and r.value is not None
    ]
    assert any(year < "1994" for year in years)


def test_dblp_person0_like_ids_unique():
    doc = generate_dblp_document(DblpConfig(scale=0.1))
    enc = encode_document(doc)
    keys = [r.value for r in enc.records if r.kind == "ATTR" and r.name == "key"]
    assert len(keys) == len(set(keys))

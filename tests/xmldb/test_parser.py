"""Tests for the hand-written XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmldb.infoset import NodeKind
from repro.xmldb.parser import parse_xml


def test_simple_document():
    doc = parse_xml("<a><b>text</b></a>", uri="u.xml")
    assert doc.kind is NodeKind.DOC and doc.name == "u.xml"
    root = doc.children[0]
    assert root.name == "a"
    assert root.children[0].name == "b"
    assert root.children[0].children[0].value == "text"


def test_attributes_and_self_closing():
    doc = parse_xml('<a x="1" y="two"><b/></a>')
    root = doc.children[0]
    assert root.attribute("x").value == "1"
    assert root.attribute("y").value == "two"
    assert root.children[0].name == "b" and not root.children[0].children


def test_entity_references():
    doc = parse_xml("<a>&lt;&amp;&gt;&#65;</a>")
    assert doc.children[0].children[0].value == "<&>A"


def test_cdata_and_comments_and_pis():
    doc = parse_xml("<a><!-- c --><![CDATA[<raw>]]><?pi data?></a>", keep_whitespace_text=False)
    kinds = [child.kind for child in doc.children[0].children]
    assert NodeKind.COMM in kinds and NodeKind.PI in kinds and NodeKind.TEXT in kinds


def test_prolog_doctype_skipped():
    doc = parse_xml('<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>')
    assert doc.children[0].name == "a"


def test_whitespace_only_text_dropped_by_default():
    doc = parse_xml("<a>\n  <b/>\n</a>")
    assert [c.kind for c in doc.children[0].children] == [NodeKind.ELEM]


@pytest.mark.parametrize(
    "bad",
    ["<a>", "<a></b>", "<a x=1/>", "text only", "<a><b></a></b>", "<a/><b/>"],
)
def test_malformed_raises(bad):
    with pytest.raises(XMLParseError):
        parse_xml(bad)


def test_error_reports_position():
    try:
        parse_xml("<a>\n<b></c>\n</a>")
    except XMLParseError as error:
        assert error.line == 2
    else:  # pragma: no cover
        raise AssertionError("expected a parse error")

"""Round-trip tests for serialization from the encoding."""

from repro.xmldb.encoding import encode_document
from repro.xmldb.parser import parse_xml
from repro.xmldb.serializer import serialize_node, serialize_sequence, serialize_subtree


def test_round_trip_simple():
    text = '<a x="1"><b>hi</b><c/></a>'
    enc = encode_document(parse_xml(text, uri="t.xml"))
    assert serialize_node(enc, 1) == text


def test_escaping():
    enc = encode_document(parse_xml("<a>&lt;tag&gt; &amp; more</a>", uri="t.xml"))
    assert serialize_node(enc, 1) == "<a>&lt;tag&gt; &amp; more</a>"


def test_serialize_document_node(fig2_encoding):
    assert serialize_node(fig2_encoding, 0).startswith("<open_auction")


def test_serialize_subtree_sorts_and_dedups(fig2_encoding):
    out = serialize_subtree(fig2_encoding, [3, 3])
    assert out == "<initial>15</initial>"


def test_serialize_sequence_preserves_order(fig2_encoding):
    out = serialize_sequence(fig2_encoding, [6, 3], separator=" ")
    assert out.startswith("<time>") and out.endswith("</initial>")

"""Differential tests: index-backed ``evaluate_axis`` vs the naive scan.

All 12 axes, the full node-test vocabulary, randomized context nodes, on
XMark and DBLP fragments plus a multi-document encoding — the fast path
must agree with :func:`~repro.xmldb.axes.evaluate_axis_naive` result-for-
result, in document order.
"""

import random

import pytest

from repro.xmldb.axes import AXES, evaluate_axis, evaluate_axis_naive
from repro.xmldb.encoding import encode_documents
from repro.xmldb.parser import parse_xml

NODE_TESTS = [
    "node()",
    "*",
    "text()",
    "element()",
    "attribute()",
    "comment()",
    "bidder",
    "increase",
    "author",
    "nonexistent",
]


def _assert_axes_agree(encoding, context_pres):
    for pre in context_pres:
        for axis in AXES:
            for node_test in NODE_TESTS:
                fast = evaluate_axis(encoding, pre, axis, node_test)
                naive = evaluate_axis_naive(encoding, pre, axis, node_test)
                assert fast == naive, (pre, axis, node_test)


def _sample(rng, encoding, count):
    population = range(len(encoding))
    return rng.sample(population, min(count, len(population)))


def test_all_axes_agree_on_xmark(xmark_encoding):
    rng = random.Random(21)
    _assert_axes_agree(xmark_encoding, _sample(rng, xmark_encoding, 25))


def test_all_axes_agree_on_dblp(dblp_encoding):
    rng = random.Random(22)
    _assert_axes_agree(dblp_encoding, _sample(rng, dblp_encoding, 25))


def test_all_axes_agree_on_multi_document_encoding():
    first = parse_xml(
        '<r a="1" b="2"><x><y>t</y><y>u</y></x><x/><z>tail</z></r>', uri="one.xml"
    )
    second = parse_xml("<r><x><y>v</y></x></r>", uri="two.xml")
    encoding = encode_documents([first, second])
    # Exhaustive: every node of both documents is a context node.
    _assert_axes_agree(encoding, range(len(encoding)))


def test_parent_is_index_backed_and_exact(xmark_encoding):
    # The fast parent must agree with a linear containment scan.
    rng = random.Random(5)
    for pre in _sample(rng, xmark_encoding, 40):
        target = xmark_encoding.record(pre)
        expected = None
        for candidate in range(pre - 1, -1, -1):
            record = xmark_encoding.record(candidate)
            if record.pre < pre <= record.pre + record.size and record.level == target.level - 1:
                expected = candidate
                break
        assert xmark_encoding.parent(pre) == expected


def test_level_pres_between_slices_match_scan(xmark_encoding):
    rng = random.Random(6)
    for _ in range(30):
        level = rng.randint(0, 8)
        low = rng.randint(-1, len(xmark_encoding))
        high = rng.randint(low, len(xmark_encoding))
        expected = [
            record.pre
            for record in xmark_encoding.records
            if record.level == level and low < record.pre <= high
        ]
        assert list(xmark_encoding.level_pres_between(level, low, high)) == expected


def test_unknown_axis_still_raises():
    with pytest.raises(ValueError):
        evaluate_axis(None, 0, "sideways")  # type: ignore[arg-type]

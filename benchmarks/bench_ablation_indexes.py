"""Ablation A1 — autonomous index design: Table VI indexes vs. bare primary key.

Section IV argues that the advisor-proposed vanilla B-trees are what lets
the relational back-end "reinvent" XPath evaluation strategies.  This bench
runs the same join graph with and without those indexes.
"""

from repro.bench.workloads import query_by_name
from repro.core.pipeline import XQueryProcessor

from conftest import write_artifact


def test_ablation_index_set(benchmark, xmark_dataset):
    query = query_by_name("Q1").xquery
    with_indexes = XQueryProcessor(xmark_dataset.encoding, default_document=xmark_dataset.uri)
    without_indexes = XQueryProcessor(
        xmark_dataset.encoding, default_document=xmark_dataset.uri, with_default_indexes=False
    )
    indexed_outcome = benchmark(lambda: with_indexes.execute_join_graph(query))
    import time

    start = time.perf_counter()
    bare_outcome = without_indexes.execute_join_graph(query)
    bare_seconds = time.perf_counter() - start
    assert set(indexed_outcome.items) == set(bare_outcome.items)
    indexed_scanned = indexed_outcome.rows_scanned
    bare_scanned = bare_outcome.rows_scanned
    report = "\n".join(
        [
            "Ablation A1 — Table VI index set vs. primary key only (Q1)",
            f"rows touched with Table VI indexes : {indexed_scanned}",
            f"rows touched with primary key only : {bare_scanned}",
            f"bare wall-clock                    : {bare_seconds:.4f}s",
        ]
    )
    write_artifact("ablation_indexes.txt", report)
    print("\n" + report)
    # The whole point of the index set: drastically fewer rows touched.
    assert indexed_scanned < bare_scanned

"""Experiments E6/E7 — Fig. 10 / Fig. 11: back-end execution plans.

Fig. 10: Q1's plan is a chain of index nested-loop joins over the proposed
B-trees ("XPath continuations", path stitching).  Fig. 11: Q2's plan starts
at the most selective value predicate (``price > 500``) before any context
is known — XPath step reordering / axis reversal driven purely by
selectivity statistics.  We reproduce the effect with Q1 and with the
Q2-style single-branch query the optimizer can already handle end-to-end.
"""

from repro.bench.workloads import query_by_name

from conftest import write_artifact

#: A Q2-style value-driven path: find the (few) expensive closed auctions.
PRICE_QUERY = 'doc("auction.xml")//closed_auction[price > 500]/child::itemref'


def test_fig10_q1_execution_plan(benchmark, xmark_processor):
    explain = benchmark(lambda: xmark_processor.explain(query_by_name("Q1").xquery))
    write_artifact("fig10_q1_execution_plan.txt", explain)
    print("\n" + explain)
    assert "IXSCAN" in explain
    assert "NLJOIN" in explain
    assert "SORT" in explain and "RETURN" in explain


def test_fig11_step_reordering(benchmark, xmark_processor):
    compilation = xmark_processor.compile(PRICE_QUERY)
    assert compilation.join_graph is not None
    planned = benchmark(lambda: xmark_processor.engine.plan(compilation.join_graph))
    explain = planned.explain()
    graph = compilation.join_graph
    # Which alias carries the data > 500 predicate?
    value_aliases = {
        alias
        for alias in graph.aliases
        for condition in graph.conditions_for(alias)
        if "data" in condition.render()
    }
    first = planned.join_order[0]
    lines = [
        "Fig. 11 — selectivity-driven step reordering",
        f"join order: {planned.join_order}",
        f"value-predicate alias(es): {sorted(value_aliases)}",
        "",
        explain,
    ]
    artifact = "\n".join(lines)
    write_artifact("fig11_step_reordering.txt", artifact)
    print("\n" + artifact)
    # The value predicate drives the plan: the data-filtered alias is joined
    # before every alias that carries no local predicate at all (its XPath
    # context is resolved *afterwards*, i.e. the step is evaluated in reverse
    # order of the path syntax).  Our greedy planner may still put the single
    # document-node alias first (it has cardinality 1); the paper's DB2 plan
    # additionally reverses that step, which we record rather than assert.
    unfiltered = [alias for alias in graph.aliases if not graph.conditions_for(alias)]
    order_index = {alias: position for position, alias in enumerate(planned.join_order)}
    assert value_aliases, "expected a data-filtered alias in the join graph"
    best_value_position = min(order_index[alias] for alias in value_aliases)
    assert all(best_value_position < order_index[alias] for alias in unfiltered)

"""The full XMark Q1-Q20 speedup table: isolated SFW vs stacked plan.

The coverage-matrix close makes every in-fragment XMark query isolate a
join graph (positionals as windows, where-aggregates as HAVING-class
subqueries, ``order by`` via the ORD rule), so the paper's headline
comparison — the isolated single SFW block on a real RDBMS against the
interpreted stacked plan — now runs over the *whole* benchmark.  Every
runnable query is first asserted bit-for-bit consistent across the engine
configurations, then timed; the >= 3x gate applies to the join-heavy
queries (Q8-Q10), where join graph isolation is the difference between a
join the RDBMS can order and a stack of dependent CTEs.  (The gate was
>= 5x against the row-at-a-time interpreter; the columnar execution core
sped the stacked baseline up ~5x on these queries, so the SQL margin —
unchanged in absolute terms — tightened to ~4-29x at scale 0.5.)  The three
out-of-fragment queries (Q7, Q14, Q18) are asserted to refuse with their
documented error class and appear in the report as refusals.

Usage::

    python benchmarks/bench_xmark.py [--scale 0.5] [--repeats 3] [--output BENCH_xmark.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import build_xmark_dataset
from repro.bench.xmark import XMARK_SUITE
from repro.core.pipeline import XQueryProcessor

MIN_SPEEDUP = 3.0

CONFIGURATIONS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_case(processor: XQueryProcessor, case, repeats: int, timeout: float) -> dict:
    if case.refusal is not None:
        for configuration in CONFIGURATIONS:
            try:
                processor.execute(case.xquery, configuration=configuration)
            except case.refusal:
                continue
            raise AssertionError(
                f"{case.name} must refuse with {case.refusal.__name__} "
                f"on {configuration}"
            )
        return {
            "name": case.name,
            "description": case.description,
            "refused": case.refusal.__name__,
        }
    compilation = processor.compile(case.xquery)
    assert compilation.join_graph is not None, (case.name, compilation.join_graph_error)
    configurations = tuple(
        configuration
        for configuration in CONFIGURATIONS
        if case.interp_join_graph or configuration != "join-graph"
    )
    reference = None
    consistent = True
    for configuration in configurations:
        items = processor.execute(
            case.xquery, configuration=configuration, timeout_seconds=timeout
        ).items
        if reference is None:
            reference = items
        elif items != reference:
            consistent = False
    stacked_seconds = _best_of(
        repeats,
        lambda: processor.execute(
            case.xquery, configuration="stacked", timeout_seconds=timeout
        ),
    )
    sql_seconds = _best_of(
        repeats,
        lambda: processor.execute(
            case.xquery, configuration="sql", timeout_seconds=timeout
        ),
    )
    return {
        "name": case.name,
        "description": case.description,
        "result_items": len(reference),
        "consistent_results": consistent,
        "join_heavy": case.join_heavy,
        "windows": len(compilation.join_graph.windows),
        "having": len(compilation.join_graph.having),
        "aggregate": compilation.join_graph.aggregate is not None,
        "stacked_seconds": stacked_seconds,
        "sql_seconds": sql_seconds,
        "speedup": stacked_seconds / sql_seconds if sql_seconds > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-query budget")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_xmark.json",
    )
    args = parser.parse_args(argv)

    dataset = build_xmark_dataset(scale=args.scale)
    processor = XQueryProcessor(dataset.encoding, default_document=dataset.uri)
    print(
        f"xmark: {dataset.node_count} nodes -> SQLite "
        f"({processor.sql_backend.row_count()} rows mirrored)"
    )

    results = []
    for case in XMARK_SUITE:
        entry = bench_case(processor, case, args.repeats, args.timeout)
        results.append(entry)
        if "refused" in entry:
            print(f"  {entry['name']}: refused ({entry['refused']}) as documented")
            continue
        print(
            f"  {entry['name']}: stacked {entry['stacked_seconds']:.4f}s  "
            f"sql {entry['sql_seconds']:.4f}s -> {entry['speedup']:.1f}x "
            f"({entry['result_items']} items, consistent={entry['consistent_results']}"
            + (", join-heavy" if entry["join_heavy"] else "")
            + ")"
        )

    timed = [entry for entry in results if "refused" not in entry]
    gated = [entry for entry in timed if entry["join_heavy"]]
    report = {
        "benchmark": "xmark_q1_q20",
        "rdbms": "sqlite3",
        "scale": args.scale,
        "nodes": dataset.node_count,
        "repeats": args.repeats,
        "queries": results,
        "min_required_speedup": MIN_SPEEDUP,
        "gated_queries": [entry["name"] for entry in gated],
        "pass": all(entry["consistent_results"] for entry in timed)
        and all(entry["speedup"] >= MIN_SPEEDUP for entry in gated)
        and sum("refused" in entry for entry in results) == 3,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

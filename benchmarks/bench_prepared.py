"""Prepared-query benchmark: compile-once-bind-many vs compile-per-call.

Models a service answering the *same* query shape with *changing* values
(the amortization target of the query-service layer): each round executes
one parameterized query for a sweep of distinct bindings,

* **prepared** — ``XQueryProcessor.prepare`` once, then ``run(bindings)``
  per value: no parsing, loop lifting, isolation or join-graph extraction
  per call (only binding validation + physical planning + execution);
* **compile-per-call** — the traditional path: splice each value into the
  source as a literal and go through the full pipeline.  Every distinct
  value is a distinct cache key, so this is what ad-hoc traffic pays even
  with the plan cache in place (the cache is cleared per round to model a
  steady stream of fresh values).

Results are asserted identical per binding before timing.  Emits
``BENCH_prepared.json``; the acceptance gate is a >= 5x speedup for the
prepared path on every gated workload.

Note on ``--scale``: the gate measures *compilation amortization*, and
execution cost is paid by both paths, so the ratio shrinks as documents
grow (at scale 0.15 the FLWOR workload hovers around the 5x line, at the
default 0.1 it clears it with headroom).  Larger scales remain useful to
observe the asymptote, not to check the gate.

Usage::

    python benchmarks/bench_prepared.py [--scale 0.1] [--output BENCH_prepared.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import XQueryProcessor
from repro.xmldb.encoding import encode_document
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document

#: (name, prepared source, ad-hoc literal template, binding name, value sweep)
WORKLOADS = [
    (
        "auction_threshold",
        "declare variable $lo as xs:decimal external; "
        'doc("auction.xml")/descendant::open_auction[child::initial > $lo]',
        'doc("auction.xml")/descendant::open_auction[child::initial > {value}]',
        "lo",
        [5 * k for k in range(12)],
    ),
    (
        "flwor_initial",
        "declare variable $lo as xs:decimal external; "
        'for $a in doc("auction.xml")/descendant::open_auction '
        "where $a/child::initial > $lo return $a/child::initial",
        'for $a in doc("auction.xml")/descendant::open_auction '
        "where $a/child::initial > {value} return $a/child::initial",
        "lo",
        [3 * k for k in range(12)],
    ),
]


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_workload(processor: XQueryProcessor, spec, repeats: int) -> dict:
    name, prepared_src, adhoc_tpl, param, values = spec
    prepared = processor.prepare(prepared_src)
    adhoc_sources = [adhoc_tpl.format(value=value) for value in values]

    # Correctness first: identical result sequences per binding.
    prepared_results = [prepared.run({param: value}).items for value in values]
    adhoc_results = [processor.execute(source).items for source in adhoc_sources]
    identical = prepared_results == adhoc_results

    def run_prepared():
        for value in values:
            prepared.run({param: value})

    def run_compile_per_call():
        # A steady stream of fresh values never hits the plan cache; clearing
        # models that without unbounded source templating.
        processor.plan_cache.clear()
        for source in adhoc_sources:
            processor.execute(source)

    fast = _best_of(repeats, run_prepared)
    slow = _best_of(repeats, run_compile_per_call)
    return {
        "name": name,
        "bindings": len(values),
        "result_rows": sum(len(items) for items in prepared_results),
        "identical_results": identical,
        "compile_per_call_seconds": slow,
        "prepared_seconds": fast,
        "speedup": slow / fast if fast > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1, help="XMark scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_prepared.json",
    )
    args = parser.parse_args(argv)

    document = generate_xmark_document(XMarkConfig(scale=args.scale, seed=11))
    encoding = encode_document(document)
    processor = XQueryProcessor(encoding, default_document="auction.xml")
    print(f"XMark scale {args.scale}: {len(encoding)} nodes")

    workloads = [bench_workload(processor, spec, args.repeats) for spec in WORKLOADS]
    report = {
        "benchmark": "prepared_queries",
        "xmark_scale": args.scale,
        "nodes": len(encoding),
        "repeats": args.repeats,
        "workloads": workloads,
        "min_required_speedup": 5.0,
        "pass": all(w["speedup"] >= 5.0 and w["identical_results"] for w in workloads),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for workload in workloads:
        print(
            f"  {workload['name']}: compile-per-call {workload['compile_per_call_seconds']:.4f}s"
            f" prepared {workload['prepared_seconds']:.4f}s -> {workload['speedup']:.1f}x"
            f" (identical={workload['identical_results']})"
        )
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Hot-path benchmark: the vectorized execution core vs the seed paths.

Measures the three layers of the vectorized core against the naive
reference implementations that are kept in-tree as differential baselines:

1. **Stacked-plan interpretation** of Table VIII-style descendant-axis
   queries (Q1/Q4 shape): ``PlanInterpreter(compiled=True)`` — compiled
   predicates + sort-based range joins — vs ``compiled=False`` (the seed's
   per-row-dict nested loops).
2. **Axis evaluation sweep**: index-backed ``evaluate_axis`` (contiguous
   ``pre`` slices + per-level bisection) vs ``evaluate_axis_naive`` (full
   record scan per context node).
3. **Relational row representation**: TBSCAN + residual over the columnar
   scan path vs a reimplementation of the seed's ``dict[(alias, column)]``
   rows.

Every comparison asserts identical results before timing.  Emits
``BENCH_hotpaths.json`` (repo root by default) with per-workload timings
and speedups; every workload is gated on its own ``min_speedup`` —
>= 5x for the two traversal-heavy workloads (1) and (2), >= 3x for the
relational scan (3).

Usage::

    python benchmarks/bench_hotpaths.py [--scale 0.5] [--output BENCH_hotpaths.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.algebra.interpreter import PlanInterpreter
from repro.algebra.table import Table
from repro.core.joingraph import ColumnTerm, Condition, ConstantTerm
from repro.relational.physical.operators import ExecutionContext, TableScan
from repro.xmldb.axes import evaluate_axis, evaluate_axis_naive
from repro.xmldb.encoding import DOC_COLUMNS, encode_document
from repro.xmldb.generators.xmark import XMarkConfig, generate_xmark_document
from repro.xquery.compiler import LoopLiftingCompiler

#: Traversal-heavy descendant-axis queries in the shape of Table VIII's
#: Q1 ("//open_auction[bidder]") and Q4 ("//closed_auction/price").
STACKED_QUERIES = [
    'doc("auction.xml")/descendant::open_auction/descendant::bidder',
    'doc("auction.xml")/descendant::closed_auction/child::price',
    'doc("auction.xml")/descendant::bidder/child::increase',
]


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_stacked_plan(table: Table, repeats: int) -> dict:
    plans = [LoopLiftingCompiler().compile_source(query) for query in STACKED_QUERIES]
    fast_interpreter = PlanInterpreter(table)
    naive_interpreter = PlanInterpreter(table, compiled=False)
    fast_results = [fast_interpreter.evaluate(plan) for plan in plans]
    naive_results = [naive_interpreter.evaluate(plan) for plan in plans]
    identical = all(f == n for f, n in zip(fast_results, naive_results))
    fast = _best_of(repeats, lambda: [fast_interpreter.evaluate(plan) for plan in plans])
    naive = _best_of(repeats, lambda: [naive_interpreter.evaluate(plan) for plan in plans])
    return {
        "name": "stacked_descendant_queries",
        "min_speedup": 5.0,
        "queries": STACKED_QUERIES,
        "result_rows": sum(len(result) for result in fast_results),
        "identical_results": identical,
        "naive_seconds": naive,
        "fast_seconds": fast,
        "speedup": naive / fast if fast > 0 else float("inf"),
    }


def bench_axis_sweep(encoding, repeats: int, contexts: int = 250) -> dict:
    rng = random.Random(17)
    pres = rng.sample(range(len(encoding)), min(contexts, len(encoding)))
    sweeps = [("descendant", "*"), ("child", "*"), ("following", "node()")]

    def run_fast():
        for pre in pres:
            for axis, node_test in sweeps:
                evaluate_axis(encoding, pre, axis, node_test)

    def run_naive():
        for pre in pres:
            for axis, node_test in sweeps:
                evaluate_axis_naive(encoding, pre, axis, node_test)

    identical = all(
        evaluate_axis(encoding, pre, axis, node_test)
        == evaluate_axis_naive(encoding, pre, axis, node_test)
        for pre in pres[:50]
        for axis, node_test in sweeps
    )
    fast = _best_of(repeats, run_fast)
    naive = _best_of(max(1, repeats // 2), run_naive)
    return {
        "name": "evaluate_axis_sweep",
        "min_speedup": 5.0,
        "context_nodes": len(pres),
        "axes": [axis for axis, _test in sweeps],
        "identical_results": identical,
        "naive_seconds": naive,
        "fast_seconds": fast,
        "speedup": naive / fast if fast > 0 else float("inf"),
    }


def bench_relational_rows(table: Table, repeats: int) -> dict:
    """TBSCAN + residual: tuple rows + compiled slots vs seed dict rows."""
    conditions = [
        Condition(ColumnTerm("d1", "kind"), "=", ConstantTerm("ELEM")),
        Condition(ColumnTerm("d1", "level"), ">=", ConstantTerm(2)),
    ]
    scan = TableScan(table, "d1", conditions)

    def run_fast():
        ctx = ExecutionContext()
        return sum(1 for _row in scan.rows(ctx))

    # The seed's representation: one dict[(alias, column)] per row, with
    # conditions interpreted per row through dict lookups.
    kind_key, level_key = ("d1", "kind"), ("d1", "level")

    def run_dict():
        count = 0
        for row in table.rows:
            as_dict = {("d1", column): row[i] for i, column in enumerate(table.columns)}
            kind = as_dict.get(kind_key)
            level = as_dict.get(level_key)
            if kind is not None and kind == "ELEM" and level is not None and level >= 2:
                count += 1
        return count

    assert run_fast() == run_dict()
    fast = _best_of(repeats, run_fast)
    naive = _best_of(repeats, run_dict)
    return {
        "name": "relational_tuple_rows",
        "min_speedup": 3.0,
        "identical_results": True,
        "naive_seconds": naive,
        "fast_seconds": fast,
        "speedup": naive / fast if fast > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="XMark scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json",
    )
    args = parser.parse_args(argv)

    document = generate_xmark_document(XMarkConfig(scale=args.scale, seed=11))
    encoding = encode_document(document)
    table = Table(DOC_COLUMNS, encoding.rows())
    print(f"XMark scale {args.scale}: {len(table.rows)} nodes")

    workloads = [
        bench_stacked_plan(table, args.repeats),
        bench_axis_sweep(encoding, args.repeats),
        bench_relational_rows(table, args.repeats),
    ]
    report = {
        "benchmark": "hotpaths",
        "xmark_scale": args.scale,
        "nodes": len(table.rows),
        "repeats": args.repeats,
        "workloads": workloads,
        "pass": all(
            w["speedup"] >= w["min_speedup"] and w["identical_results"] for w in workloads
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for workload in workloads:
        print(
            f"  {workload['name']}: naive {workload['naive_seconds']:.4f}s"
            f" fast {workload['fast_seconds']:.4f}s -> {workload['speedup']:.1f}x"
            f" (gate >= {workload['min_speedup']:.0f}x)"
        )
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

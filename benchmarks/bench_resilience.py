"""Resilience-layer overhead and degraded-mode throughput.

Two questions, one JSON report:

1. **Steady-state overhead** — what does carrying the resilience machinery
   (retry policy, per-engine circuit breakers, fallback chains) cost when
   *nothing fails*?  The same prepared ``sql`` batch runs through a plain
   :class:`~repro.service.QueryService` and through one with every policy
   armed; the gate demands the resilient service stay within
   ``MAX_OVERHEAD`` of the plain one.  Both variants are measured
   interleaved (plain/resilient/plain/resilient ...) inside a single
   process, so machine noise hits both sides alike; the reported overhead
   is the ratio of the *best* repeat of each side — the standard way to
   strip scheduler noise from a microbenchmark.

2. **Degraded-mode throughput** — with a seeded 50% fault storm on
   ``backend.execute``, how much service does retry + engine fallback
   actually deliver?  The gate is absolute on correctness (every request
   completes, every answer bit-for-bit identical to serial) and merely
   *records* the throughput ratio: degraded mode is allowed to be slow, it
   is not allowed to be wrong or lossy.

Usage::

    python benchmarks/bench_resilience.py [--scale 1.0] [--requests 160]
        [--repeats 3] [--output BENCH_resilience.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sqlite3
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(1, str(pathlib.Path(__file__).resolve().parent))

from repro.bench.workloads import build_xmark_dataset
from repro.core.session import Session
from repro.service import (
    BreakerPolicy,
    FallbackPolicy,
    QueryRequest,
    QueryService,
    RetryPolicy,
)
from repro.testing.faults import FaultPlan
from bench_concurrency import build_requests

#: Steady-state gate: the resilient service's best repeat must stay within
#: this factor of the plain service's best repeat (ISSUE 6: < 5%).
MAX_OVERHEAD = 1.05

#: Degraded-mode storm: every other backend.execute raises, seeded.
STORM_RATE = 0.5
STORM_SEED = 20090331  # the paper's conference date — fixed forever

WORKERS = 4


def _policies() -> dict:
    return {
        "retry": RetryPolicy(max_attempts=4, base_delay=0.001, jitter=0.0),
        "fallback": FallbackPolicy(),
        "breaker": BreakerPolicy(failure_threshold=100_000),
    }


def _run_batch(session, requests, expected, **service_kwargs) -> dict:
    with QueryService(
        session, max_workers=WORKERS, max_in_flight=2 * WORKERS, **service_kwargs
    ) as service:
        warmup = service.execute_many(requests[: 2 * WORKERS])
        for outcome, want in zip(warmup, expected[: 2 * WORKERS]):
            assert outcome.items == want, "warm-up diverged from serial results"
        started = time.perf_counter()
        outcomes = service.execute_many(requests)
        elapsed = time.perf_counter() - started
        stats = service.service_stats()
    mismatches = sum(
        1 for outcome, want in zip(outcomes, expected) if outcome.items != want
    )
    return {
        "elapsed_seconds": elapsed,
        "queries_per_second": len(requests) / elapsed,
        "mismatches": mismatches,
        "resilience": stats["resilience"],
    }


def measure_steady_state(session, requests, expected, repeats: int) -> dict:
    """Plain vs fully-armed service on a fault-free workload, interleaved."""
    plain_runs, resilient_runs = [], []
    for _ in range(repeats):
        plain_runs.append(_run_batch(session, requests, expected))
        resilient_runs.append(
            _run_batch(session, requests, expected, **_policies())
        )
    plain_best = min(run["elapsed_seconds"] for run in plain_runs)
    resilient_best = min(run["elapsed_seconds"] for run in resilient_runs)
    consistent = all(
        run["mismatches"] == 0 for run in plain_runs + resilient_runs
    )
    # Sanity: a fault-free run must not have burned a single retry/fallback.
    untouched = all(
        run["resilience"]["retries"] == 0 and run["resilience"]["fallbacks"] == 0
        for run in resilient_runs
    )
    return {
        "repeats": repeats,
        "plain_best_seconds": plain_best,
        "resilient_best_seconds": resilient_best,
        "overhead_ratio": resilient_best / plain_best,
        "max_overhead_ratio": MAX_OVERHEAD,
        "consistent_results": consistent,
        "resilience_untouched": untouched,
        "plain_runs": plain_runs,
        "resilient_runs": [
            {k: v for k, v in run.items() if k != "resilience"}
            for run in resilient_runs
        ],
    }


def measure_degraded_mode(session, requests, expected, baseline_seconds) -> dict:
    """Throughput and correctness under a seeded 50% backend.execute storm."""
    with FaultPlan() as plan:
        plan.storm(
            "backend.execute",
            sqlite3.OperationalError("database is locked"),
            rate=STORM_RATE,
            seed=STORM_SEED,
        )
        run = _run_batch(session, requests, expected, **_policies())
        fired = dict(plan.fired)
    return {
        "storm_rate": STORM_RATE,
        "storm_seed": STORM_SEED,
        "faults_injected": fired.get("backend.execute", 0),
        "elapsed_seconds": run["elapsed_seconds"],
        "queries_per_second": run["queries_per_second"],
        "throughput_vs_steady": baseline_seconds / run["elapsed_seconds"],
        "completed_all": run["mismatches"] == 0,
        "mismatches": run["mismatches"],
        "retries": run["resilience"]["retries"],
        "fallbacks": run["resilience"]["fallbacks"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="XMark scale factor")
    parser.add_argument("--requests", type=int, default=160)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_resilience.json",
    )
    args = parser.parse_args(argv)

    dataset = build_xmark_dataset(scale=args.scale)
    session = Session()
    session.register_document(dataset.document)
    per_query = max(1, args.requests // 3)
    requests, expected = build_requests(session, per_query)
    print(
        f"xmark scale {args.scale}: {dataset.node_count} nodes, "
        f"{len(requests)} prepared sql requests, {WORKERS} workers"
    )

    steady = measure_steady_state(session, requests, expected, args.repeats)
    print(
        f"  steady state: plain {steady['plain_best_seconds']:.3f}s vs "
        f"resilient {steady['resilient_best_seconds']:.3f}s "
        f"-> overhead {steady['overhead_ratio']:.3f}x (gate < {MAX_OVERHEAD}x)"
    )

    degraded = measure_degraded_mode(
        session, requests, expected, steady["resilient_best_seconds"]
    )
    print(
        f"  degraded mode ({STORM_RATE:.0%} storm, seed {STORM_SEED}): "
        f"{degraded['queries_per_second']:.1f} q/s, "
        f"{degraded['faults_injected']} faults, {degraded['retries']} retries, "
        f"{degraded['fallbacks']} fallbacks, all completed="
        f"{degraded['completed_all']}"
    )

    passed = (
        steady["overhead_ratio"] <= MAX_OVERHEAD
        and steady["consistent_results"]
        and steady["resilience_untouched"]
        and degraded["completed_all"]
    )
    report = {
        "benchmark": "resilience_overhead_and_degraded_mode",
        "rdbms": "sqlite3",
        "scale": args.scale,
        "nodes": dataset.node_count,
        "workers": WORKERS,
        "requests": len(requests),
        "steady_state": steady,
        "degraded_mode": degraded,
        "pass": passed,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

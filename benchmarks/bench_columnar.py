"""Columnar execution core vs the row-path baseline on join-heavy XMark.

Runs XMark Q8-Q10 (the three join-heavy queries) through two processors
over the same dataset — ``columnar_execution=True`` (the default) and
``columnar_execution=False`` (the compiled row paths kept in-tree as the
differential baseline) — and times both.

Identity first, speed second: before any timing, every query is executed
under *all five* engine configurations in both modes and the item
sequences are asserted bit-for-bit equal.  The >= 3x speedup gate applies
to the plan-interpreted engines (``stacked``, ``isolated``), where the
columnar core replaces per-row Python dispatch with whole-column kernels.
``join-graph`` is timed informationally: the optimizer picks
index-nested-loop plans for these queries, which probe B+-trees row at a
time in either mode, so the flag barely moves them.  The SQL
configurations execute inside SQLite and only share the (already
column-wise) decode step.

Usage::

    python benchmarks/bench_columnar.py [--scale 0.5] [--output BENCH_columnar.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import build_xmark_dataset
from repro.bench.xmark import XMARK_SUITE
from repro.core.pipeline import XQueryProcessor

MIN_SPEEDUP = 3.0

#: The join-heavy suite slice named by the gate.
GATED_QUERIES = ("Q8", "Q9", "Q10")

#: Engines whose execution the columnar flag actually switches.
GATED_CONFIGURATIONS = ("stacked", "isolated")

#: Timed for the record, not gated (see module docstring).
INFORMATIONAL_CONFIGURATIONS = ("join-graph",)

ALL_CONFIGURATIONS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_case(
    columnar: XQueryProcessor,
    row: XQueryProcessor,
    case,
    repeats: int,
    timeout: float,
) -> dict:
    identical = True
    for configuration in ALL_CONFIGURATIONS:
        columnar_items = columnar.execute(
            case.xquery, configuration=configuration, timeout_seconds=timeout
        ).items
        row_items = row.execute(
            case.xquery, configuration=configuration, timeout_seconds=timeout
        ).items
        if columnar_items != row_items:
            identical = False
    timings = {}
    for configuration in GATED_CONFIGURATIONS + INFORMATIONAL_CONFIGURATIONS:
        columnar_seconds = _best_of(
            repeats,
            lambda: columnar.execute(
                case.xquery, configuration=configuration, timeout_seconds=timeout
            ),
        )
        row_seconds = _best_of(
            repeats,
            lambda: row.execute(
                case.xquery, configuration=configuration, timeout_seconds=timeout
            ),
        )
        timings[configuration] = {
            "row_seconds": row_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": row_seconds / columnar_seconds
            if columnar_seconds > 0
            else float("inf"),
            "gated": configuration in GATED_CONFIGURATIONS,
        }
    return {
        "name": case.name,
        "description": case.description,
        "identical_results": identical,
        "engines": timings,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-query budget")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_columnar.json",
    )
    args = parser.parse_args(argv)

    dataset = build_xmark_dataset(scale=args.scale)
    columnar = XQueryProcessor(
        dataset.encoding, default_document=dataset.uri, columnar_execution=True
    )
    # The row-path processor shares the database (and thus the indexes) so
    # the comparison isolates the execution core, not catalog build time.
    row = XQueryProcessor(
        dataset.encoding,
        default_document=dataset.uri,
        database=columnar.database,
        columnar_execution=False,
    )
    print(f"xmark scale {args.scale}: {dataset.node_count} nodes")

    cases = {case.name: case for case in XMARK_SUITE}
    results = []
    for name in GATED_QUERIES:
        entry = bench_case(columnar, row, cases[name], args.repeats, args.timeout)
        results.append(entry)
        for configuration, timing in entry["engines"].items():
            tag = "" if timing["gated"] else " (informational)"
            print(
                f"  {name} {configuration}{tag}: row {timing['row_seconds']:.4f}s"
                f" columnar {timing['columnar_seconds']:.4f}s"
                f" -> {timing['speedup']:.1f}x"
            )

    gated = [
        timing
        for entry in results
        for timing in entry["engines"].values()
        if timing["gated"]
    ]
    report = {
        "benchmark": "columnar_core",
        "scale": args.scale,
        "nodes": dataset.node_count,
        "repeats": args.repeats,
        "queries": results,
        "min_required_speedup": MIN_SPEEDUP,
        "gated_queries": list(GATED_QUERIES),
        "gated_configurations": list(GATED_CONFIGURATIONS),
        "identical_results": all(entry["identical_results"] for entry in results),
        "pass": all(entry["identical_results"] for entry in results)
        and all(timing["speedup"] >= MIN_SPEEDUP for timing in gated),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

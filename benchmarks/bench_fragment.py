"""The widened-fragment gate: value joins + pushed-down aggregates on SQLite.

PR 5 widens the accepted XQuery fragment — FLWOR ``let``/``where``, value
joins between two bound document sequences, and ``fn:count``/``fn:sum``/
``fn:avg`` rendered as *native* SQL aggregates (scalar or ``GROUP BY``
over the pre/level encoding).  This benchmark runs XMark-style workloads
in exactly those shapes (the Q8/Q20 patterns of the paper's workload
family), asserts every engine configuration agrees bit-for-bit, and gates
a >= 3x speedup of the SQL configuration over the interpreted stacked
plan on the join-bearing workloads (FJ1, FA2).  The scalar/per-node
aggregate micro-workloads (FA1, FA3, FS1) are timed informationally:
since the columnar execution core landed, the interpreted side finishes
them in a few milliseconds of mostly fixed pipeline overhead, so the
stacked-vs-SQL ratio there measures constant costs, not execution —
their native-SQL rendering and bit-for-bit consistency are still
asserted.  (The gate was >= 5x over all five workloads against the
row-at-a-time interpreter.)

Usage::

    python benchmarks/bench_fragment.py [--scale 0.5] [--repeats 3] [--output BENCH_fragment.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import build_xmark_dataset
from repro.core.pipeline import XQueryProcessor

MIN_SPEEDUP = 3.0

#: Workloads the speedup gate applies to (see module docstring); the rest
#: are timed informationally but still consistency- and pushdown-checked.
GATED_WORKLOADS = ("FJ1-value-join", "FA2-grouped-count")

#: Every configuration must agree bit-for-bit before timings mean anything.
CONFIGURATIONS = ("stacked", "isolated", "join-graph", "sql", "sql-stacked")

WORKLOADS = (
    (
        "FJ1-value-join",
        "persons joined to the items they watch (Q8-style value join)",
        'for $p in doc("auction.xml")/descendant::person, '
        '$ca in doc("auction.xml")/descendant::closed_auction '
        "where $ca/buyer/@person = $p/@id "
        "return $p/name",
    ),
    (
        "FA1-scalar-count",
        "count of multi-quantity items (Q20-style filtered count)",
        'fn:count(doc("auction.xml")/descendant::item[quantity >= 2])',
    ),
    (
        "FA2-grouped-count",
        "per-person count of bought auctions (Q8: aggregate over a value join)",
        'for $p in doc("auction.xml")/descendant::person '
        "return fn:count(doc(\"auction.xml\")/descendant::closed_auction"
        "[buyer/@person = $p/@id])",
    ),
    (
        "FA3-grouped-sum",
        "per-auction bidder count (grouped aggregate over the encoding)",
        'for $oa in doc("auction.xml")/descendant::open_auction '
        "return fn:count($oa/child::bidder)",
    ),
    (
        "FS1-scalar-sum",
        "total item quantity (scalar SUM pushdown)",
        'fn:sum(doc("auction.xml")/descendant::item/child::quantity)',
    ),
)


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_query(processor: XQueryProcessor, name, description, query, repeats, timeout):
    compilation = processor.compile(query)
    assert compilation.join_graph is not None, (name, compilation.join_graph_error)
    reference = None
    consistent = True
    for configuration in CONFIGURATIONS:
        items = processor.execute(
            query, configuration=configuration, timeout_seconds=timeout
        ).items
        if reference is None:
            reference = items
        elif items != reference:
            consistent = False
    aggregated_natively = compilation.join_graph.aggregate is not None
    sql_text = None
    if aggregated_natively:
        outcome = processor.execute(query, configuration="sql", timeout_seconds=timeout)
        sql_text = outcome.details.sql
        aggregated_natively = any(
            marker in sql_text for marker in ("COUNT(", "SUM(", "AVG(")
        )
    stacked_seconds = _best_of(
        repeats,
        lambda: processor.execute(query, configuration="stacked", timeout_seconds=timeout),
    )
    sql_seconds = _best_of(
        repeats,
        lambda: processor.execute(query, configuration="sql", timeout_seconds=timeout),
    )
    return {
        "name": name,
        "description": description,
        "result_items": len(reference),
        "consistent_results": consistent,
        "native_aggregate": aggregated_natively,
        "has_aggregate": compilation.join_graph.aggregate is not None,
        "stacked_seconds": stacked_seconds,
        "sql_seconds": sql_seconds,
        "speedup": stacked_seconds / sql_seconds if sql_seconds > 0 else float("inf"),
        "gated": name in GATED_WORKLOADS,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-query budget")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_fragment.json",
    )
    args = parser.parse_args(argv)

    dataset = build_xmark_dataset(scale=args.scale)
    processor = XQueryProcessor(dataset.encoding, default_document=dataset.uri)
    print(
        f"xmark: {dataset.node_count} nodes -> SQLite "
        f"({processor.sql_backend.row_count()} rows mirrored)"
    )

    results = []
    for name, description, query in WORKLOADS:
        entry = bench_query(
            processor, name, description, query, args.repeats, args.timeout
        )
        results.append(entry)
        tag = "" if entry["gated"] else " (informational)"
        print(
            f"  {entry['name']}{tag}: stacked {entry['stacked_seconds']:.4f}s  "
            f"sql {entry['sql_seconds']:.4f}s -> {entry['speedup']:.1f}x "
            f"(consistent={entry['consistent_results']}"
            + (f", native_aggregate={entry['native_aggregate']}" if entry["has_aggregate"] else "")
            + ")"
        )

    report = {
        "benchmark": "fragment_value_joins_and_aggregates",
        "rdbms": "sqlite3",
        "scale": args.scale,
        "nodes": dataset.node_count,
        "repeats": args.repeats,
        "workloads": results,
        "min_required_speedup": MIN_SPEEDUP,
        "gated_workloads": list(GATED_WORKLOADS),
        "pass": all(
            (entry["speedup"] >= MIN_SPEEDUP or not entry["gated"])
            and entry["consistent_results"]
            and (entry["native_aggregate"] or not entry["has_aggregate"])
            for entry in results
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared fixtures for the benchmark harness.

The scale factor is deliberately laptop-sized (the paper uses a 110 MB XMark
instance and a 400 MB DBLP instance; we default to a few tens of thousands
of nodes).  Set ``REPRO_BENCH_SCALE`` to a float to run larger instances.
"""

import os
import pathlib

import pytest

from repro.bench.workloads import build_dblp_dataset, build_xmark_dataset
from repro.core.pipeline import XQueryProcessor

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
BUDGET_SECONDS = float(os.environ.get("REPRO_BENCH_BUDGET", "30"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_artifact(name: str, content: str) -> None:
    """Persist a reproduced table / figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(content)


@pytest.fixture(scope="session")
def xmark_dataset():
    return build_xmark_dataset(scale=SCALE)


@pytest.fixture(scope="session")
def dblp_dataset():
    return build_dblp_dataset(scale=SCALE)


@pytest.fixture(scope="session")
def xmark_processor(xmark_dataset):
    return XQueryProcessor(xmark_dataset.encoding, default_document=xmark_dataset.uri)


@pytest.fixture(scope="session")
def dblp_processor(dblp_dataset):
    return XQueryProcessor(dblp_dataset.encoding, default_document=dblp_dataset.uri)

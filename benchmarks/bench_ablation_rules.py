"""Ablation A2 — switching off individual isolation goals (Fig. 5 rule groups)."""

from repro.algebra.dag import node_count
from repro.algebra.operators import Distinct, Join, RowRank
from repro.algebra.dag import count_operators
from repro.bench.workloads import query_by_name
from repro.core.rewriter import JoinGraphIsolation
from repro.xquery.compiler import compile_query

from conftest import write_artifact

CONFIGURATIONS = {
    "full isolation": JoinGraphIsolation(),
    "no join collapse": JoinGraphIsolation(enable_join_goal=False, enable_distinct_goal=False),
    "no rank goal": JoinGraphIsolation(enable_rank_goal=False),
    "cleanup only": JoinGraphIsolation(
        enable_rank_goal=False, enable_join_goal=False, enable_distinct_goal=False
    ),
}


def test_ablation_rule_goals(benchmark):
    query = query_by_name("Q1").xquery
    stacked = compile_query(query)
    results = {}
    for label, config in CONFIGURATIONS.items():
        plan, report = config.isolate(compile_query(query))
        results[label] = (
            node_count(plan),
            count_operators(plan, Join),
            count_operators(plan, Distinct),
            count_operators(plan, RowRank),
            report.steps,
        )
    benchmark(lambda: JoinGraphIsolation().isolate(compile_query(query)))
    lines = [
        "Ablation A2 — isolation goals switched off individually (Q1)",
        f"stacked plan: {node_count(stacked)} operators",
        "",
        f"{'configuration':>18} | ops | joins | δ | ϱ | rewrite steps",
    ]
    for label, (ops, joins, distincts, ranks, steps) in results.items():
        lines.append(f"{label:>18} | {ops:>3} | {joins:>5} | {distincts} | {ranks} | {steps}")
    artifact = "\n".join(lines)
    write_artifact("ablation_rules.txt", artifact)
    print("\n" + artifact)
    assert results["full isolation"][1] < results["no join collapse"][1]
    assert results["full isolation"][0] <= results["cleanup only"][0]

"""Rewrite-driver benchmark: worklist vs legacy restart-from-root isolation.

The legacy driver re-infers every plan property and restarts a full-DAG
scan from the root after *every* rule application — O(steps × nodes ×
rules).  The worklist driver replaces that with pattern-indexed dispatch,
cross-step property memos migrated along mechanical rebuilds, and a
failure memo over unchanged nodes, so each step costs roughly the dirty
cone of the previous application.

This benchmark times **isolation only** (compile-time work; no document is
needed) on the join-heavy XMark queries Q8-Q12 — the deepest join chains
of the suite, where the legacy driver's per-step restart hurts the most.
Before timing, both drivers are asserted to produce the identical plan,
the identical application sequence, and the identical ``rules_fired()``
histogram (modulo fresh-column numbering); the speedup gate is meaningless
if the fast driver does different work.

Isolation timings are noisy (single runs vary ~2x on shared machines), so
each driver is timed best-of-``--repeats`` per query and the ≥ 2x gate is
applied to the *aggregate* over all five queries; per-query speedups are
reported informationally.

Usage::

    python benchmarks/bench_rewrite.py [--repeats 3] [--output BENCH_rewrite.json]
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import re
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.algebra.render import render_plan
from repro.bench.xmark import XMARK_SUITE
from repro.core.rewrite.context import RuleContext
from repro.core.rewriter import JoinGraphIsolation
from repro.xquery.compiler import CompilerSettings, compile_query

#: The join-heavy slice: the deepest join chains of XMark (Q8-Q10 carry
#: the suite's ``join_heavy`` flag; Q11/Q12 add the value-join shapes).
QUERY_NAMES = ("Q8", "Q9", "Q10", "Q11", "Q12")

SETTINGS = CompilerSettings(default_document="auction.xml")


def _normalize(text: str) -> str:
    """Erase the process-wide fresh-column numbering for comparison."""
    return re.sub(r"_w\d+", "_wN", text)


def _isolate(driver: str, plan):
    # The fresh-column counter is process-wide; reset it so both drivers
    # issue identical carry-column names and renderings compare equal.
    RuleContext._fresh_columns = itertools.count(1)
    return JoinGraphIsolation(driver=driver).isolate(plan)


def _assert_identical(name: str, plan) -> dict:
    legacy_plan, legacy_report = _isolate("legacy", plan)
    work_plan, work_report = _isolate("worklist", plan)
    legacy_apps = [
        (s.rule, _normalize(s.target), _normalize(s.replacement))
        for s in legacy_report.applications
    ]
    work_apps = [
        (s.rule, _normalize(s.target), _normalize(s.replacement))
        for s in work_report.applications
    ]
    identical = (
        legacy_apps == work_apps
        and _normalize(render_plan(legacy_plan)) == _normalize(render_plan(work_plan))
        and legacy_report.rules_fired() == work_report.rules_fired()
        and legacy_report.converged
        and work_report.converged
    )
    if not identical:
        raise AssertionError(f"{name}: drivers disagree; refusing to time")
    return {
        "steps": len(work_report.applications),
        "rejections": len(work_report.rejections),
        "rules_fired": work_report.rules_fired(),
    }


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_query(case, repeats: int) -> dict:
    plan = compile_query(case.xquery, SETTINGS)
    provenance = _assert_identical(case.name, plan)
    legacy = _best_of(repeats, lambda: _isolate("legacy", plan))
    worklist = _best_of(repeats, lambda: _isolate("worklist", plan))
    return {
        "name": case.name,
        "identical_results": True,
        "steps": provenance["steps"],
        "rejections": provenance["rejections"],
        "legacy_seconds": legacy,
        "worklist_seconds": worklist,
        "speedup": legacy / worklist if worklist > 0 else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_rewrite.json",
    )
    args = parser.parse_args(argv)

    cases = {case.name: case for case in XMARK_SUITE}
    queries = [bench_query(cases[name], args.repeats) for name in QUERY_NAMES]

    legacy_total = sum(q["legacy_seconds"] for q in queries)
    worklist_total = sum(q["worklist_seconds"] for q in queries)
    aggregate = legacy_total / worklist_total if worklist_total > 0 else float("inf")
    report = {
        "benchmark": "rewrite_driver",
        "queries_timed": list(QUERY_NAMES),
        "repeats": args.repeats,
        "min_speedup": 2.0,
        "queries": queries,
        "legacy_total_seconds": legacy_total,
        "worklist_total_seconds": worklist_total,
        "aggregate_speedup": aggregate,
        "pass": aggregate >= 2.0 and all(q["identical_results"] for q in queries),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for query in queries:
        print(
            f"  {query['name']}: legacy {query['legacy_seconds']:.4f}s"
            f" worklist {query['worklist_seconds']:.4f}s"
            f" -> {query['speedup']:.2f}x ({query['steps']} steps)"
        )
    print(
        f"  aggregate: legacy {legacy_total:.4f}s worklist {worklist_total:.4f}s"
        f" -> {aggregate:.2f}x (gate >= 2x)"
    )
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

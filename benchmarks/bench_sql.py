"""Stacked-vs-isolated on a real RDBMS: the Table IX experiment on SQLite.

The paper's Table IX compares the *stacked* plan (the unrewritten CTE
chain Pathfinder ships to DB2) against the *isolated* join graph (one
SELECT-DISTINCT-FROM-WHERE block) — on the same database, with the same
indexes.  This benchmark reruns that comparison on an actual off-the-shelf
RDBMS, SQLite via :mod:`repro.sqlbackend`:

* **stacked-sql** — ``XQueryProcessor.execute_sql_stacked``: the
  ``WITH``-chain of `generate_stacked_sql`, one CTE per algebra operator,
  whose DISTINCT / RANK() OVER fences box the engine in (Section IV);
* **join-graph-sql** — ``XQueryProcessor.execute_sql``: the Fig. 8/9 SFW
  block over the Fig. 2 encoding with the paper's access-path indexes,
  join order pinned to the in-tree cost-based planner's choice.

Results are asserted consistent (identical node sets, and the join-graph
sequence identical to the interpreted join-graph engine) before timing.
Emits ``BENCH_sql.json``; the acceptance gate is a >= 5x speedup for the
isolated join graph on every gated workload, echoing the *orders of
magnitude* of Table IX.

Usage::

    python benchmarks/bench_sql.py [--scale 0.5] [--repeats 3] [--output BENCH_sql.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import WORKLOAD, build_dblp_dataset, build_xmark_dataset
from repro.core.pipeline import XQueryProcessor

#: Gated workloads.  Q2 *does* reduce to a join graph since the fragment
#: widening (a 12-fold self-join with two value-join edges), but on SQLite
#: its isolated block only modestly beats the stacked chain (~1.4x at scale
#: 0.5 — both renderings are dominated by the same value-join work), so it
#: stays out of the >= 5x gate; benchmarks/bench_fragment.py gates the
#: value-join shapes against the interpreted baseline instead.
GATED = ("Q1", "Q3", "Q4", "Q5", "Q6")
MIN_SPEEDUP = 5.0


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_query(processor: XQueryProcessor, query, repeats: int, timeout: float) -> dict:
    # Correctness first: the SQL paths must agree with each other and with
    # the interpreted join-graph engine before their timings mean anything.
    via_sql = processor.execute_sql(query.xquery, timeout_seconds=timeout)
    via_stacked_sql = processor.execute_sql_stacked(query.xquery, timeout_seconds=timeout)
    interpreted = processor.execute_join_graph(query.xquery, timeout_seconds=timeout)
    consistent = (
        via_sql.items == interpreted.items
        and set(via_sql.items) == set(via_stacked_sql.items)
    )

    stacked_seconds = _best_of(
        repeats, lambda: processor.execute_sql_stacked(query.xquery, timeout_seconds=timeout)
    )
    join_graph_seconds = _best_of(
        repeats, lambda: processor.execute_sql(query.xquery, timeout_seconds=timeout)
    )
    return {
        "name": query.name,
        "paper_id": query.paper_id,
        "dataset": query.dataset,
        "result_nodes": len(set(via_sql.items)),
        "consistent_results": consistent,
        "stacked_sql_seconds": stacked_seconds,
        "join_graph_sql_seconds": join_graph_seconds,
        "speedup": stacked_seconds / join_graph_seconds
        if join_graph_seconds > 0
        else float("inf"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-query budget")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_sql.json",
    )
    args = parser.parse_args(argv)

    datasets = {
        "xmark": build_xmark_dataset(scale=args.scale),
        "dblp": build_dblp_dataset(scale=args.scale),
    }
    processors = {
        name: XQueryProcessor(dataset.encoding, default_document=dataset.uri)
        for name, dataset in datasets.items()
    }
    for name, dataset in datasets.items():
        print(f"{name}: {dataset.node_count} nodes -> SQLite "
              f"({processors[name].sql_backend.row_count()} rows mirrored)")

    results = []
    for query in WORKLOAD:
        if query.name not in GATED:
            continue
        entry = bench_query(processors[query.dataset], query, args.repeats, args.timeout)
        results.append(entry)
        print(
            f"  {entry['name']} ({entry['dataset']}): stacked-sql "
            f"{entry['stacked_sql_seconds']:.4f}s  join-graph-sql "
            f"{entry['join_graph_sql_seconds']:.4f}s -> {entry['speedup']:.1f}x "
            f"(consistent={entry['consistent_results']})"
        )

    report = {
        "benchmark": "sql_backend_stacked_vs_isolated",
        "rdbms": "sqlite3",
        "scale": args.scale,
        "nodes": {name: dataset.node_count for name, dataset in datasets.items()},
        "repeats": args.repeats,
        "workloads": results,
        "min_required_speedup": MIN_SPEEDUP,
        "pass": all(
            entry["speedup"] >= MIN_SPEEDUP and entry["consistent_results"]
            for entry in results
        ),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

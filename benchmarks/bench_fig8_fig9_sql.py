"""Experiment E3/E4 — Fig. 8 / Fig. 9: the emitted SQL join graphs."""

from repro.bench.workloads import query_by_name

from conftest import write_artifact


def test_fig8_q1_sql(benchmark, xmark_processor):
    compilation = benchmark(lambda: xmark_processor.compile(query_by_name("Q1").xquery))
    assert compilation.join_graph is not None
    sql = compilation.join_graph_sql
    write_artifact("fig8_q1_sql.txt", sql)
    print("\n" + sql)
    # Fig. 8: a three-fold self join, DISTINCT output, ordered by the
    # open_auction's pre rank.
    assert compilation.join_graph.self_join_width == 3
    assert sql.startswith("SELECT DISTINCT")
    assert sql.count("doc AS d") == 3
    assert "ORDER BY" in sql


def test_fig9_q2_sql(benchmark, xmark_processor):
    """Q2's SQL (Fig. 9).

    Known limitation (documented in DESIGN.md / EXPERIMENTS.md): the
    iteration bookkeeping of Q2's deeply nested FLWOR is not yet fully
    collapsed, so the query falls back to the isolated algebra plan instead
    of a single 12-fold self-join SFW block.  The bench records how far the
    isolation gets; the SQL of the *stacked* translation is emitted instead.
    """
    compilation = benchmark(lambda: xmark_processor.compile(query_by_name("Q2").xquery))
    report = compilation.isolation_report
    lines = [
        "Fig. 9 (Q2) — join graph isolation status",
        f"join graph extracted: {compilation.join_graph is not None}",
        f"fallback reason: {compilation.join_graph_error}",
        f"operators before/after isolation: "
        f"{report.initial_operator_count} -> {report.final_operator_count}",
    ]
    if compilation.join_graph_sql:
        lines += ["", compilation.join_graph_sql]
    artifact = "\n".join(lines)
    write_artifact("fig9_q2_sql.txt", artifact)
    print("\n" + artifact)
    assert report.final_operator_count < report.initial_operator_count

"""Experiment E1/E2 — Fig. 4 vs. Fig. 7: stacked plan vs. isolated plan for Q1.

The paper contrasts the tall stacked plan the compositional compiler emits
(joins, δ and ϱ scattered everywhere, Fig. 4) with the isolated plan (a
single δ in the tail over a three-fold self-join of doc, Fig. 7).  This
bench reproduces both plans, reports their operator inventories and times
the isolation rewriting itself.
"""

from repro.algebra.dag import count_operators, operator_histogram
from repro.algebra.operators import Distinct, DocTable, Join, RowRank
from repro.algebra.render import plan_summary, render_plan
from repro.bench.workloads import query_by_name
from repro.core.rewriter import isolate
from repro.xquery.compiler import compile_query

from conftest import write_artifact

Q1 = query_by_name("Q1").xquery


def test_fig4_fig7_plan_shapes(benchmark):
    stacked = compile_query(Q1)
    isolated, report = benchmark(lambda: isolate(compile_query(Q1)))
    stacked_histogram = operator_histogram(stacked)
    isolated_histogram = operator_histogram(isolated)
    lines = [
        "Fig. 4 vs Fig. 7 — plan shapes for Q1",
        f"stacked : {plan_summary(stacked)}",
        f"isolated: {plan_summary(isolated)}",
        "",
        "isolated plan (cf. Fig. 7):",
        render_plan(isolated),
    ]
    artifact = "\n".join(lines)
    write_artifact("fig4_fig7_plan_shapes.txt", artifact)
    print("\n" + artifact)
    # Shape assertions from the paper: blocking operators collapse into the
    # tail, the join bundle is the three-fold self-join of doc.
    assert stacked_histogram["Join"] >= 5 and stacked_histogram["Distinct"] >= 3
    assert count_operators(isolated, Join) == 2
    assert count_operators(isolated, Distinct) <= 1
    assert count_operators(isolated, RowRank) <= 1
    assert count_operators(isolated, DocTable) == 1

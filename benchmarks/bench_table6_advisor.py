"""Experiment E5 — Table VI: B-tree indexes proposed by the index advisor."""

from repro.bench.workloads import WORKLOAD
from repro.relational.advisor import IndexAdvisor
from repro.relational.btree import PRE_PLUS_SIZE

from conftest import write_artifact


def test_table6_index_advisor(benchmark, xmark_processor, dblp_processor):
    graphs = []
    for query in WORKLOAD:
        processor = xmark_processor if query.dataset == "xmark" else dblp_processor
        compilation = processor.compile(query.xquery)
        if compilation.join_graph is not None:
            graphs.append(compilation.join_graph)

    def advise():
        advisor = IndexAdvisor()
        advisor.advise(graphs)
        return advisor

    advisor = benchmark(advise)
    report = "Table VI — proposed B-tree indexes\n" + advisor.report()
    write_artifact("table6_advisor.txt", report)
    print("\n" + report)
    key_sets = [r.key_columns for r in advisor.recommendations]
    # The same index families as the paper's Table VI: name/kind-prefixed
    # step-support indexes, value- and data-prefixed atomization indexes,
    # and a clustered pre-keyed serialization index.
    assert any(keys[0] == "name" for keys in key_sets)
    assert any("value" in keys or "data" in keys for keys in key_sets)
    assert any(r.clustered and r.key_columns == ("pre",) for r in advisor.recommendations)

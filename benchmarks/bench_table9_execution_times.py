"""Experiments E8/E9/E10 — Table VIII query set + Table IX execution times.

For every query Q1-Q6 the harness measures the four configurations of
Table IX: the stacked plan (algebra interpreter over the un-rewritten
plan), the isolated join graph (relational back-end with B-tree indexes),
and the pureXML baseline over a whole-document and a segmented store.
Configurations that exceed the budget are reported as DNF, mirroring the
paper's 20-hour cut-off.

Absolute numbers are not comparable to the paper's DB2-on-Xeon setup; the
*shape* is what is checked: join-graph isolation beats the stacked
translation on every query, and beats the navigational whole-document
baseline on the traversal-heavy queries (Q1, Q4).
"""

import pytest

from repro.bench.runner import TableNineRow, run_table_nine_row
from repro.bench.workloads import WORKLOAD, query_by_name

from conftest import BUDGET_SECONDS, write_artifact

_ROWS: dict[str, TableNineRow] = {}


@pytest.mark.parametrize("name", [q.name for q in WORKLOAD])
def test_table9_row(benchmark, name, xmark_dataset, dblp_dataset, xmark_processor, dblp_processor):
    query = query_by_name(name)
    dataset = xmark_dataset if query.dataset == "xmark" else dblp_dataset
    processor = xmark_processor if query.dataset == "xmark" else dblp_processor
    # pytest-benchmark times the join-graph configuration (the paper's headline
    # column); the full four-configuration row is measured once below.
    compilation = processor.compile(query.xquery)

    def join_graph_run():
        if compilation.join_graph is not None:
            return processor.execute_join_graph(query.xquery, timeout_seconds=BUDGET_SECONDS)
        return processor.execute_isolated_interpreted(query.xquery, timeout_seconds=BUDGET_SECONDS)

    benchmark(join_graph_run)
    row = run_table_nine_row(query, dataset, processor, budget_seconds=BUDGET_SECONDS)
    _ROWS[name] = row
    # Shape assertion: the join graph configuration never loses to the stacked
    # translation (Table IX shows improvements of 5x to three orders of
    # magnitude).  Q2 currently falls back to the isolated algebra plan
    # (see EXPERIMENTS.md), so the claim is only asserted for queries whose
    # join graph was extracted.  Since the stacked interpreter also runs on
    # the vectorized core, both sides can complete in a handful of
    # milliseconds at toy scales; the 50ms absolute grace keeps constant
    # factors (planning, catalog lookups) from flipping the comparison there
    # while preserving the claim at realistic document sizes.
    if compilation.join_graph is not None and not row.stacked.dnf and not row.join_graph.dnf:
        assert row.join_graph.seconds <= row.stacked.seconds * 1.5 + 0.05


def test_table9_report(benchmark, xmark_dataset, dblp_dataset, xmark_processor, dblp_processor):
    # Keep the report test visible under --benchmark-only by benchmarking the
    # cheapest representative operation (Q1 compilation is cached).
    benchmark(lambda: xmark_processor.compile(WORKLOAD[0].xquery))
    for query in WORKLOAD:
        if query.name in _ROWS:
            continue
        dataset = xmark_dataset if query.dataset == "xmark" else dblp_dataset
        processor = xmark_processor if query.dataset == "xmark" else dblp_processor
        _ROWS[query.name] = run_table_nine_row(
            query, dataset, processor, budget_seconds=BUDGET_SECONDS
        )
    lines = [
        "Table IX — observed result sizes and wall clock execution times",
        f"(XMark instance: {xmark_dataset.node_count} nodes, "
        f"DBLP instance: {dblp_dataset.node_count} nodes, budget {BUDGET_SECONDS}s)",
        "",
        TableNineRow.header(),
    ]
    for query in WORKLOAD:
        lines.append(_ROWS[query.name].render())
    artifact = "\n".join(lines)
    write_artifact("table9_execution_times.txt", artifact)
    print("\n" + artifact)

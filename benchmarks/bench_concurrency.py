"""SQL-engine throughput scaling under the concurrent query service.

The serving-layer claim: because the SQLite mirror hands every worker its
own pooled read connection and SQLite releases the GIL while a statement
executes, the ``sql`` engine's throughput scales with worker threads on a
multicore host.  This benchmark measures exactly that — the same batch of
prepared XMark queries pushed through a :class:`~repro.service.QueryService`
over one shared :class:`~repro.core.session.Session` at 1 worker and at 8
workers — and gates on the throughput ratio.

Correctness first: every outcome is checked bit-for-bit against serial
execution before any timing counts.

**Gate policy.** The scaling a host can physically deliver is bounded by
its cores: on the >= 4-core machines CI uses, the gate is the full
``>= 3.0x`` (the measured SQLite fraction of these queries is ~0.97, so
Amdahl predicts ~3.7x on 4 cores).  On smaller hosts (the gate records
``cores`` and the policy it applied) a thread cannot beat the GIL-free
parallelism that isn't there, so the gate degrades to a *no-collapse*
check — concurrent throughput must stay >= 0.7x of serial — rather than
reporting a fake pass or an unearnable fail.  The JSON always contains the
honest measured ratio.

Usage::

    python benchmarks/bench_concurrency.py [--scale 2.0] [--requests 240]
        [--workers 1 8] [--output BENCH_concurrency.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import WORKLOAD, build_xmark_dataset
from repro.core.session import Session
from repro.service import QueryRequest, QueryService

#: XMark workload queries with an isolated join graph (the ``sql`` engine's
#: input); Q2 does not reduce to one block and is out of scope here.
QUERY_NAMES = ("Q1", "Q3", "Q4")
#: A parameterized query so the batch also exercises binding flow
#: (SQLite-native ``:lo`` parameters, zero re-rendering per call).
PARAM_QUERY = (
    "declare variable $lo as xs:decimal external; "
    'doc("auction.xml")/descendant::closed_auction/child::price[. > $lo]'
)
PARAM_BINDINGS = ({"lo": 100.0}, {"lo": 300.0}, {"lo": 600.0})

FULL_GATE = 3.0          # >= 4 cores: real scaling demanded
NO_COLLAPSE_GATE = 0.7   # < 4 cores: concurrency must not wreck throughput


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_requests(session: Session, per_query: int) -> tuple[list, list]:
    """The prepared request batch plus the serially computed expected items."""
    prepared = {
        query.name: session.prepare(query.xquery)
        for query in WORKLOAD
        if query.dataset == "xmark" and query.name in QUERY_NAMES
    }
    prepared["param"] = session.prepare(PARAM_QUERY)

    # The batch has only a handful of distinct (query, binding) pairs —
    # compute each serial reference result once, not once per request.
    reference: dict = {}

    def expected_items(name: str, binding=None) -> list[int]:
        key = (name, binding["lo"] if binding else None)
        if key not in reference:
            reference[key] = prepared[name].run(binding, engine="sql").items
        return reference[key]

    requests: list[QueryRequest] = []
    expected: list[list[int]] = []
    for index in range(per_query * len(QUERY_NAMES)):
        name = QUERY_NAMES[index % len(QUERY_NAMES)]
        requests.append(
            QueryRequest(prepared=prepared[name], configuration="sql")
        )
        expected.append(expected_items(name))
        if index % len(QUERY_NAMES) == 0:
            binding = PARAM_BINDINGS[
                (index // len(QUERY_NAMES)) % len(PARAM_BINDINGS)
            ]
            requests.append(
                QueryRequest(
                    prepared=prepared["param"], configuration="sql", bindings=binding
                )
            )
            expected.append(expected_items("param", binding))
    return requests, expected


def measure_throughput(
    session: Session, requests: list, expected: list, workers: int
) -> dict:
    """Queries/second of the batch at ``workers`` pool threads."""
    with QueryService(session, max_workers=workers, max_in_flight=2 * workers) as service:
        # Warm-up: every worker thread builds its pooled SQLite clone and
        # the plan/render memos settle, outside the timed window.
        warmup = service.execute_many(requests[: 2 * workers])
        for outcome, want in zip(warmup, expected[: 2 * workers]):
            assert outcome.items == want, "warm-up diverged from serial results"
        started = time.perf_counter()
        outcomes = service.execute_many(requests)
        elapsed = time.perf_counter() - started
        stats = service.service_stats()
    mismatches = sum(
        1 for outcome, want in zip(outcomes, expected) if outcome.items != want
    )
    engine = stats["engines"]["sql"]
    return {
        "workers": workers,
        "requests": len(requests),
        "elapsed_seconds": elapsed,
        "queries_per_second": len(requests) / elapsed,
        "consistent_results": mismatches == 0,
        "mismatches": mismatches,
        "failed": engine["failed"],
        "mean_query_seconds": engine["mean_seconds"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0, help="XMark scale factor")
    parser.add_argument(
        "--requests", type=int, default=240,
        help="approximate batch size per worker configuration",
    )
    parser.add_argument(
        "--workers", type=int, nargs=2, default=(1, 8), metavar=("LOW", "HIGH"),
        help="the two pool sizes to compare",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_concurrency.json",
    )
    args = parser.parse_args(argv)

    dataset = build_xmark_dataset(scale=args.scale)
    session = Session()
    session.register_document(dataset.document)
    per_query = max(1, args.requests // len(QUERY_NAMES))
    requests, expected = build_requests(session, per_query)
    cores = _usable_cores()
    print(
        f"xmark scale {args.scale}: {dataset.node_count} nodes, "
        f"{len(requests)} prepared requests, {cores} usable core(s)"
    )

    low, high = args.workers
    runs = [measure_throughput(session, requests, expected, w) for w in (low, high)]
    for run in runs:
        print(
            f"  {run['workers']} worker(s): {run['queries_per_second']:.1f} q/s "
            f"({run['elapsed_seconds']:.3f}s, consistent={run['consistent_results']})"
        )

    scaling = runs[1]["queries_per_second"] / runs[0]["queries_per_second"]
    if cores >= 4:
        required, policy = FULL_GATE, f"full ({cores} cores >= 4)"
    else:
        required, policy = NO_COLLAPSE_GATE, (
            f"no-collapse ({cores} core(s) < 4: thread scaling is physically "
            f"impossible here; CI runs the full {FULL_GATE}x gate)"
        )
    consistent = all(run["consistent_results"] and run["failed"] == 0 for run in runs)
    report = {
        "benchmark": "sql_engine_concurrency_scaling",
        "rdbms": "sqlite3",
        "scale": args.scale,
        "nodes": dataset.node_count,
        "queries": list(QUERY_NAMES) + ["param"],
        "usable_cores": cores,
        "runs": runs,
        "throughput_scaling": scaling,
        "min_required_scaling": required,
        "gate_policy": policy,
        "full_gate": FULL_GATE,
        "pass": scaling >= required and consistent,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"scaling {low}->{high} workers: {scaling:.2f}x "
        f"(gate >= {required}x, policy: {policy})"
    )
    print(f"wrote {args.output} (pass={report['pass']})")
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

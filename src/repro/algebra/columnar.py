"""Columnar storage and vectorized kernels for the execution core.

The paper's argument is that set-oriented relational evaluation beats
node-at-a-time navigation — yet a row-tuple interpreter still pays Python
dispatch per row.  This module supplies the columnar counterpart of
:class:`repro.algebra.table.Table`: one array per column, boolean masks for
selections, and batch kernels (comparison masks, rank/dense-rank, staircase
bisection helpers) that the interpreted engines call instead of per-row
closures.

Storage is a NumPy object ``ndarray`` per column when NumPy is importable,
and a plain Python list otherwise (the *typed-list fallback*).  Every kernel
has a pure-Python branch with semantics identical to the row path, so the
engines produce bit-for-bit identical tables in either mode.  Setting the
environment variable ``REPRO_NO_NUMPY`` (to any non-empty value) forces the
fallback even when NumPy is installed — CI uses this to keep the pure-Python
path green.

Comparison mask semantics replicate :func:`repro.algebra.predicates._compare`
exactly:

* any ``None`` operand fails the comparison (``None = None`` is *false*),
* mixed numeric/string *range* comparisons fail instead of raising,
* ``=`` / ``!=`` use Python equality over the original objects.

The vectorized branch runs comparisons over a float64 *numeric shadow* of
each column (``None`` and strings map to NaN).  NaN propagation makes the
``None``-fails rule free for ``=``/``<``/``<=``/``>``/``>=``; ``!=`` masks
NaN explicitly.  The shadow branch is only taken when it provably matches
the reference semantics: both sides must be free of floats that cannot be
represented exactly (huge ints) and at most one side may contain strings
(a string shadows to NaN and can never equal or order against a number,
which is exactly the reference behaviour — but string-vs-string comparisons
must fall back to the Python branch).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, Optional, Sequence

try:  # pragma: no cover - exercised by the no-NumPy CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("NumPy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: True when NumPy was importable at module load (and not disabled via env).
HAVE_NUMPY = _np is not None

_numpy_enabled = HAVE_NUMPY

#: Largest magnitude for which every int is exactly representable in float64.
_EXACT_INT = 2 ** 53

_NAN = float("nan")


def numpy_active() -> bool:
    """True when the vectorized (NumPy) branch is in use for new columns."""
    return _numpy_enabled and _np is not None


def active_numpy():
    """The NumPy module when the vectorized branch is active, else ``None``."""
    return _np if numpy_active() else None


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the vectorized branch at runtime (tests only); returns the old value.

    Disabling makes *newly built* columns use list storage; columns already
    built keep their storage, and mixed-storage operations take the Python
    branch, so flipping mid-run is safe (if slow).
    """
    global _numpy_enabled
    previous = _numpy_enabled
    _numpy_enabled = bool(enabled) and _np is not None
    return previous


def sort_key(values: tuple) -> tuple:
    """Total order over heterogeneous values (None < numbers < strings).

    Canonical definition shared by the row path (``Table.sort_by`` /
    ``Table.attach_rank``) and the columnar rank kernels.
    """
    key = []
    for value in values:
        if value is None:
            key.append((0, 0))
        elif isinstance(value, bool):
            key.append((1, int(value)))
        elif isinstance(value, (int, float)):
            key.append((1, value))
        else:
            key.append((2, str(value)))
    return tuple(key)


# ---------------------------------------------------------------------------
# Columns
# ---------------------------------------------------------------------------


class Column:
    """One table column: an object ndarray (vectorized) or a plain list.

    Lazily caches per-column statistics used to pick kernel branches:

    ``notnull``
        boolean mask, True where the value is not ``None``;
    ``shadow``
        float64 array with the numeric value per row and NaN for ``None``
        or non-numeric values (vectorized storage only);
    ``has_strings``
        True when any value is neither ``None`` nor numeric;
    ``shadow_exact``
        True when every numeric value is exactly representable in float64
        (ints beyond ±2**53 poison the shadow and force the Python branch);
    ``ints_only``
        True when every non-``None`` value is a Python int (bools included)
        — lets arithmetic kernels rebuild exact int results from a float64
        shadow.
    """

    __slots__ = (
        "values",
        "length",
        "_notnull",
        "_shadow",
        "_has_strings",
        "_shadow_exact",
        "_ints_only",
    )

    def __init__(self, values, length: Optional[int] = None):
        self.values = values
        self.length = len(values) if length is None else length
        self._notnull = None
        self._shadow = None
        self._has_strings = None
        self._shadow_exact = None
        self._ints_only = None

    def __len__(self) -> int:
        return self.length

    @property
    def vectorized(self) -> bool:
        return _np is not None and isinstance(self.values, _np.ndarray)

    @classmethod
    def from_values(cls, values: Sequence[object]) -> "Column":
        """Build a column with the storage chosen by :func:`numpy_active`."""
        if numpy_active():
            array = _np.empty(len(values), dtype=object)
            array[:] = values
            return cls(array)
        return cls(list(values))

    @classmethod
    def numeric(cls, shadow, ints_only: bool = False) -> "Column":
        """A purely numeric column from its float64 shadow (NaN = ``None``).

        Materialises *exact* Python objects: NaN rows become ``None`` (never
        a float ``nan`` object), and with ``ints_only`` the values are
        rebuilt as Python ints — so a vectorized sum of int columns is
        bit-for-bit the int the row path would have produced.
        """
        notnull = ~_np.isnan(shadow)
        all_notnull = bool(notnull.all())
        if ints_only:
            filled = shadow if all_notnull else _np.where(notnull, shadow, 0.0)
            values = filled.astype(_np.int64).astype(object)
        else:
            values = shadow.astype(object)
        if not all_notnull:
            values[~notnull] = None
        column = cls(values, len(shadow))
        column._shadow = shadow
        column._notnull = notnull
        column._has_strings = False
        column._shadow_exact = True
        column._ints_only = ints_only
        return column

    @classmethod
    def constant(cls, value: object, n: int) -> "Column":
        """A column holding ``value`` in every row (the Attach operator)."""
        if numpy_active():
            array = _np.empty(n, dtype=object)
            array[:] = value
            column = cls(array)
        else:
            column = cls([value] * n)
        column._has_strings = value is not None and not isinstance(value, (int, float))
        column._shadow_exact = not isinstance(value, int) or _scalar_exact(value)
        column._ints_only = value is None or isinstance(value, int)
        return column

    @classmethod
    def int_sequence(cls, start: int, n: int) -> "Column":
        """Consecutive Python ints ``start .. start+n-1`` (the RowId operator)."""
        if numpy_active():
            column = cls(_np.arange(start, start + n).astype(object), n)
            column._shadow = _np.arange(start, start + n, dtype=_np.float64)
            column._notnull = _np.ones(n, dtype=bool)
        else:
            column = cls(list(range(start, start + n)))
        column._has_strings = False
        column._shadow_exact = True
        column._ints_only = True
        return column

    def _build_stats(self) -> None:
        values = self.values
        n = self.length
        has_strings = False
        exact = True
        ints_only = True
        if self.vectorized:
            shadow = _np.empty(n, dtype=_np.float64)
            notnull = _np.ones(n, dtype=bool)
            for i in range(n):
                v = values[i]
                if type(v) is int:
                    shadow[i] = v
                    if not -_EXACT_INT <= v <= _EXACT_INT:
                        exact = False
                elif type(v) is float:
                    shadow[i] = v
                    ints_only = False
                elif v is None:
                    shadow[i] = _NAN
                    notnull[i] = False
                elif isinstance(v, bool):
                    shadow[i] = float(v)
                elif isinstance(v, int):
                    shadow[i] = v
                    if not -_EXACT_INT <= v <= _EXACT_INT:
                        exact = False
                elif isinstance(v, float):
                    shadow[i] = v
                    ints_only = False
                else:
                    shadow[i] = _NAN
                    has_strings = True
                    ints_only = False
            self._shadow = shadow
            self._notnull = notnull
        else:
            self._notnull = [v is not None for v in values]
            ints_only = False  # the fallback kernels never consult it
            for v in values:
                if v is not None and not isinstance(v, (int, float)):
                    has_strings = True
                    break
        self._has_strings = has_strings
        self._shadow_exact = exact
        self._ints_only = ints_only

    @property
    def notnull(self):
        if self._notnull is None:
            self._build_stats()
        return self._notnull

    @property
    def shadow(self):
        """float64 shadow (vectorized storage only; NaN = None / non-numeric)."""
        if self._shadow is None:
            self._build_stats()
        return self._shadow

    @property
    def has_strings(self) -> bool:
        if self._has_strings is None:
            self._build_stats()
        return self._has_strings

    @property
    def shadow_exact(self) -> bool:
        if self._shadow_exact is None:
            self._build_stats()
        return self._shadow_exact

    @property
    def ints_only(self) -> bool:
        if self._ints_only is None:
            self._build_stats()
        return self._ints_only

    def shadow_usable(self) -> bool:
        """True when this column's shadow can stand in for its values."""
        return self.vectorized and self.shadow_exact

    def tolist(self) -> list:
        if self.vectorized:
            return self.values.tolist()
        return self.values if isinstance(self.values, list) else list(self.values)

    def take(self, indices) -> "Column":
        """Gather by integer indices, propagating cached statistics."""
        if self.vectorized:
            result = Column(self.values[indices])
            if self._shadow is not None:
                result._shadow = self._shadow[indices]
            if self._notnull is not None:
                result._notnull = self._notnull[indices]
        else:
            values = self.values
            result = Column([values[i] for i in indices])
            if self._notnull is not None:
                notnull = self._notnull
                result._notnull = [notnull[i] for i in indices]
        # Flags are conservative over subsets (a subset may lose its last
        # string, never gain one), so they remain valid.
        result._has_strings = self._has_strings
        result._shadow_exact = self._shadow_exact
        result._ints_only = self._ints_only
        return result

    def filter(self, mask) -> "Column":
        """Keep rows where ``mask`` is True, propagating cached statistics."""
        if self.vectorized and _np is not None and isinstance(mask, _np.ndarray):
            result = Column(self.values[mask])
            if self._shadow is not None:
                result._shadow = self._shadow[mask]
            if self._notnull is not None:
                result._notnull = self._notnull[mask]
        else:
            values = self.values
            result = Column([v for v, keep in zip(values, mask) if keep])
            result._notnull = None
        result._has_strings = self._has_strings
        result._shadow_exact = self._shadow_exact
        result._ints_only = self._ints_only
        return result

    def repeat(self, count: int) -> "Column":
        """Each value repeated ``count`` times in place (cross-product left side)."""
        if self.vectorized:
            result = Column(_np.repeat(self.values, count))
            if self._shadow is not None:
                result._shadow = _np.repeat(self._shadow, count)
        else:
            result = Column([v for v in self.values for _ in range(count)])
        result._has_strings = self._has_strings
        result._shadow_exact = self._shadow_exact
        result._ints_only = self._ints_only
        return result

    def tile(self, count: int) -> "Column":
        """The whole column repeated ``count`` times (cross-product right side)."""
        if self.vectorized:
            result = Column(_np.tile(self.values, count))
            if self._shadow is not None:
                result._shadow = _np.tile(self._shadow, count)
        else:
            result = Column(list(self.values) * count)
        result._has_strings = self._has_strings
        result._shadow_exact = self._shadow_exact
        result._ints_only = self._ints_only
        return result


# ---------------------------------------------------------------------------
# Boolean masks (ndarray of bool, or list of bool in the fallback)
# ---------------------------------------------------------------------------


def full_mask(n: int, value: bool, vectorized: bool):
    if vectorized and _np is not None:
        return _np.full(n, value, dtype=bool)
    return [value] * n


def mask_and(left, right):
    if _np is not None and isinstance(left, _np.ndarray) and isinstance(right, _np.ndarray):
        return left & right
    return [a and b for a, b in zip(left, right)]


def mask_any(mask) -> bool:
    if _np is not None and isinstance(mask, _np.ndarray):
        return bool(mask.any())
    return any(mask)


def mask_all(mask) -> bool:
    if _np is not None and isinstance(mask, _np.ndarray):
        return bool(mask.all())
    return all(mask)


def mask_count(mask) -> int:
    if _np is not None and isinstance(mask, _np.ndarray):
        return int(mask.sum())
    return sum(1 for m in mask if m)


def mask_indices(mask):
    """Integer row indices where ``mask`` is True."""
    if _np is not None and isinstance(mask, _np.ndarray):
        return _np.flatnonzero(mask)
    return [i for i, m in enumerate(mask) if m]


# ---------------------------------------------------------------------------
# Comparison kernels
# ---------------------------------------------------------------------------

_PYTHON_RANGE = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare_scalar(left: object, op: str, right: object) -> bool:
    """Reference semantics of ``predicates._compare`` (kept in sync)."""
    if left is None or right is None:
        return False
    if op == "=":
        return bool(left == right)
    if op == "!=":
        return bool(left != right)
    try:
        return bool(_PYTHON_RANGE[op](left, right))
    except TypeError:
        return False


def _scalar_numericish(value: object) -> bool:
    return isinstance(value, (int, float))


def _scalar_exact(value: object) -> bool:
    if isinstance(value, int) and not isinstance(value, bool):
        return -_EXACT_INT <= value <= _EXACT_INT
    return True  # floats are exact by definition; strings shadow to NaN


def compare_mask(left, op: str, right, n: int):
    """Boolean mask for ``left op right`` over ``n`` rows.

    ``left``/``right`` are :class:`Column` instances or Python scalars
    (literals).  Semantics match :func:`repro.algebra.predicates._compare`
    element-wise, bit for bit.
    """
    left_column = isinstance(left, Column)
    right_column = isinstance(right, Column)
    if not left_column and not right_column:
        return full_mask(n, _compare_scalar(left, op, right), numpy_active())
    # A None literal fails every row regardless of the operator.
    if (not left_column and left is None) or (not right_column and right is None):
        vectorized = (left if left_column else right).vectorized
        return full_mask(n, False, vectorized)

    vectorized = (left.vectorized if left_column else True) and (
        right.vectorized if right_column else True
    )
    if vectorized:
        left_exact = left.shadow_exact if left_column else _scalar_exact(left)
        right_exact = right.shadow_exact if right_column else _scalar_exact(right)
        left_strings = left.has_strings if left_column else not _scalar_numericish(left)
        right_strings = right.has_strings if right_column else not _scalar_numericish(right)
        if left_exact and right_exact and not (left_strings and right_strings):
            return _shadow_mask(left, op, right, left_column, right_column)
        if op in ("=", "!="):
            return _object_equality_mask(left, op, right, left_column, right_column)
    return _python_mask(left, op, right, left_column, right_column, n)


def _scalar_shadow(value: object) -> float:
    """The float64 shadow of a literal: numbers as floats, strings as NaN.

    NaN is exactly right for a string literal against a numeric column —
    it never equals or orders against anything, which is the reference
    behaviour (``=`` false, ranges false, ``!=`` true for non-None rows).
    """
    if isinstance(value, (int, float)):
        return float(value)
    return _NAN


def _shadow_mask(left, op, right, left_column, right_column):
    """Vector comparison over float64 shadows (validity checked by caller)."""
    a = left.shadow if left_column else _scalar_shadow(left)
    b = right.shadow if right_column else _scalar_shadow(right)
    if op == "=":
        return a == b  # NaN (None / string shadow) never equals anything.
    if op == "!=":
        mask = a != b  # NaN != x is True, but None operands must fail ...
        if left_column and not mask_all(left.notnull):
            mask = mask & left.notnull  # ... so mask them out explicitly.
        if right_column and not mask_all(right.notnull):
            mask = mask & right.notnull
        # A string operand shadows to NaN: "x != 5" is genuinely True, and
        # notnull keeps it (strings are not None) — matching the reference.
        return mask
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown comparison operator {op!r}")


def _object_equality_mask(left, op, right, left_column, right_column):
    """Element-wise ``=`` / ``!=`` over the original objects (vectorized)."""
    a = left.values if left_column else left
    b = right.values if right_column else right
    if op == "=":
        mask = a == b
    else:
        mask = a != b
    if not isinstance(mask, _np.ndarray):  # scalar-vs-scalar broadcast edge
        mask = _np.full(len(left) if left_column else len(right), bool(mask))
    mask = mask.astype(bool, copy=False)
    # None operands fail the comparison even though None == None in Python.
    if left_column and not mask_all(left.notnull):
        mask = mask & left.notnull
    if right_column and not mask_all(right.notnull):
        mask = mask & right.notnull
    if not left_column and left is None or not right_column and right is None:
        mask = _np.zeros(len(mask), dtype=bool)
    return mask


def _python_mask(left, op: str, right, left_column: bool, right_column: bool, n: int):
    """Per-element fallback with exact ``_compare`` semantics."""
    left_values = left.values if left_column else None
    right_values = right.values if right_column else None
    out = []
    append = out.append
    for i in range(n):
        lv = left_values[i] if left_column else left
        rv = right_values[i] if right_column else right
        append(_compare_scalar(lv, op, rv))
    if numpy_active() and (
        (left_column and left.vectorized) or (right_column and right.vectorized)
    ):
        return _np.array(out, dtype=bool)
    return out


def sum_columns(parts: Sequence[object], n: int) -> Column:
    """Columnar ``Sum`` term: element-wise sum of columns and scalars.

    Matches ``predicates.Sum.evaluate``: any ``None`` operand makes the row
    ``None``; non-numeric operands raise ``TypeError`` exactly like the row
    path (the Python branch reproduces the raise; the vector branch is only
    taken when no strings are present).
    """
    columns = [p for p in parts if isinstance(p, Column)]
    if not columns:
        total = 0
        for part in parts:
            if part is None:
                return Column.from_values([None] * n)
            total += part  # type: ignore[operator]
        return Column.from_values([total] * n)
    fast = all(c.vectorized and c.shadow_exact and not c.has_strings for c in columns)
    if fast:
        total = None
        scalar_total = 0.0
        scalar_none = False
        ints_only = all(c.ints_only for c in columns)
        for part in parts:
            if isinstance(part, Column):
                total = part.shadow if total is None else total + part.shadow
            elif part is None:
                scalar_none = True
            else:
                scalar_total += part
                if not isinstance(part, int):
                    ints_only = False
        if scalar_none:
            return Column.from_values([None] * n)
        total = total + scalar_total if scalar_total else total.copy()
        # Summed magnitudes must stay exactly representable, or the rebuilt
        # ints would silently round — fall to the Python loop instead.
        with _np.errstate(invalid="ignore"):
            in_range = not _np.any(_np.abs(total) > _EXACT_INT)
        if in_range:
            return Column.numeric(total, ints_only=ints_only)
    values = []
    part_values = [p.values if isinstance(p, Column) else None for p in parts]
    for i in range(n):
        total = 0
        for part, stored in zip(parts, part_values):
            v = stored[i] if stored is not None else part
            if v is None:
                total = None
                break
            total += v  # type: ignore[operator]
        values.append(total)
    return Column.from_values(values)


# ---------------------------------------------------------------------------
# Rank kernels
# ---------------------------------------------------------------------------


def rank_values(order_columns: Sequence[Column], partition_columns: Sequence[Column], n: int):
    """``RANK() OVER (PARTITION BY ... ORDER BY ...)`` as a list/array of ints.

    Semantics match ``Table.attach_rank``: ranks restart at 1 per distinct
    partition key; ties on the order key share the 1-based sorted position
    within their partition.  Returns Python ints (as an object ndarray in the
    vectorized branch) so downstream rows stay bit-for-bit identical.
    """
    involved = list(order_columns) + list(partition_columns)
    fast = bool(involved) and all(
        c.vectorized and c.shadow_exact and not c.has_strings and mask_all(c.notnull)
        for c in involved
    )
    if fast and n:
        # lexsort's last key is primary: partitions group first, then order keys.
        keys = tuple(c.shadow for c in reversed(list(order_columns)))
        keys += tuple(c.shadow for c in reversed(list(partition_columns)))
        order = _np.lexsort(keys)

        def _changes(columns: Sequence[Column]):
            changed = _np.zeros(n, dtype=bool)
            changed[0] = True
            for column in columns:
                sorted_shadow = column.shadow[order]
                changed[1:] |= sorted_shadow[1:] != sorted_shadow[:-1]
            return changed

        part_change = _changes(partition_columns) if partition_columns else None
        key_change = _changes(list(partition_columns) + list(order_columns))
        positions = _np.arange(n)
        if part_change is None:
            part_start = _np.zeros(n, dtype=_np.int64)
        else:
            part_start = _np.maximum.accumulate(_np.where(part_change, positions, 0))
        anchor = _np.maximum.accumulate(_np.where(key_change, positions, 0))
        ranks_sorted = anchor - part_start + 1
        out = _np.empty(n, dtype=_np.int64)
        out[order] = ranks_sorted
        return out.astype(object)
    return _rank_python(order_columns, partition_columns, n)


def _rank_python(order_columns, partition_columns, n: int):
    """Pure-Python rank identical to ``Table.attach_rank``."""
    order_values = [c.tolist() for c in order_columns]
    part_values = [c.tolist() for c in partition_columns]
    keys = list(zip(*order_values)) if order_values else [()] * n
    groups: dict[tuple, list[int]] = {}
    if part_values:
        part_keys = list(zip(*part_values))
    else:
        part_keys = [()] * n
    for position in range(n):
        groups.setdefault(part_keys[position], []).append(position)
    ranks = [0] * n
    for positions in groups.values():
        order = sorted(positions, key=lambda position: sort_key(keys[position]))
        previous_key = None
        rank = 0
        for sorted_position, row_position in enumerate(order, start=1):
            key = keys[row_position]
            if key != previous_key:
                rank = sorted_position
                previous_key = key
            ranks[row_position] = rank
    if numpy_active():
        out = _np.empty(n, dtype=object)
        out[:] = ranks
        return out
    return ranks


def dense_rank_map(keys: Iterable[tuple]) -> dict:
    """Map each distinct key tuple to its ``DENSE_RANK`` (1-based, gap-free).

    Keys are ordered by :func:`sort_key`; used by the relational engine's
    window-function pass.
    """
    distinct = set(keys)
    return {key: rank for rank, key in enumerate(sorted(distinct, key=sort_key), start=1)}


def equi_join_indices(probe: Column, build: Column):
    """Vectorized single-key equi-join: ``(probe_idx, build_idx)`` or ``None``.

    Sort-merge on the numeric shadows — stable argsort of the build column,
    a ``searchsorted`` pair per bound, then a flat-index gather.  Output is
    probe-major with each probe row's matches in original build order (the
    stable sort keeps equal keys in scan order), exactly the bucket order of
    the hash row path.

    Declines (``None``) whenever shadow equality could diverge from Python
    ``dict`` key equality: strings on either side (they shadow to NaN),
    inexact shadows (ints beyond 2**53), or NULLs (``None`` keys *match* in
    the row path's buckets, but NaN never equals itself).
    """
    np = active_numpy()
    if np is None or not (probe.vectorized and build.vectorized):
        return None
    if probe.has_strings or build.has_strings:
        return None
    if not (probe.shadow_exact and build.shadow_exact):
        return None
    if not (probe.notnull.all() and build.notnull.all()):
        return None
    build_order = np.argsort(build.shadow, kind="stable")
    sorted_build = build.shadow[build_order]
    low = np.searchsorted(sorted_build, probe.shadow, side="left")
    high = np.searchsorted(sorted_build, probe.shadow, side="right")
    counts = high - low
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) - np.repeat(starts, counts) + np.repeat(low, counts)
    probe_indices = np.repeat(np.arange(probe.length, dtype=np.int64), counts)
    return probe_indices, build_order[flat]


# ---------------------------------------------------------------------------
# Columnar tables
# ---------------------------------------------------------------------------


class ColumnarTable:
    """Column-major twin of :class:`repro.algebra.table.Table`.

    Shares column *objects* across derived tables (projection is O(width));
    conversion back to a row :class:`Table` restores the exact Python objects
    that entered, so row/columnar execution is bit-for-bit interchangeable.
    """

    __slots__ = ("columns", "cols", "length", "_index_of")

    def __init__(self, columns: Sequence[str], cols: Sequence[Column], length: int):
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            from repro.errors import AlgebraError

            raise AlgebraError(f"duplicate column names in table schema {self.columns}")
        self.cols: tuple[Column, ...] = tuple(cols)
        self.length = length
        self._index_of = {name: index for index, name in enumerate(self.columns)}

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarTable(columns={self.columns}, rows={self.length})"

    @property
    def vectorized(self) -> bool:
        return all(c.vectorized for c in self.cols) if self.cols else numpy_active()

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Sequence[tuple]) -> "ColumnarTable":
        columns = tuple(columns)
        n = len(rows)
        if n == 0:
            data: Sequence[Sequence[object]] = [[] for _ in columns]
        else:
            data = list(zip(*rows))
        return cls(columns, [Column.from_values(values) for values in data], n)

    @classmethod
    def from_table(cls, table) -> "ColumnarTable":
        return cls.from_rows(table.columns, table.rows)

    def to_table(self):
        from repro.algebra.table import Table

        if self.length == 0:
            return Table.unchecked(self.columns, [])
        return Table.unchecked(self.columns, list(zip(*(c.tolist() for c in self.cols))))

    def column_index(self, name: str) -> int:
        from repro.errors import AlgebraError

        try:
            return self._index_of[name]
        except KeyError:
            raise AlgebraError(f"unknown column {name!r}; schema is {self.columns}") from None

    def col(self, name: str) -> Column:
        return self.cols[self.column_index(name)]

    def iter_rows(self) -> Iterator[tuple]:
        return zip(*(c.tolist() for c in self.cols)) if self.cols else iter(())

    def project(self, items: Sequence[tuple[str, str]]) -> "ColumnarTable":
        """Project/rename sharing the underlying columns (O(width))."""
        return ColumnarTable(
            [new for new, _old in items],
            [self.cols[self.column_index(old)] for _new, old in items],
            self.length,
        )

    def take(self, indices) -> "ColumnarTable":
        count = len(indices)
        return ColumnarTable(self.columns, [c.take(indices) for c in self.cols], count)

    def filter(self, mask) -> "ColumnarTable":
        count = mask_count(mask)
        if count == self.length:
            return self
        return ColumnarTable(self.columns, [c.filter(mask) for c in self.cols], count)

    def with_column(self, name: str, column: Column) -> "ColumnarTable":
        from repro.errors import AlgebraError

        if name in self._index_of:
            raise AlgebraError(f"attach: column {name!r} already exists")
        return ColumnarTable(self.columns + (name,), self.cols + (column,), self.length)

"""Reference interpreter for table algebra plans.

The interpreter evaluates a plan DAG bottom-up, **materialising every
operator's result** — including each δ and ϱ — just like the staged
execution the paper observes when DB2 evaluates the stacked common table
expression translation ("numerous SORT primitives followed by temporary
table scans").  It therefore doubles as

* the executable semantics of the algebra (tests compare the rewritten
  plan's results against it), and
* the *stacked plan* configuration of the Table IX experiment.

Shared sub-plans are evaluated once (memoised by node identity), matching
the behaviour of a common table expression.

Three execution modes share the operator semantics bit-for-bit:

* ``columnar=True`` (the default when ``compiled``) — the columnar core:
  operators evaluate over :class:`~repro.algebra.columnar.ColumnarTable`
  columns, selections become boolean masks over whole columns, hash joins
  gather match indices and build output columns with array takes, and range
  joins locate *all* probe bounds with batched ``searchsorted`` calls.
* ``compiled=True, columnar=False`` — the compiled row core: predicates are
  compiled once per operator into positional-index closures (no per-row
  dicts), and joins whose predicate is a conjunction of range bounds on a
  single column — which is what every Fig. 3 axis step compiles to —
  run as a sort-based *range join* (sort the bounded side on the column,
  answer each outer row with two ``bisect`` probes, staircase-join style),
  dropping axis-step joins from O(n·m) to O(n log n + output).
* ``compiled=False`` — the seed's naive row-dict evaluation, kept as the
  differential baseline for tests and ``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import AlgebraError, ExecutionError, QueryTimeoutError
from repro.algebra import columnar as _columnar
from repro.algebra.columnar import Column, ColumnarTable
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import (
    ColumnRef,
    Comparison,
    Predicate,
    Term,
    compile_comparisons,
    compile_comparisons_mask,
    compile_predicate,
    compile_predicate_mask,
    compile_term,
    compile_term_columnar,
)
from repro.algebra.table import Table


class PlanInterpreter:
    """Evaluate plan DAGs against a ``doc`` table.

    Parameters
    ----------
    doc_table:
        The XML infoset encoding as a :class:`~repro.algebra.table.Table`
        with the ``pre|size|level|kind|name|value|data`` schema.
    timeout_seconds:
        Optional execution budget; exceeding it raises
        :class:`~repro.errors.QueryTimeoutError` (the paper's "DNF").
    compiled:
        Use the compiled execution core (compiled predicates + sort-based
        range joins).  ``False`` selects the naive per-row-dict reference
        path; both produce identical tables, row order included.
    columnar:
        Evaluate over :class:`~repro.algebra.columnar.ColumnarTable` columns
        with mask selections and batch joins instead of per-row closures.
        Defaults to following ``compiled`` (so the default interpreter is
        columnar); forced off when ``compiled`` is ``False`` — the naive
        path is the reference baseline and stays row-at-a-time.  All three
        modes produce identical tables, row order included.
    parameters:
        Late bindings for the :class:`~repro.algebra.predicates.Parameter`
        slots a prepared plan carries.  Every predicate is resolved against
        this mapping before (compiled or naive) evaluation, so a prepared
        plan plus bindings behaves bit-for-bit like the ad-hoc plan compiled
        with the same values as literals.
    """

    def __init__(
        self,
        doc_table: Table,
        timeout_seconds: Optional[float] = None,
        compiled: bool = True,
        parameters: Optional[Mapping[str, object]] = None,
        columnar: Optional[bool] = None,
    ):
        self.doc_table = doc_table
        self.timeout_seconds = timeout_seconds
        self.compiled = compiled
        self.columnar = compiled and (columnar if columnar is not None else True)
        self.parameters = dict(parameters) if parameters else None
        self._deadline: Optional[float] = None
        self._memo: dict[int, Table] = {}
        #: Number of operator evaluations performed (for plan-shape metrics).
        self.operators_evaluated = 0
        #: Total number of intermediate rows materialised.
        self.rows_materialised = 0
        #: Number of joins answered by the sort-based range-join fast path.
        self.range_joins = 0

    # -- public API -------------------------------------------------------------

    def evaluate(self, plan: Operator) -> Table:
        """Evaluate ``plan`` and return its result table."""
        self._memo = {}
        self.operators_evaluated = 0
        self.rows_materialised = 0
        self.range_joins = 0
        if self.timeout_seconds is not None:
            self._deadline = time.perf_counter() + self.timeout_seconds
        else:
            self._deadline = None
        result = self._evaluate(plan)
        if self.columnar:
            return result.to_table()
        return result

    # -- evaluation -------------------------------------------------------------

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            elapsed = self.timeout_seconds + (time.perf_counter() - self._deadline)
            raise QueryTimeoutError(self.timeout_seconds or 0.0, elapsed)

    def _evaluate(self, node: Operator) -> Table:
        if id(node) in self._memo:
            return self._memo[id(node)]
        self._check_deadline()
        result = self._dispatch_columnar(node) if self.columnar else self._dispatch(node)
        self.operators_evaluated += 1
        self.rows_materialised += len(result)
        self._memo[id(node)] = result
        return result

    def _dispatch(self, node: Operator) -> Table:
        if isinstance(node, DocTable):
            return self.doc_table
        if isinstance(node, LiteralTable):
            return Table(node.columns, node.rows)
        if isinstance(node, Serialize):
            return self._evaluate(node.child)
        if isinstance(node, Project):
            return self._evaluate(node.child).project(node.items)
        if isinstance(node, Select):
            table = self._evaluate(node.child)
            predicate = self._bound_predicate(node.predicate)
            if self.compiled:
                return table.filter_rows(compile_predicate(predicate, table.columns))
            return table.select(predicate.evaluate)
        if isinstance(node, Distinct):
            return self._evaluate(node.child).distinct()
        if isinstance(node, Attach):
            return self._evaluate(node.child).attach(node.column, node.value)
        if isinstance(node, RowId):
            return self._evaluate(node.child).attach_row_ids(node.column)
        if isinstance(node, RowRank):
            return self._evaluate(node.child).attach_rank(
                node.column, node.order_by, node.partition_by
            )
        if isinstance(node, Cross):
            return self._evaluate(node.left).cross(self._evaluate(node.right))
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, GroupAggregate):
            return self._group_aggregate(node)
        raise ExecutionError(f"cannot evaluate operator {type(node).__name__}")

    # -- columnar evaluation ------------------------------------------------------
    #
    # The columnar twins of the operators above.  Results flow between
    # operators as ColumnarTables (one array per column); `evaluate` converts
    # back to a row Table at the very end, restoring the exact Python objects
    # so all three modes (naive / compiled / columnar) are bit-for-bit
    # interchangeable.

    def _dispatch_columnar(self, node: Operator) -> ColumnarTable:
        if isinstance(node, DocTable):
            return self.doc_table.columnar()
        if isinstance(node, LiteralTable):
            # Route through Table to keep its per-row arity validation.
            return ColumnarTable.from_table(Table(node.columns, node.rows))
        if isinstance(node, Serialize):
            return self._evaluate(node.child)
        if isinstance(node, Project):
            return self._evaluate(node.child).project(node.items)
        if isinstance(node, Select):
            table = self._evaluate(node.child)
            predicate = self._bound_predicate(node.predicate)
            mask = compile_predicate_mask(predicate, table.columns)(table)
            return table.filter(mask)
        if isinstance(node, Distinct):
            table = self._evaluate(node.child)
            return ColumnarTable.from_rows(
                table.columns, list(dict.fromkeys(table.iter_rows()))
            )
        if isinstance(node, Attach):
            table = self._evaluate(node.child)
            return table.with_column(
                node.column, Column.constant(node.value, table.length)
            )
        if isinstance(node, RowId):
            table = self._evaluate(node.child)
            return table.with_column(node.column, Column.int_sequence(1, table.length))
        if isinstance(node, RowRank):
            return self._rank_columnar(node)
        if isinstance(node, Cross):
            return self._cross_columnar(self._evaluate(node.left), self._evaluate(node.right))
        if isinstance(node, Join):
            return self._join_columnar(node)
        if isinstance(node, GroupAggregate):
            return self._group_aggregate_columnar(node)
        raise ExecutionError(f"cannot evaluate operator {type(node).__name__}")

    def _rank_columnar(self, node: RowRank) -> ColumnarTable:
        table = self._evaluate(node.child)
        order_columns = [table.col(name) for name in node.order_by]
        partition_columns = [table.col(name) for name in node.partition_by]
        if node.column in table.columns:
            raise AlgebraError(f"rank: column {node.column!r} already exists")
        ranks = _columnar.rank_values(order_columns, partition_columns, table.length)
        return table.with_column(node.column, Column(ranks))

    def _cross_columnar(self, left: ColumnarTable, right: ColumnarTable) -> ColumnarTable:
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise AlgebraError(f"cross product with overlapping columns {sorted(overlap)}")
        return ColumnarTable(
            left.columns + right.columns,
            [c.repeat(right.length) for c in left.cols]
            + [c.tile(left.length) for c in right.cols],
            left.length * right.length,
        )

    def _join_columnar(self, node: Join) -> ColumnarTable:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        predicate = self._bound_predicate(node.predicate)
        output_columns = left.columns + right.columns
        equi, residual = _split_equijoin_conjuncts(predicate, left.columns, right.columns)
        if equi:
            return self._hash_join_columnar(left, right, equi, residual, output_columns)
        if residual and _columnar.active_numpy() is not None and left.vectorized and right.vectorized:
            plan = _plan_range_join(residual, left.columns, right.columns)
            if plan is not None:
                result = self._range_join_columnar(left, right, plan, output_columns)
                if result is not None:
                    self.range_joins += 1
                    return result
        # Fallback (no vectorized range plan applies): run the proven row
        # path — which has its own bisect range join and nested loop, and
        # updates the range_joins counter itself — then lift the result back
        # into columns.
        result = self._join_tables(predicate, left.to_table(), right.to_table())
        return ColumnarTable.from_table(result)

    def _hash_join_columnar(
        self,
        left: ColumnarTable,
        right: ColumnarTable,
        equi: list[tuple[str, str]],
        residual: list[Comparison],
        output_columns: tuple[str, ...],
    ) -> ColumnarTable:
        """Hash equi-join over column arrays; bucket order matches the row path."""
        if len(equi) == 1:
            vectorized = _columnar.equi_join_indices(
                left.col(equi[0][0]), right.col(equi[0][1])
            )
            if vectorized is not None:
                left_indices, right_indices = vectorized
                return self._joined_columnar(
                    left, right, left_indices, right_indices, residual, output_columns
                )
        left_key_values = [left.col(name).tolist() for name, _ in equi]
        right_key_values = [right.col(name).tolist() for _, name in equi]
        buckets: dict = {}
        left_indices: list[int] = []
        right_indices: list[int] = []
        if len(equi) == 1:
            for position, key in enumerate(right_key_values[0]):
                buckets.setdefault(key, []).append(position)
            for position, key in enumerate(left_key_values[0]):
                if not position & 0x3FFF:
                    self._check_deadline()
                matches = buckets.get(key)
                if matches:
                    left_indices += [position] * len(matches)
                    right_indices += matches
        else:
            for position, key in enumerate(zip(*right_key_values)):
                buckets.setdefault(key, []).append(position)
            for position, key in enumerate(zip(*left_key_values)):
                if not position & 0x3FFF:
                    self._check_deadline()
                matches = buckets.get(key)
                if matches:
                    left_indices += [position] * len(matches)
                    right_indices += matches
        np = _columnar.active_numpy()
        if np is not None and left.vectorized and right.vectorized:
            count = len(left_indices)
            left_indices = np.fromiter(left_indices, dtype=np.int64, count=count)
            right_indices = np.fromiter(right_indices, dtype=np.int64, count=count)
        return self._joined_columnar(
            left, right, left_indices, right_indices, residual, output_columns
        )

    def _joined_columnar(
        self,
        left: ColumnarTable,
        right: ColumnarTable,
        left_indices,
        right_indices,
        residual: list[Comparison],
        output_columns: tuple[str, ...],
    ) -> ColumnarTable:
        combined = ColumnarTable(
            output_columns,
            [c.take(left_indices) for c in left.cols]
            + [c.take(right_indices) for c in right.cols],
            len(left_indices),
        )
        if residual:
            mask = compile_comparisons_mask(residual, output_columns)(combined)
            combined = combined.filter(mask)
        return combined

    def _range_join_columnar(
        self,
        left: ColumnarTable,
        right: ColumnarTable,
        plan: "_RangeJoinPlan",
        output_columns: tuple[str, ...],
    ) -> Optional[ColumnarTable]:
        """Batch-bisect range join; returns ``None`` to signal a fallback.

        The vectorized counterpart of :meth:`_range_join_rows`: the build
        side's column is sorted once, then *all* probe bounds are located
        with one ``searchsorted`` call per bound.  Output order is restored
        with a lexsort over (build, probe) positions so rows come out in the
        exact nested-loop order of the row path.
        """
        np = _columnar.active_numpy()
        build, probe = (left, right) if plan.build_side == "left" else (right, left)
        build_column = build.col(plan.column)
        if build_column.has_strings or not build_column.shadow_exact:
            return None  # mirror the row path: non-numeric build values bail out
        build_positions = np.flatnonzero(build_column.notnull)  # None never matches
        values = build_column.shadow[build_positions]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_positions = build_positions[order]
        total = len(sorted_values)
        probe_n = probe.length
        index_of = {name: i for i, name in enumerate(probe.columns)}
        low = np.zeros(probe_n, dtype=np.int64)
        high = np.full(probe_n, total, dtype=np.int64)
        usable = np.ones(probe_n, dtype=bool)
        for op, term in plan.bounds:
            value = compile_term_columnar(term, index_of)(probe)
            if isinstance(value, Column):
                if not value.shadow_exact:
                    return None
                bounds = value.shadow  # NaN marks None / non-numeric bounds
            elif value is None or not isinstance(value, (int, float)):
                bounds = np.full(probe_n, _columnar._NAN)
            else:
                bounds = np.full(probe_n, float(value))
            usable &= ~np.isnan(bounds)
            if op in (">", ">=", "="):
                side = "left" if op in (">=", "=") else "right"
                np.maximum(low, np.searchsorted(sorted_values, bounds, side=side), out=low)
            if op in ("<", "<=", "="):
                side = "right" if op in ("<=", "=") else "left"
                np.minimum(high, np.searchsorted(sorted_values, bounds, side=side), out=high)
        counts = np.where(usable & (low < high), high - low, 0)
        total_out = int(counts.sum())
        if total_out == 0:
            return ColumnarTable.from_rows(output_columns, [])
        self._check_deadline()
        probe_indices = np.repeat(np.arange(probe_n), counts)
        starts = np.cumsum(counts) - counts
        flat = np.arange(total_out) - np.repeat(starts, counts) + np.repeat(low, counts)
        build_indices = sorted_positions[flat]
        if plan.build_side == "left":
            final = np.lexsort((probe_indices, build_indices))
            left_indices = build_indices[final]
            right_indices = probe_indices[final]
        else:
            final = np.lexsort((build_indices, probe_indices))
            left_indices = probe_indices[final]
            right_indices = build_indices[final]
        combined = ColumnarTable(
            output_columns,
            [c.take(left_indices) for c in left.cols]
            + [c.take(right_indices) for c in right.cols],
            total_out,
        )
        if plan.remaining:
            mask = compile_comparisons_mask(plan.remaining, output_columns)(combined)
            combined = combined.filter(mask)
        return combined

    def _group_aggregate_columnar(self, node: GroupAggregate) -> ColumnarTable:
        """Columnar Aggr with the exact fold order of :meth:`_group_aggregate`."""
        child = self._evaluate(node.child)
        loop = self._evaluate(node.loop)
        group_values = child.col(node.group_column).tolist()
        unit_values = child.col(node.unit_column).tolist()
        value_values = (
            child.col(node.value_column).tolist() if node.value_column is not None else None
        )
        counts: dict = {}
        grouped_values: dict = {}
        seen: set[tuple] = set()
        for position in range(child.length):
            if not position & 0x3FFF:
                self._check_deadline()
            group = group_values[position]
            identity = (
                group,
                unit_values[position],
                None if value_values is None else value_values[position],
            )
            if identity in seen:
                continue
            seen.add(identity)
            if node.function == "count":
                counts[group] = counts.get(group, 0) + 1
            else:
                grouped_values.setdefault(group, []).append(value_values[position])
        loop_keys = loop.col(node.group_column).tolist()
        if node.function == "count":
            items = [counts.get(key, 0) for key in loop_keys]
            return loop.with_column(node.item_column, Column.from_values(items))
        folded: dict = {}
        for key, group_vals in grouped_values.items():
            values = [v for v in group_vals if v is not None]
            if node.function == "sum":
                folded[key] = sum(values) if values else 0
            elif values:  # avg of an empty group emits no row
                folded[key] = sum(values) / len(values)
        if node.function == "sum":
            items = [folded.get(key, 0) for key in loop_keys]
            return loop.with_column(node.item_column, Column.from_values(items))
        keep = [key in folded for key in loop_keys]
        items = [folded[key] for key in loop_keys if key in folded]
        np = _columnar.active_numpy()
        if np is not None and loop.vectorized:
            keep = np.array(keep, dtype=bool)
        return loop.filter(keep).with_column(node.item_column, Column.from_values(items))

    # -- join evaluation ----------------------------------------------------------

    def _bound_predicate(self, predicate: Predicate) -> Predicate:
        """Resolve parameter slots before the predicate reaches any fast path."""
        if self.parameters is not None:
            return predicate.bind(self.parameters)
        return predicate

    def _join(self, node: Join) -> Table:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        predicate = self._bound_predicate(node.predicate)
        if not self.compiled:
            return self._join_naive(predicate, left, right)
        return self._join_tables(predicate, left, right)

    def _join_tables(self, predicate: Predicate, left: Table, right: Table) -> Table:
        """The compiled (row-tuple) join: hash equi-join / range join / nested loop."""
        equi, residual = _split_equijoin_conjuncts(predicate, left.columns, right.columns)
        output_columns = left.columns + right.columns
        residual_test = (
            compile_comparisons(residual, output_columns) if residual else None
        )
        if equi:
            rows = self._hash_join_rows(left, right, equi, residual_test)
            return Table.unchecked(output_columns, rows)
        if residual:
            plan = _plan_range_join(residual, left.columns, right.columns)
            if plan is not None:
                rows = self._range_join_rows(left, right, plan, output_columns)
                if rows is not None:
                    self.range_joins += 1
                    return Table.unchecked(output_columns, rows)
        # Fallback: nested loop with the predicate compiled once (no row dicts).
        predicate_test = compile_predicate(predicate, output_columns)
        rows = []
        for left_row in left.rows:
            self._check_deadline()
            for right_row in right.rows:
                combined = left_row + right_row
                if predicate_test(combined):
                    rows.append(combined)
        return Table.unchecked(output_columns, rows)

    def _hash_join_rows(
        self,
        left: Table,
        right: Table,
        equi: list[tuple[str, str]],
        residual_test: Optional[Callable[[tuple], bool]],
    ) -> list[tuple]:
        left_keys = [left.column_index(name) for name, _ in equi]
        right_keys = [right.column_index(name) for _, name in equi]
        buckets: dict[tuple, list[tuple]] = {}
        for row in right.rows:
            key = tuple(row[index] for index in right_keys)
            buckets.setdefault(key, []).append(row)
        rows: list[tuple] = []
        if len(left_keys) == 1:
            single = left_keys[0]
            for left_row in left.rows:
                self._check_deadline()
                for right_row in buckets.get((left_row[single],), ()):
                    combined = left_row + right_row
                    if residual_test is None or residual_test(combined):
                        rows.append(combined)
            return rows
        for left_row in left.rows:
            self._check_deadline()
            key = tuple(left_row[index] for index in left_keys)
            for right_row in buckets.get(key, ()):
                combined = left_row + right_row
                if residual_test is None or residual_test(combined):
                    rows.append(combined)
        return rows

    def _range_join_rows(
        self,
        left: Table,
        right: Table,
        plan: "_RangeJoinPlan",
        output_columns: tuple[str, ...],
    ) -> Optional[list[tuple]]:
        """Sort-based range join; returns ``None`` to signal a fallback.

        The side owning the bounded column (*build*) is sorted on it once;
        every row of the other side (*probe*) then locates its matches with
        two ``bisect`` probes.  Output rows are emitted in nested-loop order
        (left-major, original row order within) so results stay bit-for-bit
        identical to the naive path.
        """
        build, probe = (left, right) if plan.build_side == "left" else (right, left)
        column = build.column_index(plan.column)
        pairs: list[tuple[float, int]] = []
        for position, row in enumerate(build.rows):
            value = row[column]
            if value is None:
                continue  # None never satisfies any comparison
            if not isinstance(value, (int, float)):
                return None  # non-numeric build values: stay on the safe path
            pairs.append((value, position))
        pairs.sort()
        values = [value for value, _position in pairs]
        probe_index_of = {name: i for i, name in enumerate(probe.columns)}
        lows: list[tuple[Callable[[Sequence[object]], object], bool]] = []
        highs: list[tuple[Callable[[Sequence[object]], object], bool]] = []
        for op, term in plan.bounds:
            fn = compile_term(term, probe_index_of)
            if op in (">", ">="):
                lows.append((fn, op == ">="))
            elif op in ("<", "<="):
                highs.append((fn, op == "<="))
            else:  # "=" — an exact bound from both sides
                lows.append((fn, True))
                highs.append((fn, True))
        remaining_test = (
            compile_comparisons(plan.remaining, output_columns) if plan.remaining else None
        )
        build_rows = build.rows
        total = len(values)
        build_is_left = plan.build_side == "left"
        keyed: list[tuple[int, int, tuple]] = []
        rows: list[tuple] = []
        for probe_position, probe_row in enumerate(probe.rows):
            self._check_deadline()
            start, end = 0, total
            usable = True
            for fn, inclusive in lows:
                bound = fn(probe_row)
                if bound is None or not isinstance(bound, (int, float)):
                    usable = False
                    break
                cut = bisect_left(values, bound) if inclusive else bisect_right(values, bound)
                if cut > start:
                    start = cut
            if usable:
                for fn, inclusive in highs:
                    bound = fn(probe_row)
                    if bound is None or not isinstance(bound, (int, float)):
                        usable = False
                        break
                    cut = bisect_right(values, bound) if inclusive else bisect_left(values, bound)
                    if cut < end:
                        end = cut
            if not usable or start >= end:
                continue
            matches = sorted(position for _value, position in pairs[start:end])
            if build_is_left:
                for build_position in matches:
                    combined = build_rows[build_position] + probe_row
                    if remaining_test is None or remaining_test(combined):
                        keyed.append((build_position, probe_position, combined))
            else:
                for build_position in matches:
                    combined = probe_row + build_rows[build_position]
                    if remaining_test is None or remaining_test(combined):
                        rows.append(combined)
        if build_is_left:
            # Restore left-major nested-loop order.
            keyed.sort(key=lambda item: (item[0], item[1]))
            return [combined for _l, _r, combined in keyed]
        return rows

    # -- aggregation ---------------------------------------------------------------

    def _group_aggregate(self, node: GroupAggregate) -> Table:
        """Reference semantics of Aggr (shared by compiled and naive modes).

        Child rows are deduplicated on (group, unit, value) — the argument
        is a node sequence, so each node counts once per iteration — then
        folded per loop row: ``count`` and ``sum`` complete empty groups
        with 0; ``avg`` of a group without non-NULL values emits no row
        (``fn:avg(())`` is the empty sequence).  NULL values are ignored by
        ``sum``/``avg`` — SQL's discipline, which is what keeps this
        operator bit-for-bit aligned with the pushed-down native aggregates
        of the SQL configuration (a DISTINCT subquery under COUNT/SUM/AVG).
        """
        child = self._evaluate(node.child)
        loop = self._evaluate(node.loop)
        group_index = child.column_index(node.group_column)
        unit_index = child.column_index(node.unit_column)
        value_index = (
            child.column_index(node.value_column) if node.value_column is not None else None
        )
        loop_group_index = loop.column_index(node.group_column)
        groups: dict[object, list] = {}
        seen: set[tuple] = set()
        for row in child.rows:
            identity = (
                row[group_index],
                row[unit_index],
                None if value_index is None else row[value_index],
            )
            if identity in seen:
                continue
            seen.add(identity)
            groups.setdefault(row[group_index], []).append(row)
        rows: list[tuple] = []
        for loop_row in loop.rows:
            self._check_deadline()
            members = groups.get(loop_row[loop_group_index], ())
            if node.function == "count":
                rows.append(loop_row + (len(members),))
                continue
            values = [
                row[value_index]
                for row in members
                if row[value_index] is not None  # type: ignore[index]
            ]
            if node.function == "sum":
                rows.append(loop_row + (sum(values) if values else 0,))
            else:  # avg
                if values:
                    rows.append(loop_row + (sum(values) / len(values),))
        return Table.unchecked(loop.columns + (node.item_column,), rows)

    # -- the seed's naive join, kept as the differential baseline -----------------

    def _join_naive(self, predicate: Predicate, left: Table, right: Table) -> Table:
        equi, residual = _split_equijoin_conjuncts(predicate, left.columns, right.columns)
        output_columns = left.columns + right.columns
        rows: list[tuple] = []
        if equi:
            left_keys = [left.column_index(name) for name, _ in equi]
            right_keys = [right.column_index(name) for _, name in equi]
            buckets: dict[tuple, list[tuple]] = {}
            for row in right.rows:
                key = tuple(row[index] for index in right_keys)
                buckets.setdefault(key, []).append(row)
            for left_row in left.rows:
                self._check_deadline()
                key = tuple(left_row[index] for index in left_keys)
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if self._residual_holds(residual, output_columns, combined):
                        rows.append(combined)
        else:
            for left_row in left.rows:
                self._check_deadline()
                for right_row in right.rows:
                    combined = left_row + right_row
                    if predicate.evaluate(dict(zip(output_columns, combined))):
                        rows.append(combined)
        return Table(output_columns, rows)

    @staticmethod
    def _residual_holds(
        residual: list[Comparison], columns: tuple[str, ...], combined: tuple
    ) -> bool:
        if not residual:
            return True
        row = dict(zip(columns, combined))
        return all(conjunct.evaluate(row) for conjunct in residual)


# ---------------------------------------------------------------------------
# Range-join recognition (the Fig. 3 axis-step conjunct shape)
# ---------------------------------------------------------------------------


@dataclass
class _RangeJoinPlan:
    """A chosen bounded column plus the conjuncts it absorbs."""

    build_side: str  # "left" | "right" — the side owning the bounded column
    column: str
    #: Normalised bounds ``column op term`` with ``term`` over the probe side.
    bounds: list[tuple[str, Term]]
    #: Conjuncts not absorbed as bounds (checked per candidate pair).
    remaining: list[Comparison]


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _plan_range_join(
    residual: list[Comparison],
    left_columns: tuple[str, ...],
    right_columns: tuple[str, ...],
) -> Optional[_RangeJoinPlan]:
    """Recognise range-bound conjuncts ``col op expr(other side)``.

    Every Fig. 3 axis predicate has this shape: the candidate node's plain
    ``pre`` (or ``level``) column bounded by expressions over the context
    side (``pre° < pre ∧ pre <= pre° + size°``).  We pick the (side, column)
    with the most usable bounds, preferring one bounded from both ends.
    """
    left_set = set(left_columns)
    right_set = set(right_columns)

    def side_of(names: frozenset[str]) -> Optional[str]:
        if names <= left_set:
            return "left"
        if names <= right_set:
            return "right"
        return None

    candidates: dict[tuple[str, str], list[tuple[str, Term, Comparison]]] = {}
    for conjunct in residual:
        if conjunct.op == "!=":
            continue
        for col_term, op, other in (
            (conjunct.left, conjunct.op, conjunct.right),
            (conjunct.right, _FLIP.get(conjunct.op, conjunct.op), conjunct.left),
        ):
            if not isinstance(col_term, ColumnRef):
                continue
            col_side = side_of(frozenset((col_term.name,)))
            other_side = side_of(other.columns())
            if col_side is None or other_side is None or col_side == other_side:
                # Constant bounds (other side references no columns) attach to
                # either interpretation; require a genuine cross-side bound or
                # a constant, never a same-side comparison.
                if col_side is None or other.columns():
                    continue
                other_side = "left" if col_side == "right" else "right"
            # A col-col conjunct like ``pre° < pre`` registers under *both*
            # orientations (a high bound on pre° and a low bound on pre);
            # the scoring below then picks whichever column ends up bounded
            # from both ends.
            candidates.setdefault((col_side, col_term.name), []).append(
                (op, other, conjunct)
            )

    if not candidates:
        return None

    def score(entry: tuple[tuple[str, str], list[tuple[str, Term, Comparison]]]) -> tuple:
        _key, bounds = entry
        has_low = any(op in (">", ">=", "=") for op, _t, _c in bounds)
        has_high = any(op in ("<", "<=", "=") for op, _t, _c in bounds)
        return (has_low and has_high, len(bounds))

    (build_side, column), chosen = max(candidates.items(), key=score)
    if not score(((build_side, column), chosen))[0]:
        # A single one-sided bound rarely narrows anything; require a
        # two-sided (or equality) bound before engaging the fast path.
        return None
    consumed = {id(conjunct) for _op, _term, conjunct in chosen}
    remaining = [conjunct for conjunct in residual if id(conjunct) not in consumed]
    return _RangeJoinPlan(
        build_side=build_side,
        column=column,
        bounds=[(op, term) for op, term, _conjunct in chosen],
        remaining=remaining,
    )


def _split_equijoin_conjuncts(
    predicate: Predicate, left_columns: tuple[str, ...], right_columns: tuple[str, ...]
) -> tuple[list[tuple[str, str]], list[Comparison]]:
    """Split a join predicate into hashable ``left = right`` pairs and the rest."""
    left_set = set(left_columns)
    right_set = set(right_columns)
    equi: list[tuple[str, str]] = []
    residual: list[Comparison] = []
    for conjunct in predicate.conjuncts:
        if conjunct.is_column_equality():
            left_name = conjunct.left.name  # type: ignore[union-attr]
            right_name = conjunct.right.name  # type: ignore[union-attr]
            if left_name in left_set and right_name in right_set:
                equi.append((left_name, right_name))
                continue
            if right_name in left_set and left_name in right_set:
                equi.append((right_name, left_name))
                continue
        residual.append(conjunct)
    return equi, residual


def evaluate_plan(
    plan: Operator,
    doc_table: Table,
    timeout_seconds: Optional[float] = None,
    compiled: bool = True,
    parameters: Optional[Mapping[str, object]] = None,
    columnar: Optional[bool] = None,
) -> Table:
    """Convenience wrapper: evaluate ``plan`` against ``doc_table``."""
    return PlanInterpreter(
        doc_table,
        timeout_seconds=timeout_seconds,
        compiled=compiled,
        parameters=parameters,
        columnar=columnar,
    ).evaluate(plan)

"""Reference interpreter for table algebra plans.

The interpreter evaluates a plan DAG bottom-up, **materialising every
operator's result** — including each δ and ϱ — just like the staged
execution the paper observes when DB2 evaluates the stacked common table
expression translation ("numerous SORT primitives followed by temporary
table scans").  It therefore doubles as

* the executable semantics of the algebra (tests compare the rewritten
  plan's results against it), and
* the *stacked plan* configuration of the Table IX experiment.

Shared sub-plans are evaluated once (memoised by node identity), matching
the behaviour of a common table expression.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import ExecutionError, QueryTimeoutError
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import ColumnRef, Comparison, Predicate
from repro.algebra.table import Table


class PlanInterpreter:
    """Evaluate plan DAGs against a ``doc`` table.

    Parameters
    ----------
    doc_table:
        The XML infoset encoding as a :class:`~repro.algebra.table.Table`
        with the ``pre|size|level|kind|name|value|data`` schema.
    timeout_seconds:
        Optional execution budget; exceeding it raises
        :class:`~repro.errors.QueryTimeoutError` (the paper's "DNF").
    """

    def __init__(self, doc_table: Table, timeout_seconds: Optional[float] = None):
        self.doc_table = doc_table
        self.timeout_seconds = timeout_seconds
        self._deadline: Optional[float] = None
        self._memo: dict[int, Table] = {}
        #: Number of operator evaluations performed (for plan-shape metrics).
        self.operators_evaluated = 0
        #: Total number of intermediate rows materialised.
        self.rows_materialised = 0

    # -- public API -------------------------------------------------------------

    def evaluate(self, plan: Operator) -> Table:
        """Evaluate ``plan`` and return its result table."""
        self._memo = {}
        self.operators_evaluated = 0
        self.rows_materialised = 0
        if self.timeout_seconds is not None:
            self._deadline = time.perf_counter() + self.timeout_seconds
        else:
            self._deadline = None
        return self._evaluate(plan)

    # -- evaluation -------------------------------------------------------------

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            elapsed = self.timeout_seconds + (time.perf_counter() - self._deadline)
            raise QueryTimeoutError(self.timeout_seconds or 0.0, elapsed)

    def _evaluate(self, node: Operator) -> Table:
        if id(node) in self._memo:
            return self._memo[id(node)]
        self._check_deadline()
        result = self._dispatch(node)
        self.operators_evaluated += 1
        self.rows_materialised += len(result)
        self._memo[id(node)] = result
        return result

    def _dispatch(self, node: Operator) -> Table:
        if isinstance(node, DocTable):
            return self.doc_table
        if isinstance(node, LiteralTable):
            return Table(node.columns, node.rows)
        if isinstance(node, Serialize):
            return self._evaluate(node.child)
        if isinstance(node, Project):
            return self._evaluate(node.child).project(node.items)
        if isinstance(node, Select):
            table = self._evaluate(node.child)
            return table.select(node.predicate.evaluate)
        if isinstance(node, Distinct):
            return self._evaluate(node.child).distinct()
        if isinstance(node, Attach):
            return self._evaluate(node.child).attach(node.column, node.value)
        if isinstance(node, RowId):
            return self._evaluate(node.child).attach_row_ids(node.column)
        if isinstance(node, RowRank):
            return self._evaluate(node.child).attach_rank(node.column, node.order_by)
        if isinstance(node, Cross):
            return self._evaluate(node.left).cross(self._evaluate(node.right))
        if isinstance(node, Join):
            return self._join(node)
        raise ExecutionError(f"cannot evaluate operator {type(node).__name__}")

    # -- join evaluation ----------------------------------------------------------

    def _join(self, node: Join) -> Table:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        equi, residual = _split_equijoin_conjuncts(node.predicate, left.columns, right.columns)
        output_columns = left.columns + right.columns
        rows: list[tuple] = []
        if equi:
            left_keys = [left.column_index(name) for name, _ in equi]
            right_keys = [right.column_index(name) for _, name in equi]
            buckets: dict[tuple, list[tuple]] = {}
            for row in right.rows:
                key = tuple(row[index] for index in right_keys)
                buckets.setdefault(key, []).append(row)
            for left_row in left.rows:
                self._check_deadline()
                key = tuple(left_row[index] for index in left_keys)
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if self._residual_holds(residual, output_columns, combined):
                        rows.append(combined)
        else:
            for left_row in left.rows:
                self._check_deadline()
                for right_row in right.rows:
                    combined = left_row + right_row
                    if node.predicate.evaluate(dict(zip(output_columns, combined))):
                        rows.append(combined)
        return Table(output_columns, rows)

    @staticmethod
    def _residual_holds(
        residual: list[Comparison], columns: tuple[str, ...], combined: tuple
    ) -> bool:
        if not residual:
            return True
        row = dict(zip(columns, combined))
        return all(conjunct.evaluate(row) for conjunct in residual)


def _split_equijoin_conjuncts(
    predicate: Predicate, left_columns: tuple[str, ...], right_columns: tuple[str, ...]
) -> tuple[list[tuple[str, str]], list[Comparison]]:
    """Split a join predicate into hashable ``left = right`` pairs and the rest."""
    left_set = set(left_columns)
    right_set = set(right_columns)
    equi: list[tuple[str, str]] = []
    residual: list[Comparison] = []
    for conjunct in predicate.conjuncts:
        if conjunct.is_column_equality():
            left_name = conjunct.left.name  # type: ignore[union-attr]
            right_name = conjunct.right.name  # type: ignore[union-attr]
            if left_name in left_set and right_name in right_set:
                equi.append((left_name, right_name))
                continue
            if right_name in left_set and left_name in right_set:
                equi.append((right_name, left_name))
                continue
        residual.append(conjunct)
    return equi, residual


def evaluate_plan(
    plan: Operator, doc_table: Table, timeout_seconds: Optional[float] = None
) -> Table:
    """Convenience wrapper: evaluate ``plan`` against ``doc_table``."""
    return PlanInterpreter(doc_table, timeout_seconds=timeout_seconds).evaluate(plan)

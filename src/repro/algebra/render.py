"""Plan rendering: indented text trees and Graphviz DOT.

The text renderer is what the plan-shape experiments (Fig. 4 vs. Fig. 7) and
the examples print; the DOT renderer is a convenience for visual inspection
of the DAGs.  Shared sub-plans are printed once and referenced afterwards,
so the output reflects the DAG (not an exponentially unfolded tree).
"""

from __future__ import annotations

from repro.algebra.dag import operator_histogram, parents_map
from repro.algebra.operators import Operator


def render_plan(root: Operator, max_label_width: int = 80) -> str:
    """Render the plan DAG as an indented text tree.

    Nodes with several parents get a ``[*n]`` reference label on their first
    occurrence and are afterwards printed as ``-> [*n]`` back references.
    """
    parents = parents_map(root)
    shared_labels: dict[int, str] = {}
    next_shared = [1]
    lines: list[str] = []
    printed: set[int] = set()

    def shared_label(node: Operator) -> str:
        if id(node) not in shared_labels:
            shared_labels[id(node)] = f"*{next_shared[0]}"
            next_shared[0] += 1
        return shared_labels[id(node)]

    def walk(node: Operator, depth: int) -> None:
        indent = "  " * depth
        label = node.label()
        if len(label) > max_label_width:
            label = label[: max_label_width - 1] + "…"
        is_shared = len(parents[id(node)]) > 1
        if is_shared and id(node) in printed:
            lines.append(f"{indent}-> [{shared_labels[id(node)]}]")
            return
        marker = f" [{shared_label(node)}]" if is_shared else ""
        lines.append(f"{indent}{label}{marker}")
        printed.add(id(node))
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def render_dot(root: Operator, graph_name: str = "plan") -> str:
    """Render the plan DAG in Graphviz DOT syntax."""
    node_ids: dict[int, str] = {}
    lines = [f"digraph {graph_name} {{", "  node [shape=box, fontname=monospace];"]

    def node_id(node: Operator) -> str:
        if id(node) not in node_ids:
            node_ids[id(node)] = f"n{len(node_ids)}"
        return node_ids[id(node)]

    seen: set[int] = set()

    def walk(node: Operator) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        label = node.label().replace('"', '\\"')
        lines.append(f'  {node_id(node)} [label="{label}"];')
        for child in node.children:
            walk(child)
            lines.append(f"  {node_id(node)} -> {node_id(child)};")

    walk(root)
    lines.append("}")
    return "\n".join(lines)


def plan_summary(root: Operator) -> str:
    """A one-paragraph summary of the plan's operator inventory.

    Used by the Fig. 4 / Fig. 7 experiment to contrast the stacked and the
    isolated plan shapes (how many joins, how many blocking δ/ϱ operators).
    """
    histogram = operator_histogram(root)
    total = sum(histogram.values())
    parts = [f"{count}×{name}" for name, count in sorted(histogram.items())]
    return f"{total} operators ({', '.join(parts)})"

"""Traversal and reconstruction utilities for plan DAGs.

Plan operators are immutable and shared, so "modifying" a plan means
rebuilding the spine from the changed node up to the root while preserving
sharing everywhere else.  The helpers here implement exactly that, plus the
reachability relation ``⇛`` the rewrite rules of Fig. 5 consult.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Optional, Type

from repro.algebra.operators import Operator


def iter_nodes(root: Operator) -> Iterator[Operator]:
    """Yield every distinct node of the DAG rooted at ``root`` (post-order).

    Implemented iteratively so that very deep (pathological) plans cannot hit
    Python's recursion limit.
    """
    seen: set[int] = set()
    stack: list[tuple[Operator, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in reversed(node.children):
            if id(child) not in seen:
                stack.append((child, False))


def topological_order(root: Operator) -> list[Operator]:
    """All distinct nodes, children before parents."""
    return list(iter_nodes(root))


def node_count(root: Operator) -> int:
    """Number of distinct operators in the plan."""
    return sum(1 for _ in iter_nodes(root))


def count_operators(root: Operator, operator_type: Type[Operator]) -> int:
    """Number of distinct operators of the given type in the plan."""
    return sum(1 for node in iter_nodes(root) if isinstance(node, operator_type))


def operator_histogram(root: Operator) -> dict[str, int]:
    """Histogram of operator class names — used by the plan-shape experiments."""
    histogram: dict[str, int] = {}
    for node in iter_nodes(root):
        name = type(node).__name__
        histogram[name] = histogram.get(name, 0) + 1
    return histogram


def parents_map(root: Operator) -> dict[int, list[Operator]]:
    """Map ``id(node) -> list of parent nodes`` for the DAG rooted at ``root``."""
    parents: dict[int, list[Operator]] = {id(node): [] for node in iter_nodes(root)}
    for node in iter_nodes(root):
        for child in node.children:
            parents[id(child)].append(node)
    return parents


def reaches(source: Operator, target: Operator) -> bool:
    """The reachability relation ``source ⇛ target`` (true also when identical)."""
    if source is target:
        return True
    return any(target is node for node in iter_nodes(source))


def substitute(root: Operator, replacements: Mapping[int, Operator]) -> Operator:
    """Rebuild the DAG with ``replacements`` (keyed by ``id`` of the old node).

    Sharing is preserved: every untouched node is reused as-is, and every
    reference to a replaced node sees the same replacement object —
    *including* references buried inside other replacement subtrees.  A
    replacement may legitimately contain the very node it replaces (rules
    such as (8) wrap the matched operator); that self-reference is kept
    verbatim instead of being replaced again, which is what the ``banned``
    set tracks.

    Rewriting inside replacements matters for multi-node substitution maps
    (the key-join collapse returns one): a replacement that still references
    the *old* version of another replaced node must see its new version, or
    the plan ends up with two divergent copies of a shared operator — which
    silently breaks every rewrite premise that relies on shared anchors
    (``left_origin[0] is right_origin[0]``).
    """
    #: ``reach(node)`` = the replacement keys reachable from ``node``.  Memo
    #: keys below pair a node id with the *relevant* slice of the banned set
    #: (``banned & reach``), so a node rebuilt in unrelated contexts still
    #: resolves to one single object.
    reach_memo: dict[int, frozenset[int]] = {}

    def reach(node: Operator) -> frozenset[int]:
        cached = reach_memo.get(id(node))
        if cached is not None:
            return cached
        acc: frozenset[int] = frozenset()
        for child in node.children:
            acc |= reach(child)
        if id(node) in replacements:
            acc |= frozenset((id(node),))
        reach_memo[id(node)] = acc
        return acc

    memo: dict[tuple[int, frozenset[int]], Operator] = {}

    def rebuild(node: Operator, banned: frozenset[int]) -> Operator:
        effective = banned & reach(node)
        key = (id(node), effective)
        if key in memo:
            return memo[key]
        if id(node) in replacements and id(node) not in banned:
            result = rebuild(replacements[id(node)], banned | frozenset((id(node),)))
        else:
            new_children = [rebuild(child, effective) for child in node.children]
            if all(new is old for new, old in zip(new_children, node.children)):
                result = node
            else:
                result = node.with_children(new_children)
        memo[key] = result
        return result

    return rebuild(root, frozenset())


def replace_node(root: Operator, old: Operator, new: Operator) -> Operator:
    """Replace one node of the DAG (all references to it) and return the new root."""
    return substitute(root, {id(old): new})


def find_nodes(root: Operator, match: Callable[[Operator], bool]) -> list[Operator]:
    """All distinct nodes satisfying ``match``, in post-order."""
    return [node for node in iter_nodes(root) if match(node)]


def find_first(root: Operator, match: Callable[[Operator], bool]) -> Optional[Operator]:
    """The first node (post-order) satisfying ``match``, or ``None``."""
    for node in iter_nodes(root):
        if match(node):
            return node
    return None


def shared_nodes(root: Operator) -> list[Operator]:
    """All nodes referenced by more than one parent (the DAG's sharing points)."""
    parents = parents_map(root)
    return [node for node in iter_nodes(root) if len(parents[id(node)]) > 1]

"""Traversal and reconstruction utilities for plan DAGs.

Plan operators are immutable and shared, so "modifying" a plan means
rebuilding the spine from the changed node up to the root while preserving
sharing everywhere else.  The helpers here implement exactly that, plus the
reachability relation ``⇛`` the rewrite rules of Fig. 5 consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Type

from repro.algebra.operators import Operator


def iter_nodes(root: Operator) -> Iterator[Operator]:
    """Yield every distinct node of the DAG rooted at ``root`` (post-order).

    Implemented iteratively so that very deep (pathological) plans cannot hit
    Python's recursion limit.
    """
    seen: set[int] = set()
    stack: list[tuple[Operator, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in reversed(node.children):
            if id(child) not in seen:
                stack.append((child, False))


def topological_order(root: Operator) -> list[Operator]:
    """All distinct nodes, children before parents."""
    return list(iter_nodes(root))


def node_count(root: Operator) -> int:
    """Number of distinct operators in the plan."""
    return sum(1 for _ in iter_nodes(root))


def count_operators(root: Operator, operator_type: Type[Operator]) -> int:
    """Number of distinct operators of the given type in the plan."""
    return sum(1 for node in iter_nodes(root) if isinstance(node, operator_type))


def operator_histogram(root: Operator) -> dict[str, int]:
    """Histogram of operator class names — used by the plan-shape experiments."""
    histogram: dict[str, int] = {}
    for node in iter_nodes(root):
        name = type(node).__name__
        histogram[name] = histogram.get(name, 0) + 1
    return histogram


def parents_map(root: Operator) -> dict[int, list[Operator]]:
    """Map ``id(node) -> list of parent nodes`` for the DAG rooted at ``root``."""
    parents: dict[int, list[Operator]] = {id(node): [] for node in iter_nodes(root)}
    for node in iter_nodes(root):
        for child in node.children:
            parents[id(child)].append(node)
    return parents


def reaches(source: Operator, target: Operator) -> bool:
    """The reachability relation ``source ⇛ target`` (true also when identical)."""
    if source is target:
        return True
    return any(target is node for node in iter_nodes(source))


@dataclass
class Pushout:
    """The result of gluing replacement subplans into a plan DAG.

    Named after the double-pushout reading of a rewrite step (cf. chyp /
    ReGraph): the *preserved part* is everything the substitution map does
    not mention, and it embeds into both the old plan and the new one.
    ``root`` is the rebuilt plan; ``glued`` maps ``id(old node)`` to the
    object that took its place at the top-level gluing context — the
    replacement identities a provenance trace records, and the seed of the
    rewrite driver's dirty-node worklist.

    ``rebuilt`` maps ``id(old node) -> new node`` for every *mechanical*
    rebuild: an ancestor of a replacement that was re-created by
    ``with_children`` with all of its own fields intact.  Unlike ``glued``
    entries (whose shape the replacement dictates), a rebuilt node is
    field-for-field the old operator over new inputs — the equivalence the
    rewrite driver's cross-step memos use to migrate property entries
    across a step instead of discarding the whole ancestor cone.  A node
    rebuilt into *different* objects under different gluing contexts is
    omitted (no single counterpart exists).
    """

    root: Operator
    glued: dict[int, Operator] = field(default_factory=dict)
    rebuilt: dict[int, Operator] = field(default_factory=dict)


def pushout(
    root: Operator,
    replacements: Mapping[int, Operator],
    parents: Optional[Mapping[int, list[Operator]]] = None,
    order: Optional[list[Operator]] = None,
) -> Pushout:
    """Rebuild the DAG with ``replacements`` (keyed by ``id`` of the old node).

    Sharing is preserved *by construction*: the preserved part — every node
    the map does not mention — is reused as-is (object identity), and every
    reference to a replaced node resolves to one single replacement object,
    *including* references buried inside other replacement subtrees.  A
    replacement may legitimately contain the very node it replaces (rules
    such as (8) wrap the matched operator); that occurrence belongs to the
    preserved part — the ``p → lhs`` / ``p → rhs`` inclusions of a pushout
    complement — and is kept verbatim instead of being replaced again, which
    is what the ``banned`` set tracks.

    Rewriting inside replacements matters for multi-node substitution maps
    (the key-join collapse returns one): a replacement that still references
    the *old* version of another replaced node must see its new version, or
    the plan ends up with two divergent copies of a shared operator — which
    silently breaks every rewrite premise that relies on shared anchors
    (``left_origin[0] is right_origin[0]``).

    ``parents`` is an optional ``id(node) -> [parent, ...]`` index of the
    plan.  A caller that maintains one (the worklist rewrite driver builds
    it once per step anyway) enables the single-replacement fast path: the
    rebuild cone — the ancestors of the one replaced node — is found by
    walking the index upward, so the substitution costs O(cone) instead of
    a full-plan reachability pass.  ``order`` (the plan's topological
    order, children first) additionally turns the cone rebuild into a flat
    bottom-up loop.  The resulting graph is identical to the generic
    path's.
    """
    if parents is not None and len(replacements) == 1:
        ((target_id, replacement),) = tuple(replacements.items())
        return _pushout_single(root, target_id, replacement, parents, order)
    #: ``reach(node)`` = the replacement keys reachable from ``node``.  Memo
    #: keys below pair a node id with the *relevant* slice of the banned set
    #: (``banned & reach``), so a node rebuilt in unrelated contexts still
    #: resolves to one single object.
    reach_memo: dict[int, frozenset[int]] = {}

    def reach(node: Operator) -> frozenset[int]:
        cached = reach_memo.get(id(node))
        if cached is not None:
            return cached
        acc: frozenset[int] = frozenset()
        for child in node.children:
            acc |= reach(child)
        if id(node) in replacements:
            acc |= frozenset((id(node),))
        reach_memo[id(node)] = acc
        return acc

    memo: dict[tuple[int, frozenset[int]], Operator] = {}
    glued: dict[int, Operator] = {}
    rebuilt: dict[int, Operator] = {}
    ambiguous: set[int] = set()

    def rebuild(node: Operator, banned: frozenset[int]) -> Operator:
        effective = banned & reach(node)
        key = (id(node), effective)
        if key in memo:
            return memo[key]
        if id(node) in replacements and id(node) not in banned:
            result = rebuild(replacements[id(node)], banned | frozenset((id(node),)))
            # Record the top-level gluing only (first context reaching the
            # node): deeper banned contexts rebuild preserved occurrences.
            glued.setdefault(id(node), result)
        else:
            new_children = [rebuild(child, effective) for child in node.children]
            if all(new is old for new, old in zip(new_children, node.children)):
                result = node
            else:
                result = node.with_children(new_children)
                previous = rebuilt.setdefault(id(node), result)
                if previous is not result:
                    # Rebuilt differently under two gluing contexts: there
                    # is no single counterpart to migrate memo entries to.
                    ambiguous.add(id(node))
        memo[key] = result
        return result

    new_root = rebuild(root, frozenset())
    for node_id in ambiguous:
        del rebuilt[node_id]
    return Pushout(root=new_root, glued=glued, rebuilt=rebuilt)


def _pushout_single(
    root: Operator,
    target_id: int,
    replacement: Operator,
    parents: Mapping[int, list[Operator]],
    order: Optional[list[Operator]] = None,
) -> Pushout:
    """The parents-indexed fast path of :func:`pushout` (one replacement).

    Only the ancestors of the target can change; everything else — the
    target's own subtree, the replacement's internals (where a preserved
    occurrence of the target legitimately lives, cf. the banned set of the
    generic path), and all unrelated nodes — is spliced in by identity.
    """
    cone: set[int] = set()
    stack: list[int] = [target_id]
    while stack:
        for parent in parents.get(stack.pop(), ()):
            parent_id = id(parent)
            if parent_id not in cone:
                cone.add(parent_id)
                stack.append(parent_id)
    mapped: dict[int, Operator] = {target_id: replacement}
    rebuilt: dict[int, Operator] = {}

    if order is not None:
        # Flat bottom-up rebuild: ``order`` lists children before parents,
        # so every cone node's children are already mapped when reached.
        for node in order:
            if id(node) not in cone:
                continue
            new_children = [mapped.get(id(child), child) for child in node.children]
            if all(new is old for new, old in zip(new_children, node.children)):
                result = node
            else:
                result = node.with_children(new_children)
                rebuilt[id(node)] = result
            mapped[id(node)] = result
        return Pushout(
            root=mapped.get(id(root), root),
            glued={target_id: replacement},
            rebuilt=rebuilt,
        )

    def rebuild_cone(node: Operator) -> Operator:
        known = mapped.get(id(node))
        if known is not None:
            return known
        if id(node) not in cone:
            return node
        new_children = [rebuild_cone(child) for child in node.children]
        if all(new is old for new, old in zip(new_children, node.children)):
            result = node
        else:
            result = node.with_children(new_children)
            rebuilt[id(node)] = result
        mapped[id(node)] = result
        return result

    return Pushout(
        root=rebuild_cone(root), glued={target_id: replacement}, rebuilt=rebuilt
    )


def substitute(root: Operator, replacements: Mapping[int, Operator]) -> Operator:
    """Rebuild the DAG with ``replacements`` — see :func:`pushout`."""
    return pushout(root, replacements).root


def replace_node(root: Operator, old: Operator, new: Operator) -> Operator:
    """Replace one node of the DAG (all references to it) and return the new root."""
    return substitute(root, {id(old): new})


def find_nodes(root: Operator, match: Callable[[Operator], bool]) -> list[Operator]:
    """All distinct nodes satisfying ``match``, in post-order."""
    return [node for node in iter_nodes(root) if match(node)]


def find_first(root: Operator, match: Callable[[Operator], bool]) -> Optional[Operator]:
    """The first node (post-order) satisfying ``match``, or ``None``."""
    for node in iter_nodes(root):
        if match(node):
            return node
    return None


def shared_nodes(root: Operator) -> list[Operator]:
    """All nodes referenced by more than one parent (the DAG's sharing points)."""
    parents = parents_map(root)
    return [node for node in iter_nodes(root) if len(parents[id(node)]) > 1]

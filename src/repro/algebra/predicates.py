"""Predicate terms used by selections and joins of the table algebra.

The paper's predicates are conjunctions of comparisons whose sides are
columns, constants, or sums of columns and constants (``pre° + size°``,
``level° + 1``).  This module models exactly that vocabulary:

* :class:`ColumnRef` — a column reference,
* :class:`Literal` — a constant,
* :class:`Sum` — a sum of terms (used for ``pre + size`` and ``level + 1``),
* :class:`Comparison` — ``term op term`` with ``op ∈ {=, !=, <, <=, >, >=}``,
* :class:`Predicate` — a conjunction of comparisons.

All predicate objects are immutable and hashable so they can be shared
between plan nodes and compared structurally in tests.  The auxiliary
function ``cols(·)`` of the paper corresponds to the ``columns()`` methods.
"""

from __future__ import annotations

import operator as _operator_module
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence, Union

from repro.errors import AlgebraError

_RANGE_RELATIONS = {
    "<": _operator_module.lt,
    "<=": _operator_module.le,
    ">": _operator_module.gt,
    ">=": _operator_module.ge,
}

#: Comparison operators admitted by the algebra (GeneralComp of Fig. 1).
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_FLIPPED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column of the input table(s)."""

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def rename(self, mapping: Mapping[str, str]) -> "ColumnRef":
        return ColumnRef(mapping.get(self.name, self.name))

    def evaluate(self, row: Mapping[str, object]) -> object:
        try:
            return row[self.name]
        except KeyError:
            raise AlgebraError(f"unknown column {self.name!r} in predicate evaluation") from None

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal:
    """A constant value (number or string)."""

    value: object

    def columns(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Literal":
        return self

    def evaluate(self, row: Mapping[str, object]) -> object:
        return self.value

    def render(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Parameter:
    """A late-bound query parameter slot (an external variable).

    Parameter terms are placeholders for values supplied at execution time:
    compiled plans carry them through predicates, and :meth:`Predicate.bind`
    turns them into :class:`Literal` terms once bindings are known.  They
    evaluate like the bound literal would; evaluating or compiling an
    *unbound* parameter is an error.
    """

    name: str

    def columns(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Parameter":
        return self

    def evaluate(self, row: Mapping[str, object]) -> object:
        raise AlgebraError(
            f"parameter ${self.name} is unbound; bind() the predicate "
            "(or pass parameters to the interpreter) before evaluation"
        )

    def render(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Sum:
    """A sum of terms, e.g. ``pre + size`` or ``level + 1``."""

    terms: tuple[Union[ColumnRef, Literal], ...]

    def __init__(self, *terms: Union[ColumnRef, Literal]):
        if len(terms) < 2:
            raise AlgebraError("Sum needs at least two terms")
        object.__setattr__(self, "terms", tuple(terms))

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for term in self.terms:
            result |= term.columns()
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Sum":
        return Sum(*(term.rename(mapping) for term in self.terms))

    def evaluate(self, row: Mapping[str, object]) -> object:
        total = 0
        for term in self.terms:
            value = term.evaluate(row)
            if value is None:
                return None
            total += value  # type: ignore[operator]
        return total

    def render(self) -> str:
        return " + ".join(term.render() for term in self.terms)


Term = Union[ColumnRef, Literal, Sum, Parameter]


def term_parameters(term: Term) -> frozenset[str]:
    """The names of all :class:`Parameter` slots occurring in ``term``."""
    if isinstance(term, Parameter):
        return frozenset((term.name,))
    if isinstance(term, Sum):
        result: frozenset[str] = frozenset()
        for part in term.terms:
            result |= term_parameters(part)
        return result
    return frozenset()


def bind_term(term: Term, values: Mapping[str, object]) -> Term:
    """Replace :class:`Parameter` slots in ``term`` by :class:`Literal` values."""
    if isinstance(term, Parameter):
        try:
            return Literal(values[term.name])
        except KeyError:
            raise AlgebraError(f"no binding supplied for parameter ${term.name}") from None
    if isinstance(term, Sum) and term_parameters(term):
        return Sum(*(bind_term(part, values) for part in term.terms))
    return term


def _compare(left: object, op: str, right: object) -> bool:
    """Three-valued-ish comparison: any ``None`` operand makes the test fail."""
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    # Mixed numeric / string comparisons fail rather than raise, mirroring
    # SQL's type checking at a level adequate for the doc encoding.
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return False
    raise AlgebraError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class Comparison:
    """A single comparison ``left op right``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise AlgebraError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(self.left.rename(mapping), self.op, self.right.rename(mapping))

    def flipped(self) -> "Comparison":
        """Return the equivalent comparison with sides exchanged."""
        return Comparison(self.right, _FLIPPED_OP[self.op], self.left)

    def parameters(self) -> frozenset[str]:
        """Names of the unbound :class:`Parameter` slots in this comparison."""
        return term_parameters(self.left) | term_parameters(self.right)

    def bind(self, values: Mapping[str, object]) -> "Comparison":
        """Resolve parameter slots against ``values`` (identity if none occur)."""
        if not self.parameters():
            return self
        return Comparison(bind_term(self.left, values), self.op, bind_term(self.right, values))

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return _compare(self.left.evaluate(row), self.op, self.right.evaluate(row))

    def is_column_equality(self) -> bool:
        """True for ``a = b`` with both sides plain columns (a key-join conjunct)."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


@dataclass(frozen=True)
class Predicate:
    """A conjunction of comparisons (possibly a single one)."""

    conjuncts: tuple[Comparison, ...]

    def __init__(self, conjuncts: Iterable[Comparison]):
        conjuncts = tuple(conjuncts)
        if not conjuncts:
            raise AlgebraError("a predicate needs at least one conjunct")
        object.__setattr__(self, "conjuncts", conjuncts)

    @staticmethod
    def of(*conjuncts: Comparison) -> "Predicate":
        return Predicate(conjuncts)

    @staticmethod
    def equality(left: str, right: str) -> "Predicate":
        """Convenience constructor for a single-column equi-join predicate."""
        return Predicate.of(Comparison(ColumnRef(left), "=", ColumnRef(right)))

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for conjunct in self.conjuncts:
            result |= conjunct.columns()
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        return Predicate(conjunct.rename(mapping) for conjunct in self.conjuncts)

    def conjoin(self, other: "Predicate") -> "Predicate":
        return Predicate(self.conjuncts + other.conjuncts)

    def parameters(self) -> frozenset[str]:
        """Names of all unbound :class:`Parameter` slots in the conjunction."""
        result: frozenset[str] = frozenset()
        for conjunct in self.conjuncts:
            result |= conjunct.parameters()
        return result

    def bind(self, values: Mapping[str, object]) -> "Predicate":
        """Resolve parameter slots against ``values`` (identity if none occur)."""
        if not self.parameters():
            return self
        return Predicate(conjunct.bind(values) for conjunct in self.conjuncts)

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return all(conjunct.evaluate(row) for conjunct in self.conjuncts)

    def column_equalities(self) -> list[tuple[str, str]]:
        """All ``a = b`` column/column equality conjuncts as ``(a, b)`` pairs."""
        pairs = []
        for conjunct in self.conjuncts:
            if conjunct.is_column_equality():
                pairs.append((conjunct.left.name, conjunct.right.name))  # type: ignore[union-attr]
        return pairs

    def is_single_column_equality(self) -> bool:
        """True when the predicate is exactly one ``a = b`` column equality."""
        return len(self.conjuncts) == 1 and self.conjuncts[0].is_column_equality()

    def render(self) -> str:
        return " ∧ ".join(conjunct.render() for conjunct in self.conjuncts)


# ---------------------------------------------------------------------------
# Predicate compilation (the vectorized execution core's hot path)
# ---------------------------------------------------------------------------
#
# ``Term.evaluate`` / ``Predicate.evaluate`` take ``row`` *dictionaries* —
# convenient for the reference semantics, ruinous on the hot path where every
# operator would build one dict per row.  The ``compile_*`` functions below
# translate a predicate tree *once* per operator into closures over positional
# row tuples: column references become ``row[i]`` lookups resolved at compile
# time against the input schema.  The compiled closures implement exactly the
# reference semantics of :func:`_compare` (``None`` operands and mixed-type
# range comparisons fail instead of raising).


def compile_term(term: Term, index_of: Mapping[str, int]) -> "Callable[[Sequence[object]], object]":
    """Compile ``term`` into a closure over a positional row tuple."""
    if isinstance(term, ColumnRef):
        try:
            position = index_of[term.name]
        except KeyError:
            raise AlgebraError(
                f"unknown column {term.name!r} in predicate compilation"
            ) from None
        return lambda row: row[position]
    if isinstance(term, Literal):
        value = term.value
        return lambda row: value
    if isinstance(term, Sum):
        parts = tuple(compile_term(part, index_of) for part in term.terms)

        def _sum(row: Sequence[object]) -> object:
            total = 0
            for part in parts:
                value = part(row)
                if value is None:
                    return None
                total += value  # type: ignore[operator]
            return total

        return _sum
    if isinstance(term, Parameter):
        raise AlgebraError(
            f"parameter ${term.name} must be bound before predicate compilation; "
            "call Predicate.bind() or pass parameters to the interpreter"
        )
    raise AlgebraError(f"cannot compile term {term!r}")


def compile_comparison(
    comparison: Comparison, index_of: Mapping[str, int]
) -> "Callable[[Sequence[object]], bool]":
    """Compile one comparison into a positional-row boolean closure."""
    left = compile_term(comparison.left, index_of)
    right = compile_term(comparison.right, index_of)
    op = comparison.op
    if op == "=":
        def _eq(row: Sequence[object]) -> bool:
            lv = left(row)
            rv = right(row)
            return lv is not None and rv is not None and lv == rv

        return _eq
    if op == "!=":
        def _ne(row: Sequence[object]) -> bool:
            lv = left(row)
            rv = right(row)
            return lv is not None and rv is not None and lv != rv

        return _ne
    if op not in COMPARISON_OPS:
        raise AlgebraError(f"unknown comparison operator {op!r}")
    relation = _RANGE_RELATIONS[op]

    def _range(row: Sequence[object]) -> bool:
        lv = left(row)
        rv = right(row)
        if lv is None or rv is None:
            return False
        try:
            return relation(lv, rv)
        except TypeError:
            return False

    return _range


def compile_predicate(
    predicate: Predicate, columns: Sequence[str]
) -> "Callable[[Sequence[object]], bool]":
    """Compile a conjunction into one closure over positional row tuples."""
    return compile_comparisons(predicate.conjuncts, columns)


def compile_comparisons(
    comparisons: Iterable[Comparison], columns: Sequence[str]
) -> "Callable[[Sequence[object]], bool]":
    """Compile a list of residual conjuncts into one positional closure."""
    index_of = {name: position for position, name in enumerate(columns)}
    compiled = tuple(compile_comparison(conjunct, index_of) for conjunct in comparisons)
    if len(compiled) == 1:
        return compiled[0]

    def _all(row: Sequence[object]) -> bool:
        for conjunct in compiled:
            if not conjunct(row):
                return False
        return True

    return _all


# ---------------------------------------------------------------------------
# Columnar (mask) compilation
# ---------------------------------------------------------------------------
#
# The columnar twins of ``compile_term`` / ``compile_comparisons``: a term
# compiles into a closure over a :class:`~repro.algebra.columnar.ColumnarTable`
# returning a whole :class:`~repro.algebra.columnar.Column` (or a scalar), and
# a conjunction compiles into a closure returning one boolean *mask* over all
# rows.  The mask kernels in :mod:`repro.algebra.columnar` implement exactly
# the :func:`_compare` reference semantics, vectorized where provably safe
# and element-by-element otherwise, so masks agree bit-for-bit with the
# compiled row closures above.


def compile_term_columnar(term: Term, index_of: Mapping[str, int]):
    """Compile ``term`` into a closure over a :class:`ColumnarTable`."""
    from repro.algebra import columnar as _columnar

    if isinstance(term, ColumnRef):
        try:
            position = index_of[term.name]
        except KeyError:
            raise AlgebraError(
                f"unknown column {term.name!r} in predicate compilation"
            ) from None
        return lambda table: table.cols[position]
    if isinstance(term, Literal):
        value = term.value
        return lambda table: value
    if isinstance(term, Sum):
        parts = tuple(compile_term_columnar(part, index_of) for part in term.terms)
        return lambda table: _columnar.sum_columns(
            [part(table) for part in parts], table.length
        )
    if isinstance(term, Parameter):
        raise AlgebraError(
            f"parameter ${term.name} must be bound before predicate compilation; "
            "call Predicate.bind() or pass parameters to the interpreter"
        )
    raise AlgebraError(f"cannot compile term {term!r}")


def compile_comparisons_mask(comparisons: Iterable[Comparison], columns: Sequence[str]):
    """Compile a conjunction into one mask closure over a :class:`ColumnarTable`."""
    from repro.algebra import columnar as _columnar

    index_of = {name: position for position, name in enumerate(columns)}
    compiled = tuple(
        (
            compile_term_columnar(conjunct.left, index_of),
            conjunct.op,
            compile_term_columnar(conjunct.right, index_of),
        )
        for conjunct in comparisons
    )

    def _mask(table):
        mask = None
        for left, op, right in compiled:
            conjunct_mask = _columnar.compare_mask(left(table), op, right(table), table.length)
            mask = conjunct_mask if mask is None else _columnar.mask_and(mask, conjunct_mask)
            if not _columnar.mask_any(mask):
                break
        return mask

    return _mask


def compile_predicate_mask(predicate: Predicate, columns: Sequence[str]):
    """Columnar twin of :func:`compile_predicate`: one boolean mask per call."""
    return compile_comparisons_mask(predicate.conjuncts, columns)


def column(name: str) -> ColumnRef:
    """Shorthand constructor used pervasively by the compiler."""
    return ColumnRef(name)


def const(value: object) -> Literal:
    """Shorthand constructor for literal terms."""
    return Literal(value)

"""A minimal in-memory table: named columns over a list of tuple rows.

Used by the reference plan interpreter (:mod:`repro.algebra.interpreter`)
and as the exchange format between the algebra layer and the relational
back-end.  The class deliberately models *tables* (duplicate rows allowed,
row order meaningful) rather than relations, matching Table I of the paper
("operators consume tables, not relations").
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import AlgebraError
from repro.algebra import columnar as _columnar


class Table:
    """An ordered, duplicate-preserving table with named columns."""

    __slots__ = ("columns", "rows", "_index_of", "_columnar")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[object]] = ()):
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise AlgebraError(f"duplicate column names in table schema {self.columns}")
        self._index_of = {name: index for index, name in enumerate(self.columns)}
        self._columnar = None
        self.rows: list[tuple] = []
        width = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise AlgebraError(
                    f"row arity {len(row)} does not match schema arity {width}: {row!r}"
                )
            self.rows.append(row)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_dicts(columns: Sequence[str], dicts: Iterable[Mapping[str, object]]) -> "Table":
        """Build a table from row dictionaries (missing keys become ``None``)."""
        columns = tuple(columns)
        return Table(columns, ([d.get(c) for c in columns] for d in dicts))

    @classmethod
    def unchecked(cls, columns: Sequence[str], rows: list[tuple]) -> "Table":
        """Adopt ``rows`` (a list of correctly-arity tuples) without validation.

        Hot-path constructor for operators that derive rows from an existing
        table's tuples — the per-row arity check of ``__init__`` would
        otherwise dominate selection/join cost.  The schema is still checked,
        and under ``__debug__`` the first row's arity is asserted so rows
        built against a different schema width fail here instead of deep
        inside a downstream operator.
        """
        table = cls.__new__(cls)
        table.columns = tuple(columns)
        if len(set(table.columns)) != len(table.columns):
            raise AlgebraError(f"duplicate column names in table schema {table.columns}")
        assert not rows or len(rows[0]) == len(table.columns), (
            f"unchecked row arity {len(rows[0])} does not match "
            f"schema arity {len(table.columns)}: {rows[0]!r}"
        )
        table._index_of = {name: index for index, name in enumerate(table.columns)}
        table._columnar = None
        table.rows = rows
        return table

    def with_rows(self, rows: Iterable[Sequence[object]]) -> "Table":
        """A new table with the same schema and the given rows."""
        return Table(self.columns, rows)

    # -- basic accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(columns={self.columns}, rows={len(self.rows)})"

    def column_index(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise AlgebraError(f"unknown column {name!r}; schema is {self.columns}") from None

    def columnar(self) -> "_columnar.ColumnarTable":
        """This table's columnar twin, memoised per instance.

        Tables are treated as immutable once built, so the conversion (one
        array per column) is paid at most once — the doc table's columns in
        particular are shared across every plan evaluated against it.
        """
        cached = self._columnar
        if cached is None or cached.vectorized != _columnar.numpy_active():
            cached = _columnar.ColumnarTable.from_table(self)
            self._columnar = cached
        return cached

    def column_values(self, name: str) -> list[object]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def row_dict(self, row: Sequence[object]) -> dict[str, object]:
        return dict(zip(self.columns, row))

    def iter_dicts(self) -> Iterator[dict[str, object]]:
        for row in self.rows:
            yield dict(zip(self.columns, row))

    # -- transformations used by the interpreter -------------------------------

    def project(self, items: Sequence[tuple[str, str]]) -> "Table":
        """Project/rename: ``items`` is a sequence of ``(new_name, old_name)``."""
        indices = [self.column_index(old) for _new, old in items]
        new_columns = [new for new, _old in items]
        return Table(new_columns, ([row[i] for i in indices] for row in self.rows))

    def select(self, keep: Callable[[Mapping[str, object]], bool]) -> "Table":
        return Table(self.columns, (row for row in self.rows if keep(self.row_dict(row))))

    def filter_rows(self, keep: Callable[[tuple], bool]) -> "Table":
        """Positional-row selection: ``keep`` sees the raw row tuple."""
        return Table.unchecked(self.columns, [row for row in self.rows if keep(row)])

    def distinct(self) -> "Table":
        seen: set[tuple] = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(self.columns, rows)

    def attach(self, name: str, value: object) -> "Table":
        if name in self._index_of:
            raise AlgebraError(f"attach: column {name!r} already exists")
        return Table(self.columns + (name,), (row + (value,) for row in self.rows))

    def attach_row_ids(self, name: str, start: int = 1) -> "Table":
        if name in self._index_of:
            raise AlgebraError(f"row id: column {name!r} already exists")
        return Table(
            self.columns + (name,),
            (row + (start + offset,) for offset, row in enumerate(self.rows)),
        )

    def attach_rank(
        self,
        name: str,
        order_by: Sequence[str],
        partition_by: Sequence[str] = (),
    ) -> "Table":
        """Attach ``RANK() OVER ([PARTITION BY ...] ORDER BY order_by)`` as ``name``.

        The rank restarts at 1 for every distinct combination of the
        partition columns; ties on the order key share a rank within their
        partition.
        """
        if name in self._index_of:
            raise AlgebraError(f"rank: column {name!r} already exists")
        indices = [self.column_index(column) for column in order_by]
        part_indices = [self.column_index(column) for column in partition_by]
        keys = [tuple(row[i] for i in indices) for row in self.rows]
        groups: dict[tuple, list[int]] = {}
        for position, row in enumerate(self.rows):
            groups.setdefault(tuple(row[i] for i in part_indices), []).append(position)
        ranks: dict[int, int] = {}
        for positions in groups.values():
            order = sorted(positions, key=lambda position: _sort_key(keys[position]))
            previous_key = None
            rank = 0
            for sorted_position, row_position in enumerate(order, start=1):
                key = keys[row_position]
                if key != previous_key:
                    rank = sorted_position
                    previous_key = key
                ranks[row_position] = rank
        return Table(
            self.columns + (name,),
            (row + (ranks[position],) for position, row in enumerate(self.rows)),
        )

    def sort_by(self, order_by: Sequence[str]) -> "Table":
        indices = [self.column_index(column) for column in order_by]
        rows = sorted(self.rows, key=lambda row: _sort_key(tuple(row[i] for i in indices)))
        return Table(self.columns, rows)

    def cross(self, other: "Table") -> "Table":
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise AlgebraError(f"cross product with overlapping columns {sorted(overlap)}")
        return Table(
            self.columns + other.columns,
            (left + right for left in self.rows for right in other.rows),
        )


# Total order over heterogeneous values (None < numbers < strings).  The
# canonical definition lives in the columnar module so the vectorized rank
# kernels and the row path provably share one ordering.
_sort_key = _columnar.sort_key

"""The table algebra of Table I and its reference interpreter.

The algebra is the compilation target of the loop-lifting XQuery compiler
and the object language of the join graph isolation rewriting.  It contains
exactly the operators of Table I of the paper:

===============================  =======================================
Operator                          Class
===============================  =======================================
serialization point (plan root)  :class:`~repro.algebra.operators.Serialize`
``π`` project / rename            :class:`~repro.algebra.operators.Project`
``σ`` select                      :class:`~repro.algebra.operators.Select`
``⋈`` join                        :class:`~repro.algebra.operators.Join`
``×`` Cartesian product           :class:`~repro.algebra.operators.Cross`
``δ`` duplicate elimination       :class:`~repro.algebra.operators.Distinct`
``@`` attach constant column      :class:`~repro.algebra.operators.Attach`
``#`` attach unique row id        :class:`~repro.algebra.operators.RowId`
``ϱ`` attach row rank             :class:`~repro.algebra.operators.RowRank`
``doc`` document encoding table   :class:`~repro.algebra.operators.DocTable`
literal table                     :class:`~repro.algebra.operators.LiteralTable`
===============================  =======================================

Plans are DAGs: operators may be shared (the single ``doc`` instance of
Fig. 4 serves all node references).  :mod:`repro.algebra.dag` provides
traversal and reconstruction utilities, :mod:`repro.algebra.interpreter` a
reference evaluator (used as the "stacked plan" execution baseline), and
:mod:`repro.algebra.render` textual / DOT plan rendering.
"""

from repro.algebra.interpreter import PlanInterpreter, evaluate_plan
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate, Sum
from repro.algebra.render import render_dot, render_plan
from repro.algebra.table import Table

__all__ = [
    "Attach",
    "ColumnRef",
    "Comparison",
    "Cross",
    "Distinct",
    "DocTable",
    "Join",
    "Literal",
    "LiteralTable",
    "Operator",
    "PlanInterpreter",
    "Predicate",
    "Project",
    "RowId",
    "RowRank",
    "Select",
    "Serialize",
    "Sum",
    "Table",
    "evaluate_plan",
    "render_dot",
    "render_plan",
]

"""Logical operators of the table algebra (Table I of the paper).

Plans are DAGs of immutable operator nodes.  Each node knows its children
and its output schema (``columns``); node identity is object identity, so
the same node object appearing below several parents models plan sharing
(e.g. the single ``doc`` instance of Fig. 4).

Operators validate their column references at construction time, which
catches compiler and rewriter bugs early.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import AlgebraError
from repro.algebra.predicates import Predicate
from repro.xmldb.encoding import DOC_COLUMNS


class Operator:
    """Base class of all plan operators."""

    __slots__ = ("children", "columns")

    #: Short symbol used by the renderers (π, σ, ⋈, ...).
    symbol = "?"

    def __init__(self, children: Sequence["Operator"], columns: Sequence[str]):
        self.children: tuple[Operator, ...] = tuple(children)
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise AlgebraError(f"duplicate output columns {self.columns} in {type(self).__name__}")

    # -- structural helpers ----------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def with_children(self, children: Sequence["Operator"]) -> "Operator":
        """Recreate this operator with new children (same parameters)."""
        raise NotImplementedError

    def label(self) -> str:
        """One-line description used by the plan renderers."""
        return self.symbol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label()} cols={','.join(self.columns)}>"


def _require_columns(operator_name: str, available: Sequence[str], needed: Sequence[str]) -> None:
    missing = [column for column in needed if column not in available]
    if missing:
        raise AlgebraError(
            f"{operator_name}: unknown column(s) {missing}; input schema is {tuple(available)}"
        )


class DocTable(Operator):
    """The XML infoset encoding table ``doc`` (a shared leaf)."""

    __slots__ = ("name",)
    symbol = "doc"

    def __init__(self, name: str = "doc"):
        super().__init__((), DOC_COLUMNS)
        self.name = name

    def with_children(self, children: Sequence[Operator]) -> "DocTable":
        if children:
            raise AlgebraError("doc is a leaf operator")
        return self

    def label(self) -> str:
        return self.name


class LiteralTable(Operator):
    """A literal table with inline rows (e.g. the singleton ``loop`` relation)."""

    __slots__ = ("rows",)
    symbol = "table"

    def __init__(self, columns: Sequence[str], rows: Sequence[Sequence[object]]):
        super().__init__((), columns)
        width = len(self.columns)
        frozen_rows = []
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise AlgebraError(f"literal table row {row!r} does not match schema {self.columns}")
            frozen_rows.append(row)
        self.rows: tuple[tuple, ...] = tuple(frozen_rows)

    def with_children(self, children: Sequence[Operator]) -> "LiteralTable":
        if children:
            raise AlgebraError("a literal table is a leaf operator")
        return self

    def label(self) -> str:
        preview = ", ".join(str(row) for row in self.rows[:2])
        if len(self.rows) > 2:
            preview += ", …"
        return f"[{'|'.join(self.columns)}: {preview}]"


class Serialize(Operator):
    """The serialization point ✂ marking the plan root (delivers the result rows)."""

    __slots__ = ()
    symbol = "✂"

    def __init__(self, child: Operator):
        super().__init__((child,), child.columns)

    @property
    def child(self) -> Operator:
        return self.children[0]

    def with_children(self, children: Sequence[Operator]) -> "Serialize":
        (child,) = children
        return Serialize(child)


class Project(Operator):
    """π — projection with optional renaming.

    ``items`` is an ordered sequence of ``(new_name, source_name)`` pairs,
    mirroring the paper's ``π_{a1:b1, ..., an:bn}`` notation.
    """

    __slots__ = ("items",)
    symbol = "π"

    def __init__(self, child: Operator, items: Sequence[tuple[str, str]]):
        items = tuple((str(new), str(old)) for new, old in items)
        if not items:
            raise AlgebraError("projection needs at least one output column")
        _require_columns("π", child.columns, [old for _new, old in items])
        super().__init__((child,), [new for new, _old in items])
        self.items = items

    @property
    def child(self) -> Operator:
        return self.children[0]

    @staticmethod
    def keep(child: Operator, columns: Sequence[str]) -> "Project":
        """Projection onto ``columns`` without renaming."""
        return Project(child, [(column, column) for column in columns])

    def renaming(self) -> dict[str, str]:
        """Mapping from output name to source name."""
        return {new: old for new, old in self.items}

    def with_children(self, children: Sequence[Operator]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def label(self) -> str:
        parts = [new if new == old else f"{new}:{old}" for new, old in self.items]
        return f"π {', '.join(parts)}"


class Select(Operator):
    """σ — row selection by a conjunctive predicate."""

    __slots__ = ("predicate",)
    symbol = "σ"

    def __init__(self, child: Operator, predicate: Predicate):
        _require_columns("σ", child.columns, sorted(predicate.columns()))
        super().__init__((child,), child.columns)
        self.predicate = predicate

    @property
    def child(self) -> Operator:
        return self.children[0]

    def with_children(self, children: Sequence[Operator]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def label(self) -> str:
        return f"σ {self.predicate.render()}"


class Join(Operator):
    """⋈ — join of two inputs by a conjunctive predicate.

    The inputs must have disjoint schemas (the compiler renames columns to
    guarantee this, cf. the ° columns of the STEP rule).
    """

    __slots__ = ("predicate",)
    symbol = "⋈"

    def __init__(self, left: Operator, right: Operator, predicate: Predicate):
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise AlgebraError(f"join inputs share columns {sorted(overlap)}")
        _require_columns("⋈", left.columns + right.columns, sorted(predicate.columns()))
        super().__init__((left, right), left.columns + right.columns)
        self.predicate = predicate

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]

    def with_children(self, children: Sequence[Operator]) -> "Join":
        left, right = children
        return Join(left, right, self.predicate)

    def label(self) -> str:
        return f"⋈ {self.predicate.render()}"


class Cross(Operator):
    """× — Cartesian product of two inputs with disjoint schemas."""

    __slots__ = ()
    symbol = "×"

    def __init__(self, left: Operator, right: Operator):
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise AlgebraError(f"cross product inputs share columns {sorted(overlap)}")
        super().__init__((left, right), left.columns + right.columns)

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]

    def with_children(self, children: Sequence[Operator]) -> "Cross":
        left, right = children
        return Cross(left, right)


class Distinct(Operator):
    """δ — duplicate row elimination."""

    __slots__ = ()
    symbol = "δ"

    def __init__(self, child: Operator):
        super().__init__((child,), child.columns)

    @property
    def child(self) -> Operator:
        return self.children[0]

    def with_children(self, children: Sequence[Operator]) -> "Distinct":
        (child,) = children
        return Distinct(child)


class Attach(Operator):
    """@ — attach a column holding a constant value."""

    __slots__ = ("column", "value")
    symbol = "@"

    def __init__(self, child: Operator, column: str, value: object):
        if column in child.columns:
            raise AlgebraError(f"@: column {column!r} already present in input")
        super().__init__((child,), child.columns + (column,))
        self.column = column
        self.value = value

    @property
    def child(self) -> Operator:
        return self.children[0]

    def with_children(self, children: Sequence[Operator]) -> "Attach":
        (child,) = children
        return Attach(child, self.column, self.value)

    def label(self) -> str:
        return f"@ {self.column}:{self.value!r}"


class RowId(Operator):
    """# — attach an arbitrary unique row identifier."""

    __slots__ = ("column",)
    symbol = "#"

    def __init__(self, child: Operator, column: str):
        if column in child.columns:
            raise AlgebraError(f"#: column {column!r} already present in input")
        super().__init__((child,), child.columns + (column,))
        self.column = column

    @property
    def child(self) -> Operator:
        return self.children[0]

    def with_children(self, children: Sequence[Operator]) -> "RowId":
        (child,) = children
        return RowId(child, self.column)

    def label(self) -> str:
        return f"# {self.column}"


#: Aggregation functions of :class:`GroupAggregate`.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg")


class GroupAggregate(Operator):
    """Aggr — per-group aggregation of ``child`` rows against a ``loop``.

    The loop-lifting AGGR rule's operator: ``loop`` holds one row per
    iteration of the enclosing loop (its ``group_column`` is a key).  For
    every loop row, the child rows with the same ``group_column`` value are
    first deduplicated on ``(group_column, unit_column[, value_column])`` —
    the aggregate's argument is a ddo'd *node sequence*, so each node
    (``unit_column``) contributes once per iteration regardless of how many
    bundle rows produced it — and then folded into one ``item_column``
    value:

    * ``count`` — the number of distinct units (0 when none);
    * ``sum``   — the sum of their non-NULL ``value_column`` values (0 when
      none, following ``fn:sum`` on the empty sequence);
    * ``avg``   — their average; an iteration without any non-NULL value
      produces **no output row** (``fn:avg(())`` is the empty sequence).

    Owning the dedup identity makes the operator self-contained: upstream
    rewrites may freely remove the argument's δ (the operator re-establishes
    it) and prune every child column beyond group/unit/value.  The output
    schema is ``loop.columns + (item_column,)`` — the loop's columns pass
    through untouched, so isolation can widen the loop side (carry ordering
    columns) without the operator standing in the way.  Matching SQL NULL
    discipline, ``sum``/``avg`` ignore NULL values; this is what allows the
    SQL back-end to run the same aggregation as native ``COUNT``/``SUM``/
    ``AVG`` over a DISTINCT subquery.
    """

    __slots__ = ("function", "group_column", "unit_column", "value_column", "item_column")
    symbol = "aggr"

    def __init__(
        self,
        child: Operator,
        loop: Operator,
        function: str,
        group_column: str = "iter",
        unit_column: str = "item",
        value_column: Optional[str] = None,
        item_column: str = "item",
    ):
        if function not in AGGREGATE_FUNCTIONS:
            raise AlgebraError(f"unknown aggregate function {function!r}")
        if function == "count":
            if value_column is not None:
                raise AlgebraError("count aggregates units, not a value column")
        elif value_column is None:
            raise AlgebraError(f"{function} needs a value column")
        needed = [group_column, unit_column] + ([value_column] if value_column else [])
        _require_columns("aggr(child)", child.columns, needed)
        _require_columns("aggr(loop)", loop.columns, [group_column])
        if item_column in loop.columns:
            raise AlgebraError(f"aggr: column {item_column!r} already present in the loop input")
        super().__init__((child, loop), loop.columns + (item_column,))
        self.function = function
        self.group_column = group_column
        self.unit_column = unit_column
        self.value_column = value_column
        self.item_column = item_column

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def loop(self) -> Operator:
        return self.children[1]

    def with_children(self, children: Sequence[Operator]) -> "GroupAggregate":
        child, loop = children
        return GroupAggregate(
            child,
            loop,
            self.function,
            self.group_column,
            self.unit_column,
            self.value_column,
            self.item_column,
        )

    def label(self) -> str:
        argument = self.value_column if self.value_column else self.unit_column
        return f"aggr {self.function}({argument}) % {self.group_column}"


class RowRank(Operator):
    """ϱ — attach the row rank in ``column`` ordered by ``order_by``.

    Mirrors SQL:1999 ``RANK() OVER ([PARTITION BY p1, ...] ORDER BY b1, ...)
    AS a``.  ``partition_by`` restarts the rank for every distinct
    combination of the partition columns (the paper's ϱ a:⟨b⟩/p form used
    to number items *per iteration* instead of globally).
    """

    __slots__ = ("column", "order_by", "partition_by")
    symbol = "ϱ"

    def __init__(
        self,
        child: Operator,
        column: str,
        order_by: Sequence[str],
        partition_by: Sequence[str] = (),
    ):
        order_by = tuple(order_by)
        partition_by = tuple(partition_by)
        if column in child.columns:
            raise AlgebraError(f"ϱ: column {column!r} already present in input")
        if not order_by:
            raise AlgebraError("ϱ needs at least one ordering column")
        _require_columns("ϱ", child.columns, order_by)
        _require_columns("ϱ", child.columns, partition_by)
        super().__init__((child,), child.columns + (column,))
        self.column = column
        self.order_by = order_by
        self.partition_by = partition_by

    @property
    def child(self) -> Operator:
        return self.children[0]

    def with_children(self, children: Sequence[Operator]) -> "RowRank":
        (child,) = children
        return RowRank(child, self.column, self.order_by, self.partition_by)

    def label(self) -> str:
        rendered = f"ϱ {self.column}:⟨{', '.join(self.order_by)}⟩"
        if self.partition_by:
            rendered += f"/⟨{', '.join(self.partition_by)}⟩"
        return rendered


#: The operators the isolated join graph may contain below the plan tail
#: (cf. Section III: "projection, selection, and column attachment").
JOIN_GRAPH_OPERATORS = (Project, Select, Attach, Join, Cross, DocTable, LiteralTable)

#: Blocking operators the isolation moves into the plan tail.
BLOCKING_OPERATORS = (Distinct, RowRank, RowId)


def loop_table(iterations: Sequence[object] = (1,)) -> LiteralTable:
    """The ``loop`` relation: a single-column table of iteration identifiers."""
    return LiteralTable(("iter",), [(value,) for value in iterations])


def literal_column(column: str, value: object) -> LiteralTable:
    """A singleton literal table with one column (the paper's ``a / c1`` table)."""
    return LiteralTable((column,), [(value,)])

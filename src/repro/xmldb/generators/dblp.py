"""Synthetic DBLP-like bibliography documents.

The paper's queries Q5 and Q6 run against an XML dump of Michael Ley's DBLP
bibliography.  This generator produces a structurally faithful stand-in:

* a ``dblp`` root with a mix of ``article``, ``inproceedings``,
  ``phdthesis`` and ``proceedings`` children,
* every entry carries a ``key`` attribute (``journals/...``, ``conf/...``,
  ``phd/...``),
* entries have ``author`` (one or more), ``title``, ``year`` and, for
  ``proceedings``, ``editor`` and ``booktitle`` children,
* a designated ``proceedings`` entry with ``key="conf/vldb2001"`` exists so
  that Q5 has its single expected result, and a configurable fraction of
  ``phdthesis`` entries has ``year < 1994`` so that Q6 is selective but not
  empty.

Deterministic for a given ``(scale, seed)`` pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmldb.encoding import DocumentEncoding, encode_document
from repro.xmldb.infoset import XMLNode, document, element

_VENUES = ("vldb", "sigmod", "icde", "edbt", "cidr", "pods", "www", "kdd")
_JOURNALS = ("tods", "vldbj", "tkde", "sigmodrec", "jacm", "cacm")
_TOPICS = (
    "Query Optimization", "Join Processing", "XML Storage", "Index Structures",
    "Transaction Management", "Stream Processing", "Data Integration",
    "Schema Matching", "Cardinality Estimation", "Columnar Execution",
    "Recovery Protocols", "Distributed Joins", "Top-k Retrieval",
    "Graph Databases", "Temporal Data", "Approximate Answers",
)
_ADJECTIVES = (
    "Efficient", "Scalable", "Adaptive", "Robust", "Incremental", "Holistic",
    "Cost-based", "Declarative", "Parallel", "Succinct", "Streaming",
)
_AUTHORS = (
    "A. Codd", "B. Gray", "C. Stonebraker", "D. Bernstein", "E. Selinger",
    "F. DeWitt", "G. Chamberlin", "H. Astrahan", "I. Mohan", "J. Widom",
    "K. Ullman", "L. Abiteboul", "M. Garcia-Molina", "N. Ioannidis",
    "O. Hellerstein", "P. Franklin", "Q. Naughton", "R. Ramakrishnan",
    "S. Suciu", "T. Buneman", "U. Vianu", "V. Lenzerini", "W. Halevy",
)


@dataclass(frozen=True)
class DblpConfig:
    """Sizing knobs of the DBLP-like generator.

    The defaults produce roughly 25,000 nodes at ``scale=1.0`` (about 1,700
    publications); counts grow linearly with ``scale``.
    """

    scale: float = 1.0
    seed: int = 7
    uri: str = "dblp.xml"
    articles: int = 700
    inproceedings: int = 700
    phdtheses: int = 200
    proceedings: int = 80
    early_thesis_fraction: float = 0.25
    year_range: tuple[int, int] = (1975, 2008)

    def scaled(self, count: int) -> int:
        return max(1, int(round(count * self.scale)))


def _title(rng: random.Random) -> str:
    return f"{rng.choice(_ADJECTIVES)} {rng.choice(_TOPICS)}"


def _authors(rng: random.Random, low: int = 1, high: int = 4) -> list[XMLNode]:
    count = rng.randint(low, high)
    chosen = rng.sample(_AUTHORS, min(count, len(_AUTHORS)))
    return [element("author", text_content=author) for author in chosen]


def _year(rng: random.Random, config: DblpConfig, early: bool = False) -> str:
    low, high = config.year_range
    if early:
        return str(rng.randint(low, 1993))
    return str(rng.randint(low, high))


def _build_articles(rng: random.Random, config: DblpConfig) -> list[XMLNode]:
    entries = []
    for index in range(config.scaled(config.articles)):
        journal = rng.choice(_JOURNALS)
        year = _year(rng, config)
        entries.append(
            element(
                "article",
                *_authors(rng),
                element("title", text_content=_title(rng)),
                element("journal", text_content=journal.upper()),
                element("year", text_content=year),
                element("volume", text_content=str(rng.randint(1, 40))),
                attributes={"key": f"journals/{journal}/entry{index}", "mdate": f"{year}-06-01"},
            )
        )
    return entries


def _build_inproceedings(rng: random.Random, config: DblpConfig) -> list[XMLNode]:
    entries = []
    for index in range(config.scaled(config.inproceedings)):
        venue = rng.choice(_VENUES)
        year = _year(rng, config)
        entries.append(
            element(
                "inproceedings",
                *_authors(rng),
                element("title", text_content=_title(rng)),
                element("booktitle", text_content=venue.upper()),
                element("year", text_content=year),
                element("pages", text_content=f"{rng.randint(1, 400)}-{rng.randint(401, 800)}"),
                element("crossref", text_content=f"conf/{venue}{year}"),
                attributes={"key": f"conf/{venue}/paper{index}", "mdate": f"{year}-09-15"},
            )
        )
    return entries


def _build_phdtheses(rng: random.Random, config: DblpConfig) -> list[XMLNode]:
    entries = []
    for index in range(config.scaled(config.phdtheses)):
        early = rng.random() < config.early_thesis_fraction
        year = _year(rng, config, early=early)
        entries.append(
            element(
                "phdthesis",
                *_authors(rng, low=1, high=1),
                element("title", text_content=_title(rng)),
                element("year", text_content=year),
                element("school", text_content="University of Examples"),
                attributes={"key": f"phd/thesis{index}", "mdate": f"{year}-12-01"},
            )
        )
    return entries


def _build_proceedings(rng: random.Random, config: DblpConfig) -> list[XMLNode]:
    entries = []
    seen_keys: set[str] = set()
    count = config.scaled(config.proceedings)
    for index in range(count):
        venue = rng.choice(_VENUES)
        year = _year(rng, config)
        key = f"conf/{venue}{year}"
        if key in seen_keys:
            key = f"conf/{venue}{year}-{index}"
        seen_keys.add(key)
        entries.append(
            element(
                "proceedings",
                element("editor", text_content=rng.choice(_AUTHORS)),
                element("editor", text_content=rng.choice(_AUTHORS)),
                element("title", text_content=f"Proceedings of {venue.upper()} {year}"),
                element("booktitle", text_content=venue.upper()),
                element("year", text_content=year),
                element("publisher", text_content="Example Press"),
                attributes={"key": key, "mdate": f"{year}-01-10"},
            )
        )
    # Guarantee that Q5's key exists exactly once.
    if "conf/vldb2001" not in seen_keys:
        entries.append(
            element(
                "proceedings",
                element("editor", text_content="P. Apers"),
                element("editor", text_content="P. Atzeni"),
                element("title", text_content="Proceedings of VLDB 2001"),
                element("booktitle", text_content="VLDB"),
                element("year", text_content="2001"),
                element("publisher", text_content="Morgan Kaufmann"),
                attributes={"key": "conf/vldb2001", "mdate": "2001-09-11"},
            )
        )
    return entries


def generate_dblp_document(config: DblpConfig | None = None) -> XMLNode:
    """Generate a DBLP-like ``dblp.xml`` document tree."""
    config = config or DblpConfig()
    rng = random.Random(config.seed)
    entries: list[XMLNode] = []
    entries.extend(_build_articles(rng, config))
    entries.extend(_build_inproceedings(rng, config))
    entries.extend(_build_phdtheses(rng, config))
    entries.extend(_build_proceedings(rng, config))
    rng.shuffle(entries)
    return document(config.uri, element("dblp", *entries))


def generate_dblp_encoding(config: DblpConfig | None = None) -> DocumentEncoding:
    """Generate and encode a DBLP-like document in one step."""
    return encode_document(generate_dblp_document(config))

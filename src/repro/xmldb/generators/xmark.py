"""Synthetic XMark-like auction documents.

XMark [Schmidt et al., VLDB 2002] models an internet auction site.  The
generator below reproduces the parts of its structure that the paper's
benchmark queries touch:

* ``/site/regions/<region>/item`` with ``@id``, ``name``, ``location``,
  ``quantity``, ``payment``, ``description`` and ``incategory/@category``
  references,
* ``/site/categories/category`` with ``@id``, ``name`` and ``description``,
* ``/site/people/person`` with ``@id``, ``name``, ``emailaddress`` and an
  optional ``profile``,
* ``/site/open_auctions/open_auction`` with ``@id``, ``initial``, a varying
  number of ``bidder`` elements (``time``, ``personref/@person``,
  ``increase``), ``current``, ``itemref/@item`` and ``seller/@person``,
* ``/site/closed_auctions/closed_auction`` with ``seller/@person``,
  ``buyer/@person``, ``itemref/@item``, ``price``, ``date``, ``quantity``
  and ``annotation``.

The generator is deterministic for a given ``(scale, seed)`` pair, so
benchmark runs are repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmldb.encoding import DocumentEncoding, encode_document
from repro.xmldb.infoset import XMLNode, document, element

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_WORDS = (
    "gold", "silver", "vintage", "antique", "rare", "modern", "classic", "signed",
    "limited", "original", "mint", "restored", "painted", "carved", "woven",
    "portrait", "landscape", "sculpture", "ceramic", "crystal", "bronze", "oak",
    "walnut", "marble", "velvet", "satin", "linen", "amber", "pearl", "ivory",
)

_FIRST_NAMES = (
    "Ada", "Alan", "Barbara", "Carl", "Dana", "Edsger", "Frances", "Grace",
    "Hedy", "Ivan", "Judy", "Ken", "Lynn", "Maurice", "Niklaus", "Olga",
    "Peter", "Quentin", "Radia", "Seymour", "Tim", "Ursula", "Vint", "Wanda",
)

_LAST_NAMES = (
    "Lovelace", "Turing", "Liskov", "Sassenrath", "Scott", "Dijkstra", "Allen",
    "Hopper", "Lamarr", "Sutherland", "Clark", "Thompson", "Conway", "Wilkes",
    "Wirth", "Babbage", "Naur", "Kay", "Perlman", "Cray", "Berners-Lee",
    "Goldberg", "Cerf", "Jones",
)


@dataclass(frozen=True)
class XMarkConfig:
    """Sizing knobs of the XMark-like generator.

    The defaults produce a document of roughly 20,000 nodes at ``scale=1.0``;
    all counts grow linearly with ``scale``.
    """

    scale: float = 1.0
    seed: int = 42
    uri: str = "auction.xml"
    items_per_region: int = 25
    categories: int = 30
    people: int = 120
    open_auctions: int = 140
    closed_auctions: int = 120
    max_bidders: int = 6
    expensive_price_fraction: float = 0.12

    def scaled(self, count: int) -> int:
        return max(1, int(round(count * self.scale)))


def _phrase(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _price(rng: random.Random, expensive_fraction: float) -> float:
    """Item/auction price: mostly cheap, a configurable tail above 500."""
    if rng.random() < expensive_fraction:
        return round(rng.uniform(500.01, 5000.0), 2)
    return round(rng.uniform(1.0, 499.99), 2)


def _build_categories(rng: random.Random, config: XMarkConfig) -> XMLNode:
    categories = element("categories")
    for index in range(config.scaled(config.categories)):
        categories.add_child(
            element(
                "category",
                element("name", text_content=_phrase(rng, 2)),
                element(
                    "description",
                    element("text", text_content=_phrase(rng, 6)),
                ),
                attributes={"id": f"category{index}"},
            )
        )
    return categories


def _build_regions(rng: random.Random, config: XMarkConfig, category_count: int) -> XMLNode:
    regions = element("regions")
    item_index = 0
    per_region = config.scaled(config.items_per_region)
    for region_name in _REGIONS:
        region = element(region_name)
        for _ in range(per_region):
            incategories = [
                element(
                    "incategory",
                    attributes={"category": f"category{rng.randrange(category_count)}"},
                )
                for _ in range(rng.randint(1, 3))
            ]
            item = element(
                "item",
                element("location", text_content=region_name.capitalize()),
                element("quantity", text_content=str(rng.randint(1, 10))),
                element("name", text_content=_phrase(rng, 3)),
                element("payment", text_content="Creditcard"),
                element(
                    "description",
                    element("text", text_content=_phrase(rng, 8)),
                ),
                *incategories,
                attributes={"id": f"item{item_index}"},
            )
            region.add_child(item)
            item_index += 1
        regions.add_child(region)
    return regions


def _build_people(rng: random.Random, config: XMarkConfig) -> XMLNode:
    people = element("people")
    for index in range(config.scaled(config.people)):
        name = _person_name(rng)
        person = element(
            "person",
            element("name", text_content=name),
            element(
                "emailaddress",
                text_content="mailto:" + name.replace(" ", ".").lower() + "@example.org",
            ),
            attributes={"id": f"person{index}"},
        )
        if rng.random() < 0.4:
            person.add_child(
                element(
                    "profile",
                    element("interest", attributes={"category": f"category{rng.randrange(max(1, config.scaled(config.categories)))}"}),
                    element("education", text_content="Graduate School"),
                    attributes={"income": str(round(rng.uniform(10000, 100000), 2))},
                )
            )
        people.add_child(person)
    return people


def _build_open_auctions(
    rng: random.Random, config: XMarkConfig, item_count: int, person_count: int
) -> XMLNode:
    open_auctions = element("open_auctions")
    for index in range(config.scaled(config.open_auctions)):
        bidders = []
        for _ in range(rng.randint(0, config.max_bidders)):
            bidders.append(
                element(
                    "bidder",
                    element("time", text_content=f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"),
                    element("personref", attributes={"person": f"person{rng.randrange(person_count)}"}),
                    element("increase", text_content=str(round(rng.uniform(1.5, 60.0), 2))),
                )
            )
        auction = element(
            "open_auction",
            element("initial", text_content=str(_price(rng, config.expensive_price_fraction))),
            *bidders,
            element("current", text_content=str(_price(rng, config.expensive_price_fraction))),
            element("itemref", attributes={"item": f"item{rng.randrange(item_count)}"}),
            element("seller", attributes={"person": f"person{rng.randrange(person_count)}"}),
            element("quantity", text_content=str(rng.randint(1, 5))),
            element("type", text_content="Regular"),
            attributes={"id": f"open_auction{index}"},
        )
        open_auctions.add_child(auction)
    return open_auctions


def _build_closed_auctions(
    rng: random.Random, config: XMarkConfig, item_count: int, person_count: int
) -> XMLNode:
    closed_auctions = element("closed_auctions")
    for index in range(config.scaled(config.closed_auctions)):
        closed_auctions.add_child(
            element(
                "closed_auction",
                element("seller", attributes={"person": f"person{rng.randrange(person_count)}"}),
                element("buyer", attributes={"person": f"person{rng.randrange(person_count)}"}),
                element("itemref", attributes={"item": f"item{rng.randrange(item_count)}"}),
                element("price", text_content=str(_price(rng, config.expensive_price_fraction))),
                element("date", text_content=f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{rng.randint(1999, 2008)}"),
                element("quantity", text_content=str(rng.randint(1, 5))),
                element("type", text_content="Regular"),
                element(
                    "annotation",
                    element("author", attributes={"person": f"person{rng.randrange(person_count)}"}),
                    element("description", element("text", text_content=_phrase(rng, 5))),
                ),
                attributes={"id": f"closed_auction{index}"},
            )
        )
    return closed_auctions


def generate_xmark_document(config: XMarkConfig | None = None) -> XMLNode:
    """Generate an XMark-like ``auction.xml`` document tree."""
    config = config or XMarkConfig()
    rng = random.Random(config.seed)
    category_count = config.scaled(config.categories)
    item_count = config.scaled(config.items_per_region) * len(_REGIONS)
    person_count = config.scaled(config.people)
    site = element(
        "site",
        _build_regions(rng, config, category_count),
        _build_categories(rng, config),
        element("catgraph"),
        _build_people(rng, config),
        _build_open_auctions(rng, config, item_count, person_count),
        _build_closed_auctions(rng, config, item_count, person_count),
    )
    return document(config.uri, site)


def generate_xmark_encoding(config: XMarkConfig | None = None) -> DocumentEncoding:
    """Generate and encode an XMark-like document in one step."""
    return encode_document(generate_xmark_document(config))

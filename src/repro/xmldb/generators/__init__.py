"""Deterministic synthetic document generators.

The paper's evaluation uses a 110 MB XMark ``auction.xml`` instance and a
400 MB XML dump of the DBLP bibliography.  Neither is redistributable nor
practical for a pure-Python reproduction, so this package generates
*structurally faithful*, seeded, scalable stand-ins:

* :mod:`repro.xmldb.generators.xmark` — auction documents with the XMark
  vocabulary (sites, regions, items, categories, people, open and closed
  auctions, bidders, prices, ``itemref/@item`` and ``incategory/@category``
  references) so that the benchmark queries Q1-Q4 are meaningful.
* :mod:`repro.xmldb.generators.dblp` — bibliography documents with
  ``article`` / ``inproceedings`` / ``phdthesis`` / ``proceedings`` entries
  carrying ``key`` attributes, authors, editors, titles and years so that
  Q5 and Q6 are meaningful.
"""

from repro.xmldb.generators.dblp import DblpConfig, generate_dblp_document, generate_dblp_encoding
from repro.xmldb.generators.xmark import (
    XMarkConfig,
    generate_xmark_document,
    generate_xmark_encoding,
)

__all__ = [
    "DblpConfig",
    "XMarkConfig",
    "generate_dblp_document",
    "generate_dblp_encoding",
    "generate_xmark_document",
    "generate_xmark_encoding",
]

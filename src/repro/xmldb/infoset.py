"""In-memory XML infoset model.

The model is deliberately small: it covers exactly the information items the
paper's document encoding (Fig. 2) captures — documents, elements,
attributes, text nodes, comments and processing instructions — plus the
tree structure connecting them.  Construction helpers (:func:`element`,
:func:`text`, :func:`document`) make it convenient to build documents
programmatically, which the synthetic data generators rely on.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional, Sequence


class NodeKind(enum.Enum):
    """The node kinds distinguished by the ``kind`` column of the encoding."""

    DOC = "DOC"
    ELEM = "ELEM"
    ATTR = "ATTR"
    TEXT = "TEXT"
    COMM = "COMM"
    PI = "PI"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class XMLNode:
    """A single node of an XML document tree.

    Parameters
    ----------
    kind:
        The node kind (document, element, attribute, text, ...).
    name:
        Tag name for elements, attribute name for attributes, target for
        processing instructions, the document URI for document nodes and
        ``None`` for text/comment nodes.
    value:
        Attribute value, text content, comment content or PI content.
        ``None`` for elements and documents.
    """

    __slots__ = ("kind", "name", "value", "attributes", "children", "parent")

    def __init__(
        self,
        kind: NodeKind,
        name: Optional[str] = None,
        value: Optional[str] = None,
        attributes: Optional[Sequence["XMLNode"]] = None,
        children: Optional[Sequence["XMLNode"]] = None,
    ):
        self.kind = kind
        self.name = name
        self.value = value
        self.attributes: list[XMLNode] = []
        self.children: list[XMLNode] = []
        self.parent: Optional[XMLNode] = None
        for attribute in attributes or ():
            self.add_attribute(attribute)
        for child in children or ():
            self.add_child(child)

    # -- tree construction -------------------------------------------------

    def add_attribute(self, attribute: "XMLNode") -> "XMLNode":
        """Attach ``attribute`` (an ATTR node) to this element and return it."""
        if attribute.kind is not NodeKind.ATTR:
            raise ValueError(f"expected an attribute node, got {attribute.kind}")
        attribute.parent = self
        self.attributes.append(attribute)
        return attribute

    def add_child(self, child: "XMLNode") -> "XMLNode":
        """Append ``child`` to this node's ordered child list and return it."""
        if child.kind is NodeKind.ATTR:
            raise ValueError("attributes must be added via add_attribute()")
        child.parent = self
        self.children.append(child)
        return child

    # -- accessors ---------------------------------------------------------

    def attribute(self, name: str) -> Optional["XMLNode"]:
        """Return the attribute node with the given name, or ``None``."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        return None

    def child_elements(self, name: Optional[str] = None) -> list["XMLNode"]:
        """Return the element children, optionally restricted to tag ``name``."""
        return [
            child
            for child in self.children
            if child.kind is NodeKind.ELEM and (name is None or child.name == name)
        ]

    def string_value(self) -> str:
        """The XPath string value: concatenated descendant text content."""
        if self.kind in (NodeKind.TEXT, NodeKind.ATTR, NodeKind.COMM, NodeKind.PI):
            return self.value or ""
        parts: list[str] = []
        for node in self.iter_descendants(include_self=False):
            if node.kind is NodeKind.TEXT:
                parts.append(node.value or "")
        return "".join(parts)

    def typed_decimal(self) -> Optional[float]:
        """The decimal typed value (the ``data`` column), if the string value casts."""
        raw = self.string_value().strip()
        if not raw:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    # -- traversal ---------------------------------------------------------

    def iter_descendants(self, include_self: bool = True) -> Iterator["XMLNode"]:
        """Yield this node's subtree in document order.

        Attributes are yielded immediately after their owner element, which
        matches the ``pre`` rank assignment of the relational encoding
        (Fig. 2 of the paper).
        """
        if include_self:
            yield self
        for attribute in self.attributes:
            yield attribute
        for child in self.children:
            yield from child.iter_descendants(include_self=True)

    def subtree_size(self) -> int:
        """Number of nodes strictly below this node (the ``size`` column)."""
        return sum(1 for _ in self.iter_descendants(include_self=False))

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name if self.name is not None else (self.value or "")
        return f"<XMLNode {self.kind.value} {label!r}>"


def element(
    name: str,
    *children: XMLNode,
    attributes: Optional[dict[str, str]] = None,
    text_content: Optional[str] = None,
) -> XMLNode:
    """Build an element node.

    ``attributes`` maps attribute names to string values; ``text_content``
    adds a single text child (handy for leaf elements such as ``<price>``).
    """
    node = XMLNode(NodeKind.ELEM, name=name)
    for attr_name, attr_value in (attributes or {}).items():
        node.add_attribute(XMLNode(NodeKind.ATTR, name=attr_name, value=attr_value))
    if text_content is not None:
        node.add_child(XMLNode(NodeKind.TEXT, value=text_content))
    for child in children:
        node.add_child(child)
    return node


def text(content: str) -> XMLNode:
    """Build a text node."""
    return XMLNode(NodeKind.TEXT, value=content)


def document(uri: str, root: XMLNode) -> XMLNode:
    """Wrap ``root`` in a document node carrying the document URI."""
    doc = XMLNode(NodeKind.DOC, name=uri)
    doc.add_child(root)
    return doc

"""Serialization of encoded XML nodes back to XML text.

The paper notes that the tabular infoset representation "may be serialized
again (via a table scan in pre order)".  This module implements exactly
that: given a :class:`repro.xmldb.encoding.DocumentEncoding` and the ``pre``
rank of a node, it reconstructs the XML text of the node's subtree from the
``pre``/``size``/``level`` structure alone.
"""

from __future__ import annotations

from typing import Iterable

from repro.xmldb.encoding import DocumentEncoding
from repro.xmldb.infoset import NodeKind


def _escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize_node(encoding: DocumentEncoding, pre: int) -> str:
    """Serialize the subtree rooted at ``pre`` to XML text."""
    record = encoding.record(pre)
    kind = record.kind
    if kind == NodeKind.TEXT.value:
        return _escape_text(record.value or "")
    if kind == NodeKind.COMM.value:
        return f"<!--{record.value or ''}-->"
    if kind == NodeKind.PI.value:
        body = f" {record.value}" if record.value else ""
        return f"<?{record.name}{body}?>"
    if kind == NodeKind.ATTR.value:
        return f'{record.name}="{_escape_attribute(record.value or "")}"'
    if kind == NodeKind.DOC.value:
        return "".join(serialize_node(encoding, child) for child in encoding.children(pre))
    # Element node.
    attributes = "".join(
        " " + serialize_node(encoding, attr_pre) for attr_pre in encoding.attributes(pre)
    )
    children = encoding.children(pre)
    if not children:
        return f"<{record.name}{attributes}/>"
    inner = "".join(serialize_node(encoding, child) for child in children)
    return f"<{record.name}{attributes}>{inner}</{record.name}>"


def serialize_subtree(encoding: DocumentEncoding, pres: Iterable[int], separator: str = "") -> str:
    """Serialize an ordered sequence of nodes (a query result) to XML text."""
    return separator.join(serialize_node(encoding, pre) for pre in sorted(set(pres)))


def serialize_sequence(encoding: DocumentEncoding, pres: Iterable[int], separator: str = "") -> str:
    """Serialize a node sequence *preserving the given order and duplicates*.

    Unlike :func:`serialize_subtree` this does not sort or deduplicate; it is
    the serialization of an arbitrary XQuery item sequence.
    """
    return separator.join(serialize_node(encoding, pre) for pre in pres)

"""A small, dependency-free parser for well-formed XML documents.

The parser supports exactly the XML feature set the paper's encoding deals
with: elements, attributes (single- or double-quoted), character data,
CDATA sections, comments, processing instructions, an optional XML
declaration and an optional DOCTYPE declaration (which is skipped), plus the
five predefined entity references and numeric character references.

Namespaces are treated syntactically (prefixes stay part of the name), which
matches the schema-oblivious spirit of the ``doc`` encoding.

The output is an :class:`repro.xmldb.infoset.XMLNode` document tree ready to
be encoded by :func:`repro.xmldb.encoding.encode_document`.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmldb.infoset import NodeKind, XMLNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class _Scanner:
    """Character-level scanner with position tracking for error messages."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.length = len(source)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= self.length:
            return ""
        return self.source[index]

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.pos)

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            self.error(f"expected {literal!r}")
        self.advance(len(literal))

    def skip_whitespace(self) -> None:
        while not self.eof() and self.peek() in _WHITESPACE:
            self.advance()

    def read_until(self, terminator: str) -> str:
        end = self.source.find(terminator, self.pos)
        if end < 0:
            self.error(f"unterminated construct, expected {terminator!r}")
        chunk = self.source[self.pos : end]
        self.pos = end + len(terminator)
        return chunk

    def read_name(self) -> str:
        if self.eof() or self.peek() not in _NAME_START:
            self.error("expected an XML name")
        start = self.pos
        self.advance()
        while not self.eof() and self.peek() in _NAME_CHARS:
            self.advance()
        return self.source[start : self.pos]

    def error(self, message: str) -> None:
        line = self.source.count("\n", 0, self.pos) + 1
        last_newline = self.source.rfind("\n", 0, self.pos)
        column = self.pos - last_newline
        raise XMLParseError(message, offset=self.pos, line=line, column=column)


def _decode_references(raw: str, scanner: _Scanner) -> str:
    """Resolve entity and character references in character data."""
    if "&" not in raw:
        return raw
    parts: list[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "&":
            parts.append(char)
            index += 1
            continue
        end = raw.find(";", index)
        if end < 0:
            scanner.error("unterminated entity reference")
        entity = raw[index + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            parts.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            parts.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[entity])
        else:
            scanner.error(f"unknown entity reference &{entity};")
        index = end + 1
    return "".join(parts)


def _parse_attributes(scanner: _Scanner, owner: XMLNode) -> None:
    """Parse zero or more ``name="value"`` attribute specifications."""
    while True:
        scanner.skip_whitespace()
        char = scanner.peek()
        if char in ("", ">", "/") or scanner.startswith("?>"):
            return
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            scanner.error("attribute value must be quoted")
        scanner.advance()
        value = _decode_references(scanner.read_until(quote), scanner)
        if owner.attribute(name) is not None:
            scanner.error(f"duplicate attribute {name!r}")
        owner.add_attribute(XMLNode(NodeKind.ATTR, name=name, value=value))


def _parse_element(scanner: _Scanner, keep_whitespace_text: bool) -> XMLNode:
    """Parse one element (the scanner is positioned just after ``<``)."""
    name = scanner.read_name()
    node = XMLNode(NodeKind.ELEM, name=name)
    _parse_attributes(scanner, node)
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return node
    scanner.expect(">")
    _parse_content(scanner, node, keep_whitespace_text)
    scanner.expect("</")
    closing = scanner.read_name()
    if closing != name:
        scanner.error(f"mismatched end tag </{closing}> for <{name}>")
    scanner.skip_whitespace()
    scanner.expect(">")
    return node


def _parse_content(scanner: _Scanner, parent: XMLNode, keep_whitespace_text: bool) -> None:
    """Parse element content (text, children, comments, PIs, CDATA) into ``parent``."""
    text_buffer: list[str] = []

    def flush_text() -> None:
        if not text_buffer:
            return
        content = "".join(text_buffer)
        text_buffer.clear()
        if not keep_whitespace_text and not content.strip():
            return
        parent.add_child(XMLNode(NodeKind.TEXT, value=content))

    while not scanner.eof():
        if scanner.startswith("</"):
            flush_text()
            return
        if scanner.startswith("<!--"):
            flush_text()
            scanner.advance(4)
            comment = scanner.read_until("-->")
            parent.add_child(XMLNode(NodeKind.COMM, value=comment))
            continue
        if scanner.startswith("<![CDATA["):
            scanner.advance(9)
            text_buffer.append(scanner.read_until("]]>"))
            continue
        if scanner.startswith("<?"):
            flush_text()
            scanner.advance(2)
            target = scanner.read_name()
            body = scanner.read_until("?>").strip()
            parent.add_child(XMLNode(NodeKind.PI, name=target, value=body))
            continue
        if scanner.startswith("<"):
            flush_text()
            scanner.advance(1)
            parent.add_child(_parse_element(scanner, keep_whitespace_text))
            continue
        start = scanner.pos
        while not scanner.eof() and scanner.peek() != "<":
            scanner.advance()
        text_buffer.append(_decode_references(scanner.source[start : scanner.pos], scanner))
    flush_text()
    scanner.error("unexpected end of input inside element content")


def _skip_prolog(scanner: _Scanner) -> None:
    """Skip the XML declaration, DOCTYPE, comments and PIs before the root."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<?xml"):
            scanner.advance(5)
            scanner.read_until("?>")
        elif scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_name()
            scanner.read_until("?>")
        elif scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.startswith("<!DOCTYPE"):
            # Skip to the matching '>' while honouring an internal subset.
            depth = 0
            while not scanner.eof():
                char = scanner.peek()
                scanner.advance()
                if char == "[":
                    depth += 1
                elif char == "]":
                    depth -= 1
                elif char == ">" and depth <= 0:
                    break
        else:
            return


def parse_xml(source: str, uri: str = "document.xml", keep_whitespace_text: bool = False) -> XMLNode:
    """Parse XML text into a document node.

    Parameters
    ----------
    source:
        The XML document text.
    uri:
        The document URI recorded on the document node (this is what
        ``doc("uri")`` matches against, cf. the ``name`` column of DOC rows).
    keep_whitespace_text:
        When false (the default) text nodes consisting solely of whitespace
        are dropped, which mirrors the whitespace handling the paper's
        datasets assume and keeps node counts meaningful.
    """
    scanner = _Scanner(source)
    _skip_prolog(scanner)
    if scanner.eof() or not scanner.startswith("<"):
        scanner.error("expected a root element")
    scanner.advance(1)
    root = _parse_element(scanner, keep_whitespace_text)
    # Trailing misc (comments / PIs / whitespace) is permitted and ignored.
    scanner.skip_whitespace()
    while scanner.startswith("<!--") or scanner.startswith("<?"):
        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
        else:
            scanner.advance(2)
            scanner.read_until("?>")
        scanner.skip_whitespace()
    if not scanner.eof():
        scanner.error("unexpected content after the root element")
    doc = XMLNode(NodeKind.DOC, name=uri)
    doc.add_child(root)
    return doc

"""The relational XML infoset encoding of Section II-A (Fig. 2).

Every node of a document tree becomes one row of the ``doc`` table with
schema::

    pre | size | level | kind | name | value | data

* ``pre``   — the node's document-order rank (attributes directly follow
  their owner element, before the element's children),
* ``size``  — the number of nodes in the subtree below the node,
* ``level`` — the length of the path from the node to its document node,
* ``kind``  — DOC / ELEM / ATTR / TEXT / COMM / PI,
* ``name``  — tag or attribute name; the document URI for DOC rows,
* ``value`` — the node's untyped string value for nodes with ``size <= 1``
  (attributes, text nodes and leaf elements),
* ``data``  — the result of casting ``value`` to ``xs:decimal`` when the
  cast succeeds, else ``NULL``.

A :class:`DocumentEncoding` may host several documents (multiple DOC rows,
distinguishable by their URI in ``name``), exactly as the paper describes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.xmldb.infoset import NodeKind, XMLNode

#: Column order of the ``doc`` table, as used throughout the compiler,
#: the SQL generator and the relational back-end.
DOC_COLUMNS = ("pre", "size", "level", "kind", "name", "value", "data")


@dataclass(frozen=True)
class NodeRecord:
    """One row of the ``doc`` encoding table."""

    pre: int
    size: int
    level: int
    kind: str
    name: Optional[str]
    value: Optional[str]
    data: Optional[float]

    def as_tuple(self) -> tuple:
        """Return the row in :data:`DOC_COLUMNS` order."""
        return (self.pre, self.size, self.level, self.kind, self.name, self.value, self.data)


class DocumentEncoding:
    """An in-memory ``doc`` table plus convenience accessors.

    The encoding is append-only: additional documents may be encoded into the
    same instance via :meth:`append_document`, continuing the global ``pre``
    numbering (``pre`` stays a key of the table).
    """

    def __init__(self) -> None:
        self._records: list[NodeRecord] = []
        self._document_roots: dict[str, int] = {}
        #: Lazily-built per-level index: level -> ascending ``pre`` ranks.
        #: Invalidated by :meth:`append_document`.  Because records are laid
        #: out in ``pre`` order, every per-level list is already sorted, so
        #: axis evaluation can answer level-constrained range predicates
        #: (child, siblings, ancestors) with ``bisect`` slices.
        self._level_index: Optional[dict[int, list[int]]] = None

    # -- construction --------------------------------------------------------

    def append_document(self, doc: XMLNode) -> int:
        """Encode ``doc`` (a DOC node) and return the ``pre`` rank of its DOC row.

        Single-writer, many-readers: the subtree is encoded into a staging
        list and published with one ``list.extend`` (atomic under the GIL),
        so concurrent readers — the SQLite mirror's incremental ``sync``,
        a processor rebuild snapshotting ``rows()`` — see either none of
        the document's rows or all of them, never a half-filled tail.
        Concurrent *appends* still need external serialization (the
        :class:`~repro.core.session.DocumentStore` registration lock).
        """
        if doc.kind is not NodeKind.DOC:
            raise ValueError("append_document expects a document node")
        start = len(self._records)
        staged: list[NodeRecord] = []
        self._encode_subtree(doc, level=0, staged=staged, base=start)
        self._records.extend(staged)
        if doc.name:
            self._document_roots[doc.name] = start
        self._level_index = None
        return start

    def _encode_subtree(
        self, node: XMLNode, level: int, staged: list, base: int
    ) -> int:
        """Encode ``node``'s subtree into ``staged``; return rows emitted."""
        position = base + len(staged)
        # Reserve the slot; the size is only known after the subtree is done.
        staged.append(None)
        emitted = 0
        for attribute in node.attributes:
            emitted += self._encode_subtree(attribute, level + 1, staged, base)
        for child in node.children:
            emitted += self._encode_subtree(child, level + 1, staged, base)
        value, data = _node_value(node, subtree_size=emitted)
        name = node.name
        staged[position - base] = NodeRecord(
            pre=position,
            size=emitted,
            level=level,
            kind=node.kind.value,
            name=name,
            value=value,
            data=data,
        )
        return emitted + 1

    # -- accessors ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[NodeRecord]:
        return iter(self._records)

    @property
    def records(self) -> Sequence[NodeRecord]:
        """All rows in ``pre`` order."""
        return self._records

    def record(self, pre: int) -> NodeRecord:
        """Return the row with the given ``pre`` rank."""
        return self._records[pre]

    def rows(self) -> list[tuple]:
        """All rows as plain tuples in :data:`DOC_COLUMNS` order."""
        return [record.as_tuple() for record in self._records]

    @property
    def level_index(self) -> Mapping[int, Sequence[int]]:
        """``level -> sorted pre ranks`` over all hosted documents."""
        if self._level_index is None:
            index: dict[int, list[int]] = {}
            for record in self._records:
                index.setdefault(record.level, []).append(record.pre)
            self._level_index = index
        return self._level_index

    def level_pres(self, level: int) -> Sequence[int]:
        """All ``pre`` ranks at ``level``, ascending (empty for unused levels)."""
        return self.level_index.get(level, ())

    def level_pres_between(self, level: int, low: int, high: int) -> Sequence[int]:
        """``pre`` ranks at ``level`` with ``low < pre <= high`` via bisection."""
        pres = self.level_index.get(level)
        if not pres:
            return ()
        return pres[bisect_right(pres, low) : bisect_right(pres, high)]

    def document_root(self, uri: str) -> Optional[int]:
        """The ``pre`` rank of the DOC row for ``uri``, or ``None``."""
        return self._document_roots.get(uri)

    def document_uris(self) -> list[str]:
        """The URIs of all documents hosted by this encoding."""
        return list(self._document_roots)

    # -- navigation helpers (used by tests and the serializer) ----------------

    def children(self, pre: int) -> list[int]:
        """``pre`` ranks of the child nodes (attributes excluded) of ``pre``."""
        record = self.record(pre)
        result = []
        position = pre + 1
        end = pre + record.size
        while position <= end:
            child = self.record(position)
            if child.kind != NodeKind.ATTR.value:
                result.append(position)
            position += child.size + 1
        return result

    def attributes(self, pre: int) -> list[int]:
        """``pre`` ranks of the attribute nodes owned by element ``pre``."""
        record = self.record(pre)
        result = []
        position = pre + 1
        end = pre + record.size
        while position <= end:
            child = self.record(position)
            if child.kind == NodeKind.ATTR.value:
                result.append(position)
            else:
                break
            position += child.size + 1
        return result

    def parent(self, pre: int) -> Optional[int]:
        """``pre`` rank of the parent node, or ``None`` for document nodes.

        Answered from the per-level index: by subtree nesting, the parent is
        the rightmost node one level up with a smaller ``pre`` rank (any node
        between it and ``pre`` at that level would have to live inside the
        parent's own subtree, which is impossible at the parent's level).
        """
        target = self.record(pre)
        if target.kind == NodeKind.DOC.value:
            return None
        pres = self.level_index.get(target.level - 1)
        if not pres:
            return None
        position = bisect_left(pres, pre) - 1
        if position < 0:
            return None
        candidate = pres[position]
        record = self.record(candidate)
        if record.pre < pre <= record.pre + record.size:
            return candidate
        return None

    def subtree(self, pre: int, include_self: bool = True) -> range:
        """The ``pre`` range covered by the subtree rooted at ``pre``."""
        record = self.record(pre)
        start = pre if include_self else pre + 1
        return range(start, pre + record.size + 1)


def _node_value(node: XMLNode, subtree_size: int) -> tuple[Optional[str], Optional[float]]:
    """Compute the ``value``/``data`` columns for ``node``.

    The paper stores value-based access columns only for nodes with
    ``size <= 1`` — attributes, text nodes, and leaf elements wrapping a
    single text node.
    """
    if node.kind in (NodeKind.ATTR, NodeKind.TEXT, NodeKind.COMM, NodeKind.PI):
        value = node.value or ""
    elif node.kind is NodeKind.ELEM and subtree_size <= 1:
        value = node.string_value()
    else:
        return None, None
    data: Optional[float] = None
    stripped = value.strip()
    if stripped:
        try:
            data = float(stripped)
        except ValueError:
            data = None
    return value, data


def encode_document(doc: XMLNode) -> DocumentEncoding:
    """Encode a single document tree into a fresh :class:`DocumentEncoding`."""
    encoding = DocumentEncoding()
    encoding.append_document(doc)
    return encoding


def encode_documents(docs: Iterable[XMLNode]) -> DocumentEncoding:
    """Encode several documents into one shared ``doc`` table."""
    encoding = DocumentEncoding()
    for doc in docs:
        encoding.append_document(doc)
    return encoding

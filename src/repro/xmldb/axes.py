"""XPath axis and node-test semantics over the pre/size/level encoding.

Fig. 3 of the paper maps every XPath axis to a conjunctive range predicate
over the columns ``pre``, ``size`` and ``level`` of the context node (written
``pre°``, ``size°``, ``level°``) and of the candidate node.  This module
states those predicates *declaratively* (:data:`AXES`) so that

* the loop-lifting compiler can turn them into algebra join predicates,
* the SQL generator can print them as ``WHERE`` conjuncts, and
* tests and the navigational baseline can evaluate them directly
  (:func:`evaluate_axis`).

Following the paper, the structural predicates are pure range/equality
conditions; name and kind tests contribute the ``kind``/``name`` equality
conjuncts separately (:func:`node_test_conditions`).

The sibling axes cannot be expressed exactly with pre/size/level alone; the
declarative spec uses the standard level-based approximation (documented on
:data:`AXES`) while :func:`evaluate_axis` implements the exact semantics via
parent lookup.  None of the paper's benchmark queries use sibling axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.xmldb.encoding import DocumentEncoding, NodeRecord
from repro.xmldb.infoset import NodeKind


@dataclass(frozen=True)
class Operand:
    """One side of an axis condition.

    ``side`` is ``"ctx"`` (the context node, the ° columns of Fig. 3) or
    ``"node"`` (the candidate node).  The operand denotes
    ``column (+ plus_column) (+ offset)``, which is exactly the expression
    vocabulary Fig. 3 needs (``pre + size``, ``level + 1``).
    """

    side: str
    column: str
    plus_column: Optional[str] = None
    offset: int = 0

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``ctx.pre + ctx.size``."""
        parts = [f"{self.side}.{self.column}"]
        if self.plus_column:
            parts.append(f"{self.side}.{self.plus_column}")
        text = " + ".join(parts)
        if self.offset:
            text = f"{text} + {self.offset}"
        return text

    def evaluate(self, ctx: NodeRecord, node: NodeRecord) -> int:
        record = ctx if self.side == "ctx" else node
        value = getattr(record, self.column)
        if self.plus_column:
            value += getattr(record, self.plus_column)
        return value + self.offset


@dataclass(frozen=True)
class AxisCondition:
    """One conjunct of an axis predicate: ``left op right``."""

    left: Operand
    op: str
    right: Operand

    def describe(self) -> str:
        return f"{self.left.describe()} {self.op} {self.right.describe()}"

    def holds(self, ctx: NodeRecord, node: NodeRecord) -> bool:
        left = self.left.evaluate(ctx, node)
        right = self.right.evaluate(ctx, node)
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == "=":
            return left == right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        if self.op == "!=":
            return left != right
        raise ValueError(f"unknown comparison operator {self.op!r}")


def _ctx(column: str, plus: Optional[str] = None, offset: int = 0) -> Operand:
    return Operand("ctx", column, plus, offset)


def _node(column: str, plus: Optional[str] = None, offset: int = 0) -> Operand:
    return Operand("node", column, plus, offset)


def _cond(left: Operand, op: str, right: Operand) -> AxisCondition:
    return AxisCondition(left, op, right)


@dataclass(frozen=True)
class AxisSpec:
    """The declarative description of one XPath axis."""

    name: str
    conditions: tuple[AxisCondition, ...]
    #: Principal node kind of the axis ("ELEM" for all but attribute).
    principal_kind: str = NodeKind.ELEM.value
    #: True for forward axes (document order = result order).
    forward: bool = True
    #: Name of the dual axis (descendant <-> ancestor etc.), used to discuss
    #: axis reversal in the optimizer experiments.
    dual: Optional[str] = None
    #: True when the declarative predicate is an approximation (siblings).
    approximate: bool = False


#: The 12 XPath axes of the full axis feature, keyed by axis name.
AXES: dict[str, AxisSpec] = {
    "child": AxisSpec(
        "child",
        (
            _cond(_ctx("pre"), "<", _node("pre")),
            _cond(_node("pre"), "<=", _ctx("pre", "size")),
            _cond(_ctx("level", offset=1), "=", _node("level")),
        ),
        dual="parent",
    ),
    "descendant": AxisSpec(
        "descendant",
        (
            _cond(_ctx("pre"), "<", _node("pre")),
            _cond(_node("pre"), "<=", _ctx("pre", "size")),
        ),
        dual="ancestor",
    ),
    "descendant-or-self": AxisSpec(
        "descendant-or-self",
        (
            _cond(_ctx("pre"), "<=", _node("pre")),
            _cond(_node("pre"), "<=", _ctx("pre", "size")),
        ),
        dual="ancestor-or-self",
    ),
    "self": AxisSpec(
        "self",
        (_cond(_node("pre"), "=", _ctx("pre")),),
        dual="self",
    ),
    "attribute": AxisSpec(
        "attribute",
        (
            _cond(_ctx("pre"), "<", _node("pre")),
            _cond(_node("pre"), "<=", _ctx("pre", "size")),
            _cond(_ctx("level", offset=1), "=", _node("level")),
        ),
        principal_kind=NodeKind.ATTR.value,
    ),
    "following": AxisSpec(
        "following",
        (_cond(_ctx("pre", "size"), "<", _node("pre")),),
        dual="preceding",
    ),
    "following-sibling": AxisSpec(
        "following-sibling",
        (
            _cond(_ctx("pre", "size"), "<", _node("pre")),
            _cond(_node("level"), "=", _ctx("level")),
        ),
        dual="preceding-sibling",
        approximate=True,
    ),
    "parent": AxisSpec(
        "parent",
        (
            _cond(_node("pre"), "<", _ctx("pre")),
            _cond(_ctx("pre"), "<=", _node("pre", "size")),
            _cond(_node("level", offset=1), "=", _ctx("level")),
        ),
        forward=False,
        dual="child",
    ),
    "ancestor": AxisSpec(
        "ancestor",
        (
            _cond(_node("pre"), "<", _ctx("pre")),
            _cond(_ctx("pre"), "<=", _node("pre", "size")),
        ),
        forward=False,
        dual="descendant",
    ),
    "ancestor-or-self": AxisSpec(
        "ancestor-or-self",
        (
            _cond(_node("pre"), "<=", _ctx("pre")),
            _cond(_ctx("pre"), "<=", _node("pre", "size")),
        ),
        forward=False,
        dual="descendant-or-self",
    ),
    "preceding": AxisSpec(
        "preceding",
        (_cond(_node("pre", "size"), "<", _ctx("pre")),),
        forward=False,
        dual="following",
    ),
    "preceding-sibling": AxisSpec(
        "preceding-sibling",
        (
            _cond(_node("pre", "size"), "<", _ctx("pre")),
            _cond(_node("level"), "=", _ctx("level")),
        ),
        forward=False,
        dual="following-sibling",
        approximate=True,
    ),
}

#: Forward axes (grammar rule [73] of the XQuery specification).
FORWARD_AXES = tuple(name for name, spec in AXES.items() if spec.forward)

#: Reverse axes (grammar rule [76]).
REVERSE_AXES = tuple(name for name, spec in AXES.items() if not spec.forward)


def axis_predicate_spec(axis: str) -> AxisSpec:
    """Return the :class:`AxisSpec` for ``axis`` (raising for unknown axes)."""
    try:
        return AXES[axis]
    except KeyError:
        raise ValueError(f"unknown XPath axis {axis!r}") from None


def node_test_conditions(node_test: str, axis: str) -> list[tuple[str, str, Optional[str]]]:
    """Kind/name equality conjuncts implied by a node test, as in Fig. 3.

    Returns a list of ``(column, op, value)`` triples over the candidate
    node's ``kind`` / ``name`` columns.  ``node_test`` follows the surface
    syntax: a plain name, ``*``, ``text()``, ``node()``, ``comment()``,
    ``element()``, ``attribute()``, ``processing-instruction()`` or
    ``document-node()``.
    """
    spec = axis_predicate_spec(axis)
    if node_test == "node()":
        return []
    if node_test == "text()":
        return [("kind", "=", NodeKind.TEXT.value)]
    if node_test == "comment()":
        return [("kind", "=", NodeKind.COMM.value)]
    if node_test == "processing-instruction()":
        return [("kind", "=", NodeKind.PI.value)]
    if node_test == "document-node()":
        return [("kind", "=", NodeKind.DOC.value)]
    if node_test == "element()":
        return [("kind", "=", NodeKind.ELEM.value)]
    if node_test == "attribute()":
        return [("kind", "=", NodeKind.ATTR.value)]
    if node_test == "*":
        return [("kind", "=", spec.principal_kind)]
    # A plain QName: name test against the axis' principal node kind.
    return [("kind", "=", spec.principal_kind), ("name", "=", node_test)]


def _structurally_related(spec: AxisSpec, ctx: NodeRecord, node: NodeRecord) -> bool:
    return all(condition.holds(ctx, node) for condition in spec.conditions)


def evaluate_axis_naive(
    encoding: DocumentEncoding,
    context_pre: int,
    axis: str,
    node_test: str = "node()",
) -> list[int]:
    """Evaluate ``axis::node_test`` by scanning every record (the seed path).

    This is the executable reading of the declarative Fig. 3 predicates: one
    full pass over ``encoding.records`` per context node.  It is kept as the
    differential baseline for :func:`evaluate_axis` (the index-backed fast
    path) and as the slow side of ``benchmarks/bench_hotpaths.py``.
    """
    spec = axis_predicate_spec(axis)
    ctx = encoding.record(context_pre)
    test_conditions = node_test_conditions(node_test, axis)
    result: list[int] = []
    for record in encoding.records:
        if not _structurally_related(spec, ctx, record):
            continue
        if axis == "attribute":
            if record.kind != NodeKind.ATTR.value:
                continue
        elif axis != "self" and record.kind == NodeKind.ATTR.value and node_test != "attribute()":
            continue
        if axis in ("following-sibling", "preceding-sibling"):
            if encoding.parent(record.pre) != encoding.parent(context_pre):
                continue
        matches = True
        for column, _op, value in test_conditions:
            if getattr(record, column) != value:
                matches = False
                break
        if matches:
            result.append(record.pre)
    return result


def _axis_candidate_pres(
    encoding: DocumentEncoding, ctx: NodeRecord, axis: str
) -> Iterable[int]:
    """``pre`` ranks satisfying the structural axis predicate, ascending.

    Exploits the encoding's geometry instead of scanning all records: a
    subtree is the contiguous ``pre`` range ``(pre°, pre° + size°]``, so the
    descendant-family axes are plain range slices; the level-constrained
    axes (child, attribute, siblings) bisect the per-level index; ancestors
    follow the (index-backed) parent chain.
    """
    pre, size, level = ctx.pre, ctx.size, ctx.level
    if axis == "self":
        return (pre,)
    if axis == "descendant":
        return range(pre + 1, pre + size + 1)
    if axis == "descendant-or-self":
        return range(pre, pre + size + 1)
    if axis in ("child", "attribute"):
        return encoding.level_pres_between(level + 1, pre, pre + size)
    if axis == "following":
        return range(pre + size + 1, len(encoding))
    if axis == "preceding":
        return [
            candidate
            for candidate in range(0, pre)
            if candidate + encoding.record(candidate).size < pre
        ]
    if axis == "following-sibling":
        return encoding.level_pres_between(level, pre + size, len(encoding))
    if axis == "preceding-sibling":
        return [
            candidate
            for candidate in encoding.level_pres_between(level, -1, pre - 1)
            if candidate + encoding.record(candidate).size < pre
        ]
    if axis in ("parent", "ancestor", "ancestor-or-self"):
        chain: list[int] = [pre] if axis == "ancestor-or-self" else []
        current = encoding.parent(pre)
        while current is not None:
            chain.append(current)
            if axis == "parent":
                break
            current = encoding.parent(current)
        chain.reverse()
        return chain
    raise ValueError(f"unknown XPath axis {axis!r}")


def evaluate_axis(
    encoding: DocumentEncoding,
    context_pre: int,
    axis: str,
    node_test: str = "node()",
) -> list[int]:
    """Evaluate ``axis::node_test`` from the context node, exactly.

    Index-backed axis semantics used by tests and the pureXML baseline:
    candidates come from contiguous ``pre`` slices and per-level bisection
    (:func:`_axis_candidate_pres`) rather than a scan of all records, then
    pass the same kind/name filters as :func:`evaluate_axis_naive` — the two
    agree result-for-result, in document order.
    """
    spec = axis_predicate_spec(axis)
    ctx = encoding.record(context_pre)
    test_conditions = node_test_conditions(node_test, axis)
    sibling_axis = axis in ("following-sibling", "preceding-sibling")
    context_parent = encoding.parent(context_pre) if sibling_axis else None
    result: list[int] = []
    for pre in _axis_candidate_pres(encoding, ctx, axis):
        record = encoding.record(pre)
        if axis == "attribute":
            if record.kind != NodeKind.ATTR.value:
                continue
        elif axis != "self" and record.kind == NodeKind.ATTR.value and node_test != "attribute()":
            continue
        if sibling_axis and encoding.parent(pre) != context_parent:
            continue
        matches = True
        for column, _op, value in test_conditions:
            if getattr(record, column) != value:
                matches = False
                break
        if matches:
            result.append(pre)
    return result

"""XML substrate: parsing, infoset model, relational encoding, generators.

This package provides everything the paper assumes about XML documents:

* a small well-formed-XML parser (:mod:`repro.xmldb.parser`),
* an infoset node model (:mod:`repro.xmldb.infoset`),
* the ``pre | size | level | kind | name | value | data`` document encoding
  of Section II-A (:mod:`repro.xmldb.encoding`) together with a serializer
  back to XML text (:mod:`repro.xmldb.serializer`),
* the XPath axis and node-test semantics over that encoding, as in Fig. 3
  (:mod:`repro.xmldb.axes`), and
* deterministic synthetic XMark-like and DBLP-like document generators
  (:mod:`repro.xmldb.generators`).
"""

from repro.xmldb.axes import (
    AXES,
    FORWARD_AXES,
    REVERSE_AXES,
    axis_predicate_spec,
    evaluate_axis,
    evaluate_axis_naive,
)
from repro.xmldb.encoding import DocumentEncoding, NodeRecord, encode_document, encode_documents
from repro.xmldb.infoset import NodeKind, XMLNode, document, element, text
from repro.xmldb.parser import parse_xml
from repro.xmldb.serializer import serialize_node, serialize_subtree

__all__ = [
    "AXES",
    "FORWARD_AXES",
    "REVERSE_AXES",
    "DocumentEncoding",
    "NodeKind",
    "NodeRecord",
    "XMLNode",
    "axis_predicate_spec",
    "document",
    "element",
    "encode_document",
    "encode_documents",
    "evaluate_axis",
    "evaluate_axis_naive",
    "parse_xml",
    "serialize_node",
    "serialize_subtree",
    "text",
]

"""Query engine facade: execute isolated join graphs against the catalog.

Example — extract a join graph through the pipeline and run it here:

>>> from repro.core.pipeline import XQueryProcessor
>>> from repro.xmldb.encoding import encode_document
>>> from repro.xmldb.parser import parse_xml
>>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="t.xml"))
>>> processor = XQueryProcessor(encoding, default_document="t.xml")
>>> graph = processor.compile("//b").join_graph
>>> processor.engine.execute(graph).items()
[2, 4]

Join graphs of prepared queries carry :class:`~repro.core.joingraph.ParameterTerm`
slots; pass ``bindings`` to resolve them at execution time:

>>> prepared = processor.compile(
...     'declare variable $n as xs:decimal external; //b[. > $n]')
>>> processor.engine.execute(prepared.join_graph, bindings={"n": 1.0}).items()
[4]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import PlanningError
from repro.core.joingraph import JoinGraph, PlanTail
from repro.core.sqlgen import aggregate_inner_items
from repro.relational.catalog import Database
from repro.relational.optimizer.planner import PlannedQuery, Planner
from repro.relational.physical.operators import ExecutionContext


@dataclass
class QueryResult:
    """Rows produced by one join-graph execution plus execution counters."""

    rows: list[dict[str, object]]
    plan: PlannedQuery
    rows_scanned: int
    index_probes: int

    def items(self) -> list[object]:
        """The result node sequence (the ``item`` output column, in order)."""
        return [row["item"] for row in self.rows]


class RelationalEngine:
    """Plan and execute join graphs against an in-memory :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        self.planner = Planner(database)

    def _resolve(self, graph: JoinGraph, bindings: Optional[Mapping[str, object]]) -> JoinGraph:
        """Late-bind parameter slots; refuse to plan a graph with open slots."""
        if bindings:
            graph = graph.bind(bindings)
        unbound = graph.parameters()
        if unbound:
            slots = ", ".join(f":{name}" for name in sorted(unbound))
            raise PlanningError(
                f"join graph has unbound parameter(s) {slots}; supply bindings"
            )
        return graph

    def plan(
        self, graph: JoinGraph, bindings: Optional[Mapping[str, object]] = None
    ) -> PlannedQuery:
        """Produce (and return) the physical plan without executing it.

        Planning happens *after* parameter binding, so access-path selection
        and join ordering see the concrete values (the paper's Fig. 11 plan
        for Q2 starts at the ``price > 500`` selection for exactly this
        reason).  For a graph with a pushed-down aggregate the plan covers
        the *inner* bundle — the join-heavy part :meth:`execute` runs and
        whose join order the SQL rendering pins; the aggregation/completion
        tail is described by :meth:`explain`.
        """
        resolved = self._resolve(graph, bindings)
        if resolved.aggregate is not None:
            return self.planner.plan(self._aggregate_inner_graph(resolved))
        return self.planner.plan(resolved)

    def explain(
        self, graph: JoinGraph, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """DB2-style textual explain of the chosen execution plan."""
        resolved = self._resolve(graph, bindings)
        if resolved.aggregate is None:
            return self.planner.plan(resolved).explain()
        spec = resolved.aggregate
        inner = self.planner.plan(self._aggregate_inner_graph(resolved)).explain()
        grouping = "scalar" if spec.is_scalar else f"GROUP BY {spec.group.render()}"
        lines = [f"AGGREGATE {spec.function.upper()} [{grouping}]"]
        lines.extend("  " + line for line in inner.splitlines())
        return "\n".join(lines)

    def execute(
        self,
        graph: JoinGraph,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> QueryResult:
        """Plan and execute ``graph``; raises ``QueryTimeoutError`` on budget overrun."""
        resolved = self._resolve(graph, bindings)
        if resolved.aggregate is not None:
            return self._execute_aggregate(resolved, timeout_seconds)
        planned = self.planner.plan(resolved)
        ctx = ExecutionContext(timeout_seconds)
        rows = list(planned.root.results(ctx))
        return QueryResult(
            rows=rows,
            plan=planned,
            rows_scanned=ctx.rows_scanned,
            index_probes=ctx.index_probes,
        )

    # -- aggregate graphs ---------------------------------------------------------

    @staticmethod
    def _aggregate_inner_graph(graph: JoinGraph) -> JoinGraph:
        """The argument bundle as a plain join graph (all aliases/conditions,
        deduplicated on the aggregate's (group, unit, value) identity)."""
        spec = graph.aggregate
        assert spec is not None
        items, _count_column, _value_column = aggregate_inner_items(spec)
        return JoinGraph(
            aliases=list(graph.aliases),
            table_name=graph.table_name,
            conditions=list(graph.conditions),
            select_items=list(items),
            order_terms=[],
            distinct=True,  # the operator owns its (group, unit, value) dedup
            tail=PlanTail(distinct=True, order_terms=[], output_column="g"),
        )

    def _execute_aggregate(
        self, graph: JoinGraph, timeout_seconds: Optional[float]
    ) -> QueryResult:
        """Execute a graph whose tail aggregates the bundle.

        Mirrors the SQL rendering's two-level shape on the in-tree operators:
        the *inner* bundle (all aliases/conditions, deduplicated on the δ
        identity when the argument was ddo'd) is planned and executed once,
        then folded per group; the *outer* bundle supplies the iteration rows
        — including iterations with no argument rows at all (count/sum
        complete them with 0, avg drops them).
        """
        spec = graph.aggregate
        assert spec is not None
        _items, _count_column, value_column = aggregate_inner_items(spec)
        planned_inner = self.planner.plan(self._aggregate_inner_graph(graph))
        inner_ctx = ExecutionContext(timeout_seconds)
        inner_rows = list(planned_inner.root.results(inner_ctx))

        def fold(rows: list[dict[str, object]]) -> Optional[object]:
            if spec.function == "count":
                return len(rows)
            values = [row[value_column] for row in rows if row[value_column] is not None]
            if spec.function == "sum":
                return sum(values) if values else 0
            return sum(values) / len(values) if values else None  # avg(()) = ()

        if spec.is_scalar:
            value = fold(inner_rows)
            rows = [] if value is None else [{"item": value}]
            return QueryResult(
                rows=rows,
                plan=planned_inner,
                rows_scanned=inner_ctx.rows_scanned,
                index_probes=inner_ctx.index_probes,
            )
        extra_items = list(graph.select_items[1:])
        outer_graph = JoinGraph(
            aliases=graph.aliases[: spec.outer_alias_count],
            table_name=graph.table_name,
            conditions=graph.conditions[: spec.outer_condition_count],
            select_items=[(spec.group, "g")] + extra_items,
            order_terms=list(graph.order_terms),
            distinct=spec.outer_distinct,
            tail=PlanTail(
                distinct=spec.outer_distinct,
                order_terms=list(graph.order_terms),
                output_column="g",
            ),
        )
        planned_outer = self.planner.plan(outer_graph)
        outer_ctx = ExecutionContext(timeout_seconds)
        groups: dict[object, list[dict[str, object]]] = {}
        for row in inner_rows:
            groups.setdefault(row["g"], []).append(row)
        rows = []
        for outer_row in planned_outer.root.results(outer_ctx):
            value = fold(groups.get(outer_row["g"], []))
            if value is None:
                continue
            produced: dict[str, object] = {"item": value}
            for _term, name in extra_items:
                produced[name] = outer_row[name]
            rows.append(produced)
        return QueryResult(
            rows=rows,
            plan=planned_outer,
            rows_scanned=inner_ctx.rows_scanned + outer_ctx.rows_scanned,
            index_probes=inner_ctx.index_probes + outer_ctx.index_probes,
        )

"""Query engine facade: execute isolated join graphs against the catalog.

Example — extract a join graph through the pipeline and run it here:

>>> from repro.core.pipeline import XQueryProcessor
>>> from repro.xmldb.encoding import encode_document
>>> from repro.xmldb.parser import parse_xml
>>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="t.xml"))
>>> processor = XQueryProcessor(encoding, default_document="t.xml")
>>> graph = processor.compile("//b").join_graph
>>> processor.engine.execute(graph).items()
[2, 4]

Join graphs of prepared queries carry :class:`~repro.core.joingraph.ParameterTerm`
slots; pass ``bindings`` to resolve them at execution time:

>>> prepared = processor.compile(
...     'declare variable $n as xs:decimal external; //b[. > $n]')
>>> processor.engine.execute(prepared.join_graph, bindings={"n": 1.0}).items()
[4]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import PlanningError
from repro.core.joingraph import JoinGraph
from repro.relational.catalog import Database
from repro.relational.optimizer.planner import PlannedQuery, Planner
from repro.relational.physical.operators import ExecutionContext


@dataclass
class QueryResult:
    """Rows produced by one join-graph execution plus execution counters."""

    rows: list[dict[str, object]]
    plan: PlannedQuery
    rows_scanned: int
    index_probes: int

    def items(self) -> list[object]:
        """The result node sequence (the ``item`` output column, in order)."""
        return [row["item"] for row in self.rows]


class RelationalEngine:
    """Plan and execute join graphs against an in-memory :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        self.planner = Planner(database)

    def _resolve(self, graph: JoinGraph, bindings: Optional[Mapping[str, object]]) -> JoinGraph:
        """Late-bind parameter slots; refuse to plan a graph with open slots."""
        if bindings:
            graph = graph.bind(bindings)
        unbound = graph.parameters()
        if unbound:
            slots = ", ".join(f":{name}" for name in sorted(unbound))
            raise PlanningError(
                f"join graph has unbound parameter(s) {slots}; supply bindings"
            )
        return graph

    def plan(
        self, graph: JoinGraph, bindings: Optional[Mapping[str, object]] = None
    ) -> PlannedQuery:
        """Produce (and return) the physical plan without executing it.

        Planning happens *after* parameter binding, so access-path selection
        and join ordering see the concrete values (the paper's Fig. 11 plan
        for Q2 starts at the ``price > 500`` selection for exactly this
        reason).
        """
        return self.planner.plan(self._resolve(graph, bindings))

    def explain(
        self, graph: JoinGraph, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """DB2-style textual explain of the chosen execution plan."""
        return self.plan(graph, bindings).explain()

    def execute(
        self,
        graph: JoinGraph,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> QueryResult:
        """Plan and execute ``graph``; raises ``QueryTimeoutError`` on budget overrun."""
        planned = self.plan(graph, bindings)
        ctx = ExecutionContext(timeout_seconds)
        rows = list(planned.root.results(ctx))
        return QueryResult(
            rows=rows,
            plan=planned,
            rows_scanned=ctx.rows_scanned,
            index_probes=ctx.index_probes,
        )

"""Query engine facade: execute isolated join graphs against the catalog.

Example — extract a join graph through the pipeline and run it here:

>>> from repro.core.pipeline import XQueryProcessor
>>> from repro.xmldb.encoding import encode_document
>>> from repro.xmldb.parser import parse_xml
>>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="t.xml"))
>>> processor = XQueryProcessor(encoding, default_document="t.xml")
>>> graph = processor.compile("//b").join_graph
>>> processor.engine.execute(graph).items()
[2, 4]

Join graphs of prepared queries carry :class:`~repro.core.joingraph.ParameterTerm`
slots; pass ``bindings`` to resolve them at execution time:

>>> prepared = processor.compile(
...     'declare variable $n as xs:decimal external; //b[. > $n]')
>>> processor.engine.execute(prepared.join_graph, bindings={"n": 1.0}).items()
[4]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import PlanningError
from repro.algebra import columnar as _columnar
from repro.algebra.columnar import Column
from repro.core.joingraph import ConstantTerm, JoinGraph, PlanTail
from repro.core.sqlgen import aggregate_inner_items, _having_excluded
from repro.relational.catalog import Database
from repro.relational.optimizer.planner import PlannedQuery, Planner
from repro.relational.physical.operators import (
    ExecutionContext,
    Return,
    Sort,
    compile_term_columnar,
)


def _constant_value(term) -> object:
    """The bound comparison value of a window / HAVING filter."""
    if isinstance(term, ConstantTerm):
        return term.value
    raise PlanningError(f"filter value {term!r} is not bound to a constant")


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare(actual: object, op: str, value: object) -> bool:
    """SQL comparison semantics: any comparison against NULL is not-true."""
    if actual is None or value is None:
        return False
    return _COMPARATORS[op](actual, value)


@dataclass
class QueryResult:
    """Rows produced by one join-graph execution plus execution counters."""

    rows: list[dict[str, object]]
    plan: PlannedQuery
    rows_scanned: int
    index_probes: int

    def items(self) -> list[object]:
        """The result node sequence (the ``item`` output column, in order)."""
        return [row["item"] for row in self.rows]


class RelationalEngine:
    """Plan and execute join graphs against an in-memory :class:`Database`.

    ``columnar`` selects the vectorized physical paths (mask scans, columnar
    hash joins, batch rank passes); ``False`` pins the row-at-a-time
    operators, kept as the differential baseline.
    """

    def __init__(self, database: Database, columnar: bool = True):
        self.database = database
        self.columnar = columnar
        self.planner = Planner(database)

    def _context(self, timeout_seconds: Optional[float]) -> ExecutionContext:
        return ExecutionContext(timeout_seconds, columnar=self.columnar)

    def _resolve(self, graph: JoinGraph, bindings: Optional[Mapping[str, object]]) -> JoinGraph:
        """Late-bind parameter slots; refuse to plan a graph with open slots."""
        if bindings:
            graph = graph.bind(bindings)
        unbound = graph.parameters()
        if unbound:
            slots = ", ".join(f":{name}" for name in sorted(unbound))
            raise PlanningError(
                f"join graph has unbound parameter(s) {slots}; supply bindings"
            )
        return graph

    def plan(
        self, graph: JoinGraph, bindings: Optional[Mapping[str, object]] = None
    ) -> PlannedQuery:
        """Produce (and return) the physical plan without executing it.

        Planning happens *after* parameter binding, so access-path selection
        and join ordering see the concrete values (the paper's Fig. 11 plan
        for Q2 starts at the ``price > 500`` selection for exactly this
        reason).  For a graph with a pushed-down aggregate the plan covers
        the *inner* bundle — the join-heavy part :meth:`execute` runs and
        whose join order the SQL rendering pins; the aggregation/completion
        tail is described by :meth:`explain`.
        """
        resolved = self._resolve(graph, bindings)
        if resolved.aggregate is not None:
            return self.planner.plan(self._aggregate_inner_graph(resolved))
        return self.planner.plan(resolved)

    def explain(
        self, graph: JoinGraph, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """DB2-style textual explain of the chosen execution plan."""
        resolved = self._resolve(graph, bindings)
        if resolved.aggregate is None:
            return self.planner.plan(resolved).explain()
        spec = resolved.aggregate
        inner = self.planner.plan(self._aggregate_inner_graph(resolved)).explain()
        grouping = "scalar" if spec.is_scalar else f"GROUP BY {spec.group.render()}"
        lines = [f"AGGREGATE {spec.function.upper()} [{grouping}]"]
        lines.extend("  " + line for line in inner.splitlines())
        return "\n".join(lines)

    def execute(
        self,
        graph: JoinGraph,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> QueryResult:
        """Plan and execute ``graph``; raises ``QueryTimeoutError`` on budget overrun."""
        resolved = self._resolve(graph, bindings)
        if resolved.aggregate is not None:
            return self._execute_aggregate(resolved, timeout_seconds)
        if resolved.windows or resolved.having:
            return self._execute_filtered(resolved, timeout_seconds)
        planned = self.planner.plan(resolved)
        ctx = self._context(timeout_seconds)
        rows = list(planned.root.results(ctx))
        return QueryResult(
            rows=rows,
            plan=planned,
            rows_scanned=ctx.rows_scanned,
            index_probes=ctx.index_probes,
        )

    # -- windowed / having graphs --------------------------------------------------

    def _execute_filtered(
        self, graph: JoinGraph, timeout_seconds: Optional[float]
    ) -> QueryResult:
        """Execute a graph carrying window (positional) or HAVING filters.

        Mirrors the SQL rendering: the *main* block runs without the
        aggregates' argument bundles, with hidden output columns for each
        filter's key terms; every window's dense ranks are computed over
        the window's own alias/condition scope, every where-aggregate is
        folded over its argument bundle, and rows are filtered in order.
        """
        excluded_aliases, excluded_conditions = _having_excluded(graph)
        select_items = list(graph.select_items)
        hidden: list[tuple] = []  # (kind, index, names...)
        for w_index, window in enumerate(graph.windows):
            names = []
            for k_index, term in enumerate(window.spec.key_terms()):
                name = f"_w{w_index}k{k_index}"
                select_items.append((term, name))
                names.append(name)
            hidden.append(("window", w_index, names))
        for h_index, having in enumerate(graph.having):
            name = f"_h{h_index}g"
            select_items.append((having.spec.group, name))
            hidden.append(("having", h_index, [name]))
        main_graph = JoinGraph(
            aliases=[
                alias
                for index, alias in enumerate(graph.aliases)
                if index not in excluded_aliases
            ],
            table_name=graph.table_name,
            conditions=[
                condition
                for index, condition in enumerate(graph.conditions)
                if index not in excluded_conditions
            ],
            select_items=select_items,
            order_terms=list(graph.order_terms),
            distinct=graph.distinct,
            tail=graph.tail,
        )
        planned = self.planner.plan(main_graph)
        ctx = self._context(timeout_seconds)
        rows = list(planned.root.results(ctx))
        scanned, probes = ctx.rows_scanned, ctx.index_probes

        rank_maps: list[dict[tuple, int]] = []
        for window in graph.windows:
            ranks, w_scanned, w_probes = self._window_ranks(graph, window.spec, timeout_seconds)
            rank_maps.append(ranks)
            scanned += w_scanned
            probes += w_probes
        having_maps: list[dict[object, object]] = []
        for having in graph.having:
            folded, h_scanned, h_probes = self._having_values(
                graph, having, excluded_aliases, excluded_conditions, timeout_seconds
            )
            having_maps.append(folded)
            scanned += h_scanned
            probes += h_probes

        kept: list[dict[str, object]] = []
        for row in rows:
            ok = True
            for kind, index, names in hidden:
                if kind == "window":
                    window = graph.windows[index]
                    key = tuple(row[name] for name in names)
                    actual = rank_maps[index].get(key)
                else:
                    having = graph.having[index]
                    actual = having_maps[index].get(
                        row[names[0]], 0 if having.spec.function != "avg" else None
                    )
                    window = having
                if not _compare(actual, window.op, _constant_value(window.value)):
                    ok = False
                    break
            if ok:
                kept.append({k: v for k, v in row.items() if not k.startswith("_")})
        return QueryResult(rows=kept, plan=planned, rows_scanned=scanned, index_probes=probes)

    def _window_ranks(
        self, graph: JoinGraph, spec, timeout_seconds: Optional[float]
    ) -> tuple[dict[tuple, int], int, int]:
        """Dense ranks over the window's scope, keyed by (partition, order).

        The scope is the key terms' join closure within the rank's prefix
        (:meth:`WindowSpec.scope`, shared with the SQL rendering), so
        disconnected prefix components never blow up the rank pass."""
        key_terms = spec.key_terms()
        select_items = [(term, f"k{index}") for index, term in enumerate(key_terms)]
        scope_aliases, scope_conditions = spec.scope(graph)
        scope_graph = JoinGraph(
            aliases=scope_aliases,
            table_name=graph.table_name,
            conditions=scope_conditions,
            select_items=select_items,
            order_terms=[],
            distinct=True,
            tail=PlanTail(distinct=True, order_terms=[], output_column="k0"),
        )
        planned = self.planner.plan(scope_graph)
        ctx = self._context(timeout_seconds)
        partition_width = len(spec.partition)
        partitions: dict[tuple, set[tuple]] = {}
        for key in self._scope_keys(planned, ctx, len(key_terms)):
            partitions.setdefault(key[:partition_width], set()).add(key[partition_width:])
        ranks: dict[tuple, int] = {}
        for partition_key, order_keys in partitions.items():
            for order_key, rank in _columnar.dense_rank_map(order_keys).items():
                ranks[partition_key + order_key] = rank
        return ranks, ctx.rows_scanned, ctx.index_probes

    def _scope_keys(self, planned: PlannedQuery, ctx: ExecutionContext, count: int):
        """Key tuples of a rank/bundle scope query, column-wise when possible.

        The scope plan's tail is ``SORT DISTINCT`` + ``RETURN`` — both
        irrelevant when the keys land in per-partition *sets* — so the
        vectorized path peels them off and evaluates the select terms over
        the child's columnar result, skipping the per-row dict building and
        the Python sort entirely.  Falls back to the row path whenever the
        child cannot produce columns (e.g. index nested-loop plans).
        """
        root = planned.root
        if self.columnar and isinstance(root, Return):
            child = root.child
            if isinstance(child, Sort):
                child = child.child
            if child.can_columnar():
                table = child.as_columnar(ctx)
                slots = child.slots()
                key_lists = []
                for term, _name in root.select_items[:count]:
                    value = compile_term_columnar(term, slots)(table)
                    if isinstance(value, Column):
                        key_lists.append(value.tolist())
                    else:
                        key_lists.append([value] * table.length)
                return zip(*key_lists)
        names = [f"k{index}" for index in range(count)]
        return (tuple(row[name] for name in names) for row in root.results(ctx))

    def _having_values(
        self,
        graph: JoinGraph,
        having,
        excluded_aliases: set,
        excluded_conditions: set,
        timeout_seconds: Optional[float],
    ) -> tuple[dict[object, object], int, int]:
        """Fold one where-aggregate's argument bundle per group value.

        The bundle graph covers the aggregate's outer prefix (minus any
        *other* where-aggregate's argument ranges) plus its own inner
        range, so correlations to the loop aliases resolve while sibling
        aggregates stay out of each other's way.
        """
        spec = having.spec
        own_aliases = set(range(spec.outer_alias_count, having.alias_count))
        own_conditions = set(range(spec.outer_condition_count, having.condition_count))
        alias_indices = [
            index
            for index in range(having.alias_count)
            if index in own_aliases or index not in excluded_aliases
        ]
        condition_indices = [
            index
            for index in range(having.condition_count)
            if index in own_conditions or index not in excluded_conditions
        ]
        items, _count_column, value_column = aggregate_inner_items(spec)
        bundle = JoinGraph(
            aliases=[graph.aliases[index] for index in alias_indices],
            table_name=graph.table_name,
            conditions=[graph.conditions[index] for index in condition_indices],
            select_items=list(items),
            order_terms=[],
            distinct=True,  # the aggregate owns its (group, unit, value) dedup
            tail=PlanTail(distinct=True, order_terms=[], output_column="g"),
        )
        planned = self.planner.plan(bundle)
        ctx = self._context(timeout_seconds)
        groups: dict[object, list[dict[str, object]]] = {}
        for row in planned.root.results(ctx):
            groups.setdefault(row["g"], []).append(row)
        folded: dict[object, object] = {}
        for group, rows in groups.items():
            if spec.function == "count":
                folded[group] = len(rows)
                continue
            values = [row[value_column] for row in rows if row[value_column] is not None]
            if spec.function == "sum":
                folded[group] = sum(values) if values else 0
            else:
                folded[group] = sum(values) / len(values) if values else None
        return folded, ctx.rows_scanned, ctx.index_probes

    # -- aggregate graphs ---------------------------------------------------------

    @staticmethod
    def _aggregate_inner_graph(graph: JoinGraph) -> JoinGraph:
        """The argument bundle as a plain join graph (all aliases/conditions,
        deduplicated on the aggregate's (group, unit, value) identity)."""
        spec = graph.aggregate
        assert spec is not None
        items, _count_column, _value_column = aggregate_inner_items(spec)
        return JoinGraph(
            aliases=list(graph.aliases),
            table_name=graph.table_name,
            conditions=list(graph.conditions),
            select_items=list(items),
            order_terms=[],
            distinct=True,  # the operator owns its (group, unit, value) dedup
            tail=PlanTail(distinct=True, order_terms=[], output_column="g"),
        )

    def _execute_aggregate(
        self, graph: JoinGraph, timeout_seconds: Optional[float]
    ) -> QueryResult:
        """Execute a graph whose tail aggregates the bundle.

        Mirrors the SQL rendering's two-level shape on the in-tree operators:
        the *inner* bundle (all aliases/conditions, deduplicated on the δ
        identity when the argument was ddo'd) is planned and executed once,
        then folded per group; the *outer* bundle supplies the iteration rows
        — including iterations with no argument rows at all (count/sum
        complete them with 0, avg drops them).
        """
        spec = graph.aggregate
        assert spec is not None
        _items, _count_column, value_column = aggregate_inner_items(spec)
        planned_inner = self.planner.plan(self._aggregate_inner_graph(graph))
        inner_ctx = self._context(timeout_seconds)
        inner_rows = list(planned_inner.root.results(inner_ctx))

        def fold(rows: list[dict[str, object]]) -> Optional[object]:
            if spec.function == "count":
                return len(rows)
            values = [row[value_column] for row in rows if row[value_column] is not None]
            if spec.function == "sum":
                return sum(values) if values else 0
            return sum(values) / len(values) if values else None  # avg(()) = ()

        if spec.is_scalar:
            value = fold(inner_rows)
            rows = [] if value is None else [{"item": value}]
            return QueryResult(
                rows=rows,
                plan=planned_inner,
                rows_scanned=inner_ctx.rows_scanned,
                index_probes=inner_ctx.index_probes,
            )
        extra_items = list(graph.select_items[1:])
        outer_graph = JoinGraph(
            aliases=graph.aliases[: spec.outer_alias_count],
            table_name=graph.table_name,
            conditions=graph.conditions[: spec.outer_condition_count],
            select_items=[(spec.group, "g")] + extra_items,
            order_terms=list(graph.order_terms),
            distinct=spec.outer_distinct,
            tail=PlanTail(
                distinct=spec.outer_distinct,
                order_terms=list(graph.order_terms),
                output_column="g",
            ),
        )
        planned_outer = self.planner.plan(outer_graph)
        outer_ctx = self._context(timeout_seconds)
        groups: dict[object, list[dict[str, object]]] = {}
        for row in inner_rows:
            groups.setdefault(row["g"], []).append(row)
        rows = []
        for outer_row in planned_outer.root.results(outer_ctx):
            value = fold(groups.get(outer_row["g"], []))
            if value is None:
                continue
            produced: dict[str, object] = {"item": value}
            for _term, name in extra_items:
                produced[name] = outer_row[name]
            rows.append(produced)
        return QueryResult(
            rows=rows,
            plan=planned_outer,
            rows_scanned=inner_ctx.rows_scanned + outer_ctx.rows_scanned,
            index_probes=inner_ctx.index_probes + outer_ctx.index_probes,
        )

"""Query engine facade: execute isolated join graphs against the catalog."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.joingraph import JoinGraph
from repro.relational.catalog import Database
from repro.relational.optimizer.planner import PlannedQuery, Planner
from repro.relational.physical.operators import ExecutionContext


@dataclass
class QueryResult:
    """Rows produced by one join-graph execution plus execution counters."""

    rows: list[dict[str, object]]
    plan: PlannedQuery
    rows_scanned: int
    index_probes: int

    def items(self) -> list[object]:
        """The result node sequence (the ``item`` output column, in order)."""
        return [row["item"] for row in self.rows]


class RelationalEngine:
    """Plan and execute join graphs against an in-memory :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        self.planner = Planner(database)

    def plan(self, graph: JoinGraph) -> PlannedQuery:
        """Produce (and return) the physical plan without executing it."""
        return self.planner.plan(graph)

    def explain(self, graph: JoinGraph) -> str:
        """DB2-style textual explain of the chosen execution plan."""
        return self.plan(graph).explain()

    def execute(
        self, graph: JoinGraph, timeout_seconds: Optional[float] = None
    ) -> QueryResult:
        """Plan and execute ``graph``; raises ``QueryTimeoutError`` on budget overrun."""
        planned = self.plan(graph)
        ctx = ExecutionContext(timeout_seconds)
        rows = list(planned.root.results(ctx))
        return QueryResult(
            rows=rows,
            plan=planned,
            rows_scanned=ctx.rows_scanned,
            index_probes=ctx.index_probes,
        )

"""A bulk-loaded B+-tree and the composite-key index built on top of it.

The paper's whole point is that *vanilla* B-tree indexes over the ``doc``
encoding suffice to turn an RDBMS into an XQuery processor.  This module
provides exactly that: a textbook B+-tree (sorted leaves linked for range
scans, internal separator nodes) plus :class:`BTreeIndex`, which maps the
tree onto a table — composite key columns (including the computed
``pre + size`` column the paper uses), INCLUDE columns stored on the leaf
entries, and per-prefix statistics used by the optimizer.

Keys are tuples; ``None`` values sort first.  The tree is bulk-loaded from
sorted entries, which matches the one-shot index build after document
loading (the workload is read-only).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.algebra.table import Table

#: Fan-out of the B+-tree (number of entries per leaf / separators per node).
DEFAULT_ORDER = 64

#: Marker for the computed key column ``pre + size`` (column ``s`` in Table VI).
PRE_PLUS_SIZE = "pre+size"


def _orderable(value: object) -> tuple:
    """Map heterogeneous key components onto one totally ordered domain."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def order_key(values: Sequence[object]) -> tuple:
    """The comparable form of a composite key."""
    return tuple(_orderable(value) for value in values)


class _Leaf:
    __slots__ = ("keys", "order_keys", "payloads", "next")

    def __init__(self) -> None:
        self.keys: list[tuple] = []
        #: ``order_key`` form of every entry, decorated once at bulk load —
        #: probes bisect these directly instead of re-decorating the leaf.
        self.order_keys: list[tuple] = []
        self.payloads: list[tuple] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("separators", "children")

    def __init__(self) -> None:
        #: Separators are stored in ``order_key`` (comparable) form.
        self.separators: list[tuple] = []
        self.children: list[object] = []


class BPlusTree:
    """A read-optimised B+-tree over ``(key, payload)`` entries.

    The tree is immutable after the bulk load, so every key's comparable
    ``order_key`` form is computed exactly once — at build time — and
    stored alongside the raw key.  Probes and range scans then bisect the
    precomputed forms; re-decorating a leaf per scan used to dominate
    index-nested-loop join time.
    """

    def __init__(self, entries: Iterable[tuple[tuple, tuple]], order: int = DEFAULT_ORDER):
        self.order = max(4, order)
        decorated = sorted(
            ((order_key(key), key, payload) for key, payload in entries),
            key=lambda entry: entry[0],
        )
        self._size = len(decorated)
        self.root, self.first_leaf = self._bulk_load(decorated)
        self.height = self._measure_height()

    def __len__(self) -> int:
        return self._size

    # -- construction ---------------------------------------------------------------

    def _bulk_load(self, entries: list[tuple[tuple, tuple, tuple]]):
        leaves: list[_Leaf] = []
        for start in range(0, max(len(entries), 1), self.order):
            leaf = _Leaf()
            for comparable, key, payload in entries[start : start + self.order]:
                leaf.order_keys.append(comparable)
                leaf.keys.append(key)
                leaf.payloads.append(payload)
            leaves.append(leaf)
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        level: list[object] = list(leaves)
        level_keys = [leaf.order_keys[0] if leaf.order_keys else () for leaf in leaves]
        while len(level) > 1:
            parents: list[object] = []
            parent_keys: list[tuple] = []
            for start in range(0, len(level), self.order):
                node = _Internal()
                node.children = level[start : start + self.order]
                node.separators = level_keys[start + 1 : start + self.order]
                parents.append(node)
                parent_keys.append(level_keys[start])
            level = parents
            level_keys = parent_keys
        return level[0], leaves[0]

    def _measure_height(self) -> int:
        height = 1
        node = self.root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    # -- search ------------------------------------------------------------------------

    def _descend(self, comparable: tuple) -> _Leaf:
        node = self.root
        while isinstance(node, _Internal):
            # bisect_left, not bisect_right: when the search key equals a
            # separator, duplicates of that key may extend back into the
            # child *left* of the separator, and the range scan walks
            # forward over the leaf chain from there.
            index = bisect.bisect_left(node.separators, comparable)
            node = node.children[index]
        return node  # type: ignore[return-value]

    def scan_range(
        self,
        low: Optional[tuple] = None,
        high: Optional[tuple] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[tuple, tuple]]:
        """Yield ``(key, payload)`` for keys within ``[low, high]`` (prefix compare).

        A bound that is shorter than the full composite key behaves like a
        prefix bound: ``low=(name,)`` starts at the first key with that name.
        """
        low_key = order_key(low) if low is not None else None
        high_key = order_key(high) if high is not None else None
        leaf = self._descend(low_key) if low_key is not None else self.first_leaf
        while leaf is not None:
            leaf_keys = leaf.order_keys
            start = 0
            if low_key is not None:
                start = bisect.bisect_left(leaf_keys, low_key)
            for position in range(start, len(leaf.keys)):
                key_comparable = leaf_keys[position]
                if low_key is not None:
                    prefix = key_comparable[: len(low_key)]
                    if prefix < low_key or (not low_inclusive and prefix == low_key):
                        continue
                if high_key is not None:
                    prefix = key_comparable[: len(high_key)]
                    if prefix > high_key or (not high_inclusive and prefix == high_key):
                        return
                yield leaf.keys[position], leaf.payloads[position]
            leaf = leaf.next

    def scan_all(self) -> Iterator[tuple[tuple, tuple]]:
        """Full scan in key order."""
        return self.scan_range(None, None)


@dataclass
class BTreeIndex:
    """A composite-key B-tree index over one table.

    ``key_columns`` may contain real column names or the computed column
    :data:`PRE_PLUS_SIZE`; ``include_columns`` are carried on the leaves so
    that lookups do not have to touch the base table (the paper's
    ``INCLUDE(·)`` clause on the ``p|nvkls`` index).
    """

    name: str
    table_name: str
    key_columns: tuple[str, ...]
    include_columns: tuple[str, ...] = ()
    clustered: bool = False
    tree: BPlusTree = field(default=None, repr=False)  # type: ignore[assignment]
    #: Distinct key-prefix counts, one entry per key prefix length.
    prefix_cardinalities: tuple[int, ...] = ()
    entry_count: int = 0

    @staticmethod
    def build(
        name: str,
        table_name: str,
        table: Table,
        key_columns: Sequence[str],
        include_columns: Sequence[str] = (),
        clustered: bool = False,
        order: int = DEFAULT_ORDER,
    ) -> "BTreeIndex":
        """Bulk-build the index from the table's current contents."""
        key_columns = tuple(key_columns)
        include_columns = tuple(include_columns)
        key_extractors = [_column_extractor(table, column) for column in key_columns]
        include_indices = [table.column_index(column) for column in include_columns]
        entries = []
        for row_position, row in enumerate(table.rows):
            key = tuple(extract(row) for extract in key_extractors)
            payload = (row_position,) + tuple(row[i] for i in include_indices)
            entries.append((key, payload))
        tree = BPlusTree(entries, order=order)
        prefix_cardinalities = tuple(
            len({key[: depth + 1] for key, _payload in entries})
            for depth in range(len(key_columns))
        )
        return BTreeIndex(
            name=name,
            table_name=table_name,
            key_columns=key_columns,
            include_columns=include_columns,
            clustered=clustered,
            tree=tree,
            prefix_cardinalities=prefix_cardinalities,
            entry_count=len(entries),
        )

    # -- lookups ---------------------------------------------------------------------

    def lookup(self, prefix: Sequence[object]) -> Iterator[int]:
        """Row positions whose key starts with ``prefix`` (equality lookup)."""
        prefix = tuple(prefix)
        for _key, payload in self.tree.scan_range(prefix, prefix):
            yield payload[0]

    def scan(
        self,
        low: Optional[Sequence[object]] = None,
        high: Optional[Sequence[object]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[tuple, int]]:
        """Range scan: yields ``(key, row_position)`` pairs in key order."""
        for key, payload in self.tree.scan_range(
            tuple(low) if low is not None else None,
            tuple(high) if high is not None else None,
            low_inclusive,
            high_inclusive,
        ):
            yield key, payload[0]

    def selectivity_of_prefix(self, depth: int) -> float:
        """Fraction of rows matched by an equality on the first ``depth`` key columns."""
        if depth <= 0 or not self.entry_count:
            return 1.0
        depth = min(depth, len(self.prefix_cardinalities))
        distinct = max(1, self.prefix_cardinalities[depth - 1])
        return 1.0 / distinct

    def describe(self) -> str:
        keys = ", ".join(self.key_columns)
        include = f" INCLUDE({', '.join(self.include_columns)})" if self.include_columns else ""
        clustered = " CLUSTERED" if self.clustered else ""
        return f"{self.name} ON {self.table_name}({keys}){include}{clustered}"


def _column_extractor(table: Table, column: str):
    if column == PRE_PLUS_SIZE:
        pre_index = table.column_index("pre")
        size_index = table.column_index("size")
        return lambda row: row[pre_index] + row[size_index]
    index = table.column_index(column)
    return lambda row: row[index]

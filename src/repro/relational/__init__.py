"""Relational back-end standing in for IBM DB2 V9 (see DESIGN.md).

Sub-modules: :mod:`btree` (B+-tree indexes), :mod:`statistics`,
:mod:`catalog`, :mod:`physical.operators` (TBSCAN/IXSCAN/NLJOIN/HSJOIN/SORT/
RETURN), :mod:`optimizer.planner` (access path selection + join ordering),
:mod:`advisor` (the db2advis stand-in) and :mod:`engine` (the facade).
"""

from repro.relational.advisor import IndexAdvisor, IndexRecommendation, create_table_vi_indexes
from repro.relational.btree import BPlusTree, BTreeIndex, PRE_PLUS_SIZE
from repro.relational.catalog import Database, database_from_encoding
from repro.relational.engine import QueryResult, RelationalEngine
from repro.relational.optimizer.planner import PlannedQuery, Planner
from repro.relational.statistics import TableStats, collect_table_stats

__all__ = [
    "BPlusTree",
    "BTreeIndex",
    "Database",
    "IndexAdvisor",
    "IndexRecommendation",
    "PRE_PLUS_SIZE",
    "PlannedQuery",
    "Planner",
    "QueryResult",
    "RelationalEngine",
    "TableStats",
    "collect_table_stats",
    "create_table_vi_indexes",
    "database_from_encoding",
]

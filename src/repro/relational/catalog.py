"""The database catalog: tables, B-tree indexes and statistics.

The catalog is deliberately small — the join-graph workload only ever needs
one base table (``doc``) — but it is a proper catalog: any number of tables
and indexes, statistics collection, and index maintenance hooks used by the
advisor and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import CatalogError
from repro.algebra.table import Table
from repro.relational.btree import BTreeIndex
from repro.relational.statistics import TableStats, collect_table_stats
from repro.xmldb.encoding import DOC_COLUMNS, DocumentEncoding


@dataclass
class Database:
    """An in-memory database: named tables, their indexes and statistics."""

    tables: dict[str, Table] = field(default_factory=dict)
    indexes: dict[str, BTreeIndex] = field(default_factory=dict)
    statistics: dict[str, TableStats] = field(default_factory=dict)

    # -- tables ----------------------------------------------------------------------

    def create_table(self, name: str, table: Table, collect_stats: bool = True) -> Table:
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        self.tables[name] = table
        if collect_stats:
            self.statistics[name] = collect_table_stats(name, table)
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_stats(self, name: str) -> TableStats:
        if name not in self.statistics:
            self.statistics[name] = collect_table_stats(name, self.table(name))
        return self.statistics[name]

    def analyze(self, name: Optional[str] = None) -> None:
        """(Re-)collect statistics for one table or for all tables."""
        names = [name] if name else list(self.tables)
        for table_name in names:
            self.statistics[table_name] = collect_table_stats(table_name, self.table(table_name))

    # -- indexes ----------------------------------------------------------------------

    def create_index(
        self,
        name: str,
        table_name: str,
        key_columns: Sequence[str],
        include_columns: Sequence[str] = (),
        clustered: bool = False,
    ) -> BTreeIndex:
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists")
        index = BTreeIndex.build(
            name=name,
            table_name=table_name,
            table=self.table(table_name),
            key_columns=key_columns,
            include_columns=include_columns,
            clustered=clustered,
        )
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self.indexes[name]

    def indexes_on(self, table_name: str) -> list[BTreeIndex]:
        return [index for index in self.indexes.values() if index.table_name == table_name]

    def index(self, name: str) -> BTreeIndex:
        try:
            return self.indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None


def database_from_encoding(
    encoding: DocumentEncoding, table_name: str = "doc", with_default_indexes: bool = True
) -> Database:
    """Build a :class:`Database` hosting the XML infoset encoding.

    With ``with_default_indexes`` the paper's Table VI index set is created
    (see :func:`repro.relational.advisor.TABLE_VI_INDEXES`); pass ``False``
    to start from the bare primary-key index only (the ablation experiment
    compares the two setups).
    """
    from repro.relational.advisor import create_table_vi_indexes  # cyclic-import guard

    database = Database()
    database.create_table(table_name, Table(DOC_COLUMNS, encoding.rows()))
    database.create_index(f"{table_name}_pk_pre", table_name, ("pre",), clustered=True)
    if with_default_indexes:
        create_table_vi_indexes(database, table_name)
    return database

"""Workload-driven B-tree index advisor (the paper's ``db2advis`` stand-in).

Section IV of the paper lets DB2's design advisor propose a set of vanilla
B-tree indexes for the join-graph workload (Table VI).  The advisor here
follows the same reasoning on our side of the fence:

* every alias of every join graph in the workload is characterised by its
  equality columns (``kind`` / ``name`` / ``level`` / ``value`` / ``data``),
  its range columns (``pre``, ``pre + size``) and the columns the query
  outputs or orders by;
* each characteristic pattern is turned into a composite-key index whose
  key puts the low-cardinality equality columns first and the range column
  last — the name-prefixed partitioned B-trees the paper discusses;
* a clustered ``pre``-keyed index with all remaining columns as INCLUDE
  columns supports serialization (the paper's ``p|nvkls``).

:data:`TABLE_VI_INDEXES` is the static equivalent of the paper's Table VI
and is what :func:`repro.relational.catalog.database_from_encoding` installs
by default; :class:`IndexAdvisor` re-derives (a superset of) it from an
actual workload, which is what the Table VI benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.joingraph import ColumnTerm, ConstantTerm, JoinGraph, SumTerm
from repro.relational.btree import PRE_PLUS_SIZE
from repro.relational.catalog import Database

#: The default index set mirroring the paper's Table VI proposals.
#: (key letters: n=name, k=kind, l=level, p=pre, s=pre+size, v=value, d=data)
TABLE_VI_INDEXES: tuple[tuple[str, tuple[str, ...], tuple[str, ...], bool], ...] = (
    ("idx_nkpl", ("name", "kind", "pre", "level"), (), False),
    ("idx_nklp", ("name", "kind", "level", "pre"), (), False),
    ("idx_nksp", ("name", "kind", PRE_PLUS_SIZE, "pre"), (), False),
    ("idx_vnkp", ("value", "name", "kind", "pre"), (), False),
    ("idx_nkdp", ("name", "kind", "data", "pre"), ("level",), False),
    ("idx_p_nvkls", ("pre",), ("name", "value", "kind", "level", "size"), True),
)


def create_table_vi_indexes(database: Database, table_name: str = "doc") -> list[str]:
    """Create the Table VI default index set; returns the index names created."""
    created = []
    for name, key_columns, include_columns, clustered in TABLE_VI_INDEXES:
        index_name = f"{table_name}_{name}"
        if index_name in database.indexes:
            continue
        database.create_index(index_name, table_name, key_columns, include_columns, clustered)
        created.append(index_name)
    return created


@dataclass(frozen=True)
class IndexRecommendation:
    """One proposed index."""

    key_columns: tuple[str, ...]
    include_columns: tuple[str, ...] = ()
    clustered: bool = False
    reason: str = ""

    def short_name(self) -> str:
        letters = {
            "name": "n", "kind": "k", "level": "l", "pre": "p",
            PRE_PLUS_SIZE: "s", "value": "v", "data": "d", "size": "s",
        }
        return "".join(letters.get(column, column[0]) for column in self.key_columns)


@dataclass
class IndexAdvisor:
    """Derive index recommendations from a join-graph workload."""

    table_name: str = "doc"
    recommendations: list[IndexRecommendation] = field(default_factory=list)

    def advise(self, workload: Iterable[JoinGraph]) -> list[IndexRecommendation]:
        """Analyse the workload and return the deduplicated recommendations."""
        seen: set[tuple] = set()
        result: list[IndexRecommendation] = []

        def add(recommendation: IndexRecommendation) -> None:
            signature = (recommendation.key_columns, recommendation.clustered)
            if signature not in seen:
                seen.add(signature)
                result.append(recommendation)

        for graph in workload:
            for alias in graph.aliases:
                equalities, ranges, values = self._alias_pattern(graph, alias)
                key: list[str] = []
                for column in ("name", "kind", "level"):
                    if column in equalities:
                        key.append(column)
                for column in ("value", "data"):
                    if column in values:
                        key.append(column)
                for column in ("pre", PRE_PLUS_SIZE):
                    if column in ranges:
                        key.append(column)
                if "pre" not in key:
                    key.append("pre")
                if len(key) > 1:
                    add(
                        IndexRecommendation(
                            tuple(key),
                            reason=f"node test / axis step access for alias {alias}",
                        )
                    )
            # Ordering / serialization support: a clustered pre-keyed covering index.
            add(
                IndexRecommendation(
                    ("pre",),
                    include_columns=("name", "value", "kind", "level", "size"),
                    clustered=True,
                    reason="serialization in document order",
                )
            )
        self.recommendations = result
        return result

    def _alias_pattern(
        self, graph: JoinGraph, alias: str
    ) -> tuple[set[str], set[str], set[str]]:
        equalities: set[str] = set()
        ranges: set[str] = set()
        values: set[str] = set()
        for condition in graph.conditions:
            for side, other in ((condition.left, condition.right), (condition.right, condition.left)):
                column = _alias_column(side, alias)
                if column is None:
                    continue
                is_constant = isinstance(other, ConstantTerm)
                if condition.op == "=" and is_constant:
                    if column in ("value", "data"):
                        values.add(column)
                    else:
                        equalities.add(column)
                elif condition.op == "=":
                    if column in ("value", "data"):
                        values.add(column)
                    else:
                        equalities.add(column)
                else:
                    if column in ("value", "data"):
                        values.add(column)
                    else:
                        ranges.add(column)
        return equalities, ranges, values

    def apply(self, database: Database) -> list[str]:
        """Create the recommended indexes in ``database``; returns their names."""
        created = []
        for position, recommendation in enumerate(self.recommendations, start=1):
            name = f"{self.table_name}_advis_{recommendation.short_name()}_{position}"
            if name in database.indexes:
                continue
            database.create_index(
                name,
                self.table_name,
                recommendation.key_columns,
                recommendation.include_columns,
                recommendation.clustered,
            )
            created.append(name)
        return created

    def report(self) -> str:
        """A Table VI-style textual report of the recommendations."""
        lines = ["Index key columns | deployment"]
        for recommendation in self.recommendations:
            include = (
                f" INCLUDE({', '.join(recommendation.include_columns)})"
                if recommendation.include_columns
                else ""
            )
            clustered = " CLUSTERED" if recommendation.clustered else ""
            lines.append(
                f"{recommendation.short_name():>8}  ({', '.join(recommendation.key_columns)})"
                f"{include}{clustered}  -- {recommendation.reason}"
            )
        return "\n".join(lines)


def _alias_column(term, alias: str):
    if isinstance(term, ColumnTerm) and term.alias == alias:
        return term.column
    if isinstance(term, SumTerm) and len(term.terms) == 2:
        first, second = term.terms
        if (
            isinstance(first, ColumnTerm)
            and isinstance(second, ColumnTerm)
            and first.alias == alias == second.alias
            and {first.column, second.column} == {"pre", "size"}
        ):
            return PRE_PLUS_SIZE
    return None

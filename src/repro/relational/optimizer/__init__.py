"""Cost-based optimizer: selectivity estimation, access paths, join ordering."""

from repro.relational.optimizer.planner import PlannedQuery, Planner

__all__ = ["PlannedQuery", "Planner"]

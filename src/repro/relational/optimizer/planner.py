"""Cost-based planning of join graph queries.

Given a :class:`~repro.core.joingraph.JoinGraph`, the planner performs the
two decisions the paper credits the off-the-shelf optimizer with:

* **access path selection** — for every ``doc`` alias, pick the B-tree whose
  key prefix covers the alias' equality predicates (name / kind / level /
  value / data) plus at most one range bound (``pre`` or ``pre + size``);
* **join ordering** — greedily start from the alias with the smallest
  estimated cardinality (driven by the tag-name / value statistics, which is
  what makes the plan start at ``price > 500`` in Q2, cf. Fig. 11) and
  repeatedly attach the cheapest connected alias, preferring index
  nested-loop joins over hash joins over residual filters.

The resulting plan is a tree of the physical operators of Table VII and can
be explained in a DB2-like textual form (used by the Fig. 10 / Fig. 11
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlanningError
from repro.core.joingraph import ColumnTerm, Condition, ConstantTerm, JoinGraph, SumTerm, Term
from repro.relational.btree import PRE_PLUS_SIZE, BTreeIndex
from repro.relational.catalog import Database
from repro.relational.physical.operators import (
    Filter,
    HashJoin,
    IndexBound,
    IndexNestedLoopJoin,
    IndexScan,
    PhysicalOperator,
    Return,
    Sort,
    TableScan,
)
from repro.relational.statistics import DEFAULT_SELECTIVITY

_RANGE_OPS = {"<", "<=", ">", ">="}


def _term_alias_column(term: Term) -> Optional[tuple[str, str]]:
    """Resolve a term to ``(alias, key_column)`` if it is indexable."""
    if isinstance(term, ColumnTerm):
        return term.alias, term.column
    if isinstance(term, SumTerm) and len(term.terms) == 2:
        first, second = term.terms
        if (
            isinstance(first, ColumnTerm)
            and isinstance(second, ColumnTerm)
            and first.alias == second.alias
            and {first.column, second.column} == {"pre", "size"}
        ):
            return first.alias, PRE_PLUS_SIZE
    return None


def _references_only(term: Term, aliases: set[str]) -> bool:
    if isinstance(term, ColumnTerm):
        return term.alias in aliases
    if isinstance(term, SumTerm):
        return all(_references_only(part, aliases) for part in term.terms)
    return True  # constants


@dataclass
class PlannedQuery:
    """The optimizer's output: a physical plan plus its explain rendering."""

    root: Return
    join_order: list[str]
    graph: JoinGraph

    def explain(self) -> str:
        return self.root.explain()


@dataclass
class Planner:
    """Greedy selectivity-driven planner over a :class:`Database`."""

    database: Database

    # -- cardinality estimation ---------------------------------------------------------

    def _local_selectivity(self, condition: Condition, table_name: str) -> float:
        stats = self.database.table_stats(table_name)
        for side, other in ((condition.left, condition.right), (condition.right, condition.left)):
            resolved = _term_alias_column(side)
            if resolved is None or not isinstance(other, ConstantTerm):
                continue
            _alias, column = resolved
            if column == PRE_PLUS_SIZE:
                column = "pre"
            if condition.op == "=":
                return stats.equality_selectivity(column, other.value)
            if condition.op in _RANGE_OPS:
                if condition.op in (">", ">="):
                    low, high = (other.value, None) if side is condition.left else (None, other.value)
                else:
                    low, high = (None, other.value) if side is condition.left else (other.value, None)
                return stats.range_selectivity(column, low, high)
        return DEFAULT_SELECTIVITY

    def _alias_cardinality(self, graph: JoinGraph, alias: str) -> float:
        stats = self.database.table_stats(graph.table_name)
        cardinality = float(stats.row_count)
        for condition in graph.conditions_for(alias):
            cardinality *= self._local_selectivity(condition, graph.table_name)
        return max(cardinality, 0.01)

    # -- access path selection ------------------------------------------------------------

    def _bounds_for(
        self, alias: str, conditions: list[Condition], outer_aliases: set[str]
    ) -> tuple[dict[str, list[IndexBound]], list[Condition]]:
        """Classify conditions into per-key-column bounds for alias ``alias``."""
        bounds: dict[str, list[IndexBound]] = {}
        usable: list[Condition] = []
        for condition in conditions:
            for side, other in (
                (condition.left, condition.right),
                (condition.right, condition.left),
            ):
                resolved = _term_alias_column(side)
                if resolved is None or resolved[0] != alias:
                    continue
                if not _references_only(other, outer_aliases):
                    continue
                column = resolved[1]
                op = condition.op if side is condition.left else _flip(condition.op)
                if op == "=":
                    bounds.setdefault(column, []).append(
                        IndexBound(column, "eq", other, source=condition)
                    )
                elif op in (">", ">="):
                    bounds.setdefault(column, []).append(
                        IndexBound(column, "low", other, inclusive=(op == ">="), source=condition)
                    )
                elif op in ("<", "<="):
                    bounds.setdefault(column, []).append(
                        IndexBound(column, "high", other, inclusive=(op == "<="), source=condition)
                    )
                else:
                    continue
                usable.append(condition)
                break
        return bounds, usable

    def _choose_index(
        self, graph: JoinGraph, alias: str, bounds: dict[str, list[IndexBound]]
    ) -> Optional[tuple[BTreeIndex, list[IndexBound], float]]:
        """Pick the index with the longest usable key prefix for the bounds."""
        best: Optional[tuple[BTreeIndex, list[IndexBound], float, float]] = None
        for index in self.database.indexes_on(graph.table_name):
            chosen: list[IndexBound] = []
            score = 0.0
            selectivity = 1.0
            for depth, column in enumerate(index.key_columns):
                column_bounds = bounds.get(column, [])
                eq = next((b for b in column_bounds if b.kind == "eq"), None)
                if eq is not None:
                    chosen.append(eq)
                    score += 1.0
                    selectivity = index.selectivity_of_prefix(depth + 1)
                    continue
                ranged = [b for b in column_bounds if b.kind in ("low", "high")]
                if ranged:
                    chosen.extend(ranged)
                    score += 0.5
                    selectivity *= 0.3
                break
            if not chosen:
                continue
            candidate = (index, chosen, score, selectivity)
            if best is None or (score, -selectivity) > (best[2], -best[3]):
                best = candidate
        if best is None:
            return None
        return best[0], best[1], best[3]

    # -- planning -----------------------------------------------------------------------------

    def plan(self, graph: JoinGraph) -> PlannedQuery:
        if not graph.aliases:
            raise PlanningError("the join graph has no doc references")
        table = self.database.table(graph.table_name)
        cardinalities = {alias: self._alias_cardinality(graph, alias) for alias in graph.aliases}
        remaining = set(graph.aliases)
        consumed: set[int] = set()
        start = min(remaining, key=lambda alias: cardinalities[alias])
        current = self._access_path(graph, start, consumed, cardinalities[start])
        joined = {start}
        join_order = [start]
        remaining.discard(start)
        while remaining:
            candidates = [
                alias
                for alias in remaining
                if any(
                    alias in condition.aliases() and condition.aliases() - {alias} <= joined
                    for condition in graph.join_conditions()
                )
            ]
            if not candidates:
                candidates = list(remaining)
            alias = min(candidates, key=lambda a: cardinalities[a])
            current = self._join_alias(graph, current, joined, alias, consumed, cardinalities)
            joined.add(alias)
            join_order.append(alias)
            remaining.discard(alias)
        leftovers = [
            condition
            for condition in graph.conditions
            if id(condition) not in consumed
        ]
        if leftovers:
            current = Filter(current, leftovers)
        sort = Sort(
            current,
            order_terms=list(graph.order_terms),
            select_items=list(graph.select_items),
            distinct=graph.distinct,
        )
        return PlannedQuery(Return(sort, list(graph.select_items)), join_order, graph)

    def _access_path(
        self, graph: JoinGraph, alias: str, consumed: set[int], estimate: float
    ) -> PhysicalOperator:
        table = self.database.table(graph.table_name)
        local = graph.conditions_for(alias)
        bounds, usable = self._bounds_for(alias, local, set())
        choice = self._choose_index(graph, alias, bounds)
        if choice is None:
            for condition in local:
                consumed.add(id(condition))
            return TableScan(table, alias, local, estimated_rows=estimate)
        index, chosen, _selectivity = choice
        bound_ids = {id(b.term) for b in chosen}
        residual = [c for c in local if not _condition_covered(c, chosen)]
        for condition in local:
            consumed.add(id(condition))
        return IndexScan(index, table, alias, chosen, residual, estimated_rows=estimate)

    def _join_alias(
        self,
        graph: JoinGraph,
        outer: PhysicalOperator,
        joined: set[str],
        alias: str,
        consumed: set[int],
        cardinalities: dict[str, float],
    ) -> PhysicalOperator:
        table = self.database.table(graph.table_name)
        connecting = [
            condition
            for condition in graph.conditions
            if id(condition) not in consumed
            and alias in condition.aliases()
            and condition.aliases() <= joined | {alias}
        ]
        bounds, _usable = self._bounds_for(alias, connecting, joined)
        choice = self._choose_index(graph, alias, bounds)
        if choice is not None:
            index, chosen, _selectivity = choice
            residual = [c for c in connecting if not _condition_covered(c, chosen)]
            for condition in connecting:
                consumed.add(id(condition))
            return IndexNestedLoopJoin(
                outer, index, table, alias, chosen, residual,
                estimated_rows=cardinalities[alias],
            )
        equalities = [
            condition
            for condition in connecting
            if condition.op == "="
            and _term_alias_column(condition.left) is not None
            and _term_alias_column(condition.right) is not None
        ]
        inner_local = graph.conditions_for(alias)
        inner = TableScan(table, alias, inner_local, estimated_rows=cardinalities[alias])
        for condition in inner_local:
            consumed.add(id(condition))
        if equalities:
            outer_terms, inner_terms = [], []
            for condition in equalities:
                left_info = _term_alias_column(condition.left)
                if left_info and left_info[0] == alias:
                    inner_terms.append(condition.left)
                    outer_terms.append(condition.right)
                else:
                    inner_terms.append(condition.right)
                    outer_terms.append(condition.left)
            residual = [c for c in connecting if c not in equalities]
            for condition in connecting:
                consumed.add(id(condition))
            return HashJoin(outer, inner, outer_terms, inner_terms, residual)
        for condition in connecting:
            consumed.add(id(condition))
        joined_scan = HashJoin(outer, inner, [], [], connecting)
        return joined_scan


def _condition_covered(condition: Condition, bounds: list[IndexBound]) -> bool:
    """True when the condition is fully represented by one of the chosen bounds."""
    sources = {id(bound.source) for bound in bounds if bound.source is not None}
    return id(condition) in sources


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]

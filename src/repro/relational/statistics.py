"""Table and column statistics plus selectivity estimation.

The optimizer's decisions (access path selection, join ordering, the step
reordering / axis reversal effects of Section IV-A) are driven by exactly
the statistics a conventional RDBMS collects: row counts, per-column
distinct counts, min/max bounds and equi-depth histograms for the value
columns.  Tag-name and kind distributions are captured automatically since
``name`` and ``kind`` are ordinary columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.algebra.table import Table

#: Default selectivity for predicates the estimator cannot analyse.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Number of buckets of the equi-depth histograms.
HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStats:
    """Statistics of one column."""

    name: str
    n_rows: int
    n_nulls: int
    n_distinct: int
    minimum: Optional[object]
    maximum: Optional[object]
    histogram: list[object] = field(default_factory=list)
    most_common: list[tuple[object, int]] = field(default_factory=list)

    def equality_selectivity(self, value: object) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if self.n_rows == 0:
            return 0.0
        for candidate, count in self.most_common:
            if candidate == value:
                return count / self.n_rows
        if self.n_distinct == 0:
            return 0.0
        return min(1.0, 1.0 / self.n_distinct)

    def range_selectivity(self, low: Optional[object], high: Optional[object]) -> float:
        """Estimated fraction of rows with ``low <= column <= high``."""
        if self.n_rows == 0:
            return 0.0
        if not self.histogram:
            return DEFAULT_SELECTIVITY
        total = len(self.histogram)
        covered = 0
        for value in self.histogram:
            if value is None:
                continue
            if low is not None and _less(value, low):
                continue
            if high is not None and _less(high, value):
                continue
            covered += 1
        if covered == 0:
            return 1.0 / max(self.n_rows, 1)
        return covered / total


def _less(left: object, right: object) -> bool:
    try:
        return left < right  # type: ignore[operator]
    except TypeError:
        return str(left) < str(right)


@dataclass
class TableStats:
    """Statistics of one table (row count + per-column statistics)."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def equality_selectivity(self, column: str, value: object) -> float:
        stats = self.column(column)
        if stats is None:
            return DEFAULT_SELECTIVITY
        return stats.equality_selectivity(value)

    def range_selectivity(
        self, column: str, low: Optional[object], high: Optional[object]
    ) -> float:
        stats = self.column(column)
        if stats is None:
            return DEFAULT_SELECTIVITY
        return stats.range_selectivity(low, high)


def collect_table_stats(
    table_name: str, table: Table, most_common_count: int = 10
) -> TableStats:
    """Scan the table once and build :class:`TableStats` for every column."""
    column_stats: dict[str, ColumnStats] = {}
    n_rows = len(table.rows)
    for position, column in enumerate(table.columns):
        values = [row[position] for row in table.rows]
        non_null = [value for value in values if value is not None]
        counts: dict[object, int] = {}
        for value in non_null:
            counts[value] = counts.get(value, 0) + 1
        most_common = sorted(counts.items(), key=lambda item: -item[1])[:most_common_count]
        histogram = _equi_depth_histogram(non_null)
        column_stats[column] = ColumnStats(
            name=column,
            n_rows=n_rows,
            n_nulls=n_rows - len(non_null),
            n_distinct=len(counts),
            minimum=min(non_null, key=_sort_key) if non_null else None,
            maximum=max(non_null, key=_sort_key) if non_null else None,
            histogram=histogram,
            most_common=most_common,
        )
    return TableStats(table_name=table_name, row_count=n_rows, columns=column_stats)


def _sort_key(value: object):
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value)
    return (1, str(value))


def _equi_depth_histogram(values: Sequence[object], buckets: int = HISTOGRAM_BUCKETS) -> list[object]:
    if not values:
        return []
    ordered = sorted(values, key=_sort_key)
    if len(ordered) <= buckets:
        return list(ordered)
    step = len(ordered) / buckets
    return [ordered[min(len(ordered) - 1, int(round(index * step)))] for index in range(buckets)]

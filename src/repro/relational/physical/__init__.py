"""Physical operators of the relational back-end (the engine's Table VII)."""

from repro.relational.physical.operators import (
    ExecutionContext,
    Filter,
    HashJoin,
    IndexBound,
    IndexNestedLoopJoin,
    IndexScan,
    PhysicalOperator,
    Return,
    SlotMap,
    Sort,
    TableScan,
    compile_condition,
    compile_conditions,
    compile_term,
)

__all__ = [
    "ExecutionContext",
    "Filter",
    "HashJoin",
    "IndexBound",
    "IndexNestedLoopJoin",
    "IndexScan",
    "PhysicalOperator",
    "Return",
    "SlotMap",
    "Sort",
    "TableScan",
    "compile_condition",
    "compile_conditions",
    "compile_term",
]

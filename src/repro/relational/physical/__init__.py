"""Physical operators of the relational back-end (the engine's Table VII)."""

from repro.relational.physical.operators import (
    ExecutionContext,
    Filter,
    HashJoin,
    IndexBound,
    IndexNestedLoopJoin,
    IndexScan,
    PhysicalOperator,
    Return,
    Sort,
    TableScan,
)

__all__ = [
    "ExecutionContext",
    "Filter",
    "HashJoin",
    "IndexBound",
    "IndexNestedLoopJoin",
    "IndexScan",
    "PhysicalOperator",
    "Return",
    "Sort",
    "TableScan",
]

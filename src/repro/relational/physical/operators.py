"""Physical query operators (the engine's counterpart of Table VII).

The operator names deliberately follow DB2's explain vocabulary so that the
execution-plan experiments (Fig. 10 / Fig. 11) read like the paper:

=========  =====================================================
TBSCAN      full table scan (+ residual predicate)
IXSCAN      B-tree index scan (equality prefix + one range bound)
NLJOIN      index nested-loop join (outer rows drive index probes)
HSJOIN      hash join (build on the inner input, probe with the outer)
FILTER      residual predicate evaluation
SORT        sort on the ORDER BY terms (+ duplicate elimination)
RETURN      final projection to the query's select list
=========  =====================================================

Rows are dictionaries keyed by ``(alias, column)`` so that the self-join
aliases of the join graph stay separate.  All operators are iterators; the
plan is fully pipelined except for SORT and the build side of HSJOIN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError, QueryTimeoutError
from repro.algebra.table import Table
from repro.core.joingraph import ColumnTerm, Condition, ConstantTerm, SumTerm, Term
from repro.relational.btree import PRE_PLUS_SIZE, BTreeIndex

Row = dict[tuple[str, str], object]


class ExecutionContext:
    """Shared run-time state: deadline checks and operator counters."""

    def __init__(self, timeout_seconds: Optional[float] = None):
        self.timeout_seconds = timeout_seconds
        self.deadline = (
            time.perf_counter() + timeout_seconds if timeout_seconds is not None else None
        )
        self.rows_scanned = 0
        self.index_probes = 0

    def check(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            elapsed = (self.timeout_seconds or 0.0) + (time.perf_counter() - self.deadline)
            raise QueryTimeoutError(self.timeout_seconds or 0.0, elapsed)


def evaluate_term(term: Term, row: Row) -> object:
    """Evaluate a join-graph term against a physical row."""
    if isinstance(term, ColumnTerm):
        return row.get((term.alias, term.column))
    if isinstance(term, ConstantTerm):
        return term.value
    if isinstance(term, SumTerm):
        total = 0
        for part in term.terms:
            value = evaluate_term(part, row)
            if value is None:
                return None
            total += value  # type: ignore[operator]
        return total
    raise ExecutionError(f"cannot evaluate term {term!r}")


def evaluate_condition(condition: Condition, row: Row) -> bool:
    left = evaluate_term(condition.left, row)
    right = evaluate_term(condition.right, row)
    if left is None or right is None:
        return False
    op = condition.op
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return False
    raise ExecutionError(f"unknown comparison operator {op!r}")


@dataclass
class PhysicalOperator:
    """Base class: every operator yields rows and can explain itself."""

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


def _table_row(table: Table, alias: str, position: int) -> Row:
    row = table.rows[position]
    return {(alias, column): row[index] for index, column in enumerate(table.columns)}


@dataclass
class TableScan(PhysicalOperator):
    """TBSCAN — scan the base table, applying residual conditions."""

    table: Table
    alias: str
    conditions: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        for position in range(len(self.table.rows)):
            ctx.check()
            ctx.rows_scanned += 1
            row = _table_row(self.table, self.alias, position)
            if all(evaluate_condition(c, row) for c in self.conditions):
                yield row

    def describe(self) -> str:
        predicate = " ".join(c.render() for c in self.conditions)
        suffix = f" [{predicate}]" if predicate else ""
        return f"TBSCAN({self.alias}){suffix}"


@dataclass
class IndexBound:
    """One bound on an index key column, evaluated per outer row (or constant)."""

    column: str
    kind: str  # "eq", "low", "high"
    term: Term
    inclusive: bool = True
    #: The join-graph condition this bound enforces (used by the planner to
    #: decide which conditions still need residual evaluation).
    source: object = None


@dataclass
class IndexScan(PhysicalOperator):
    """IXSCAN — B-tree access with a constant equality prefix and range bound."""

    index: BTreeIndex
    table: Table
    alias: str
    bounds: list[IndexBound] = field(default_factory=list)
    residual: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        empty: Row = {}
        yield from probe_index(
            ctx, self.index, self.table, self.alias, self.bounds, self.residual, empty
        )

    def describe(self) -> str:
        keys = ",".join(self.index.key_columns)
        bound = ", ".join(f"{b.column}{'=' if b.kind == 'eq' else b.kind}" for b in self.bounds)
        residual = f" residual={len(self.residual)}" if self.residual else ""
        return f"IXSCAN({self.alias}) index={self.index.name}({keys}) bounds[{bound}]{residual}"


def probe_index(
    ctx: ExecutionContext,
    index: BTreeIndex,
    table: Table,
    alias: str,
    bounds: list[IndexBound],
    residual: list[Condition],
    outer_row: Row,
) -> Iterator[Row]:
    """Probe a B-tree with bounds evaluated against ``outer_row``."""
    ctx.index_probes += 1
    equalities: dict[str, object] = {}
    low_extra: Optional[tuple[object, bool]] = None
    high_extra: Optional[tuple[object, bool]] = None
    range_column: Optional[str] = None
    for bound in bounds:
        value = evaluate_term(bound.term, outer_row)
        if value is None:
            return
        if bound.kind == "eq":
            equalities[bound.column] = value
        elif bound.kind == "low":
            range_column = bound.column
            if low_extra is None or value > low_extra[0]:  # type: ignore[operator]
                low_extra = (value, bound.inclusive)
        else:
            range_column = bound.column
            if high_extra is None or value < high_extra[0]:  # type: ignore[operator]
                high_extra = (value, bound.inclusive)
    prefix = []
    for column in index.key_columns:
        if column in equalities:
            prefix.append(equalities[column])
        else:
            break
    low = list(prefix)
    high = list(prefix)
    low_inclusive = high_inclusive = True
    next_column = (
        index.key_columns[len(prefix)] if len(prefix) < len(index.key_columns) else None
    )
    if range_column is not None and next_column == range_column:
        if low_extra is not None:
            low.append(low_extra[0])
            low_inclusive = low_extra[1]
        if high_extra is not None:
            high.append(high_extra[0])
            high_inclusive = high_extra[1]
    for _key, position in index.scan(
        tuple(low) if low else None,
        tuple(high) if high else None,
        low_inclusive,
        high_inclusive,
    ):
        ctx.check()
        ctx.rows_scanned += 1
        row = dict(outer_row)
        row.update(_table_row(table, alias, position))
        if all(evaluate_condition(c, row) for c in residual):
            yield row


@dataclass
class IndexNestedLoopJoin(PhysicalOperator):
    """NLJOIN — for every outer row, probe the inner alias through a B-tree."""

    outer: PhysicalOperator
    index: BTreeIndex
    table: Table
    alias: str
    bounds: list[IndexBound] = field(default_factory=list)
    residual: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        for outer_row in self.outer.rows(ctx):
            yield from probe_index(
                ctx, self.index, self.table, self.alias, self.bounds, self.residual, outer_row
            )

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer,)

    def describe(self) -> str:
        keys = ",".join(self.index.key_columns)
        bound = ", ".join(f"{b.column}{'=' if b.kind == 'eq' else b.kind}" for b in self.bounds)
        return f"NLJOIN -> IXSCAN({self.alias}) index={self.index.name}({keys}) bounds[{bound}]"


@dataclass
class HashJoin(PhysicalOperator):
    """HSJOIN — build a hash table on the inner input, probe with the outer."""

    outer: PhysicalOperator
    inner: PhysicalOperator
    outer_terms: list[Term] = field(default_factory=list)
    inner_terms: list[Term] = field(default_factory=list)
    residual: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        buckets: dict[tuple, list[Row]] = {}
        for inner_row in self.inner.rows(ctx):
            key = tuple(evaluate_term(term, inner_row) for term in self.inner_terms)
            buckets.setdefault(key, []).append(inner_row)
        for outer_row in self.outer.rows(ctx):
            ctx.check()
            key = tuple(evaluate_term(term, outer_row) for term in self.outer_terms)
            for inner_row in buckets.get(key, ()):
                row = dict(outer_row)
                row.update(inner_row)
                if all(evaluate_condition(c, row) for c in self.residual):
                    yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer, self.inner)

    def describe(self) -> str:
        keys = ", ".join(
            f"{o.render()}={i.render()}" for o, i in zip(self.outer_terms, self.inner_terms)
        )
        return f"HSJOIN [{keys}]"


@dataclass
class Filter(PhysicalOperator):
    """FILTER — residual predicate evaluation."""

    child: PhysicalOperator
    conditions: list[Condition] = field(default_factory=list)

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        for row in self.child.rows(ctx):
            if all(evaluate_condition(c, row) for c in self.conditions):
                yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"FILTER [{' AND '.join(c.render() for c in self.conditions)}]"


@dataclass
class Sort(PhysicalOperator):
    """SORT — order by the given terms, optionally eliminating duplicate output rows."""

    child: PhysicalOperator
    order_terms: list[Term] = field(default_factory=list)
    select_items: list[tuple[Term, str]] = field(default_factory=list)
    distinct: bool = False

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        materialised = list(self.child.rows(ctx))
        keys = [
            tuple(_sortable(evaluate_term(term, row)) for term in self.order_terms)
            for row in materialised
        ]
        order = sorted(range(len(materialised)), key=lambda position: keys[position])
        seen: set[tuple] = set()
        for position in order:
            ctx.check()
            row = materialised[position]
            if self.distinct:
                signature = tuple(evaluate_term(term, row) for term, _name in self.select_items)
                if signature in seen:
                    continue
                seen.add(signature)
            yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        terms = ", ".join(term.render() for term in self.order_terms)
        distinct = " DISTINCT" if self.distinct else ""
        return f"SORT [{terms}]{distinct}"


def _sortable(value: object) -> tuple:
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


@dataclass
class Return(PhysicalOperator):
    """RETURN — project each row onto the query's select list."""

    child: PhysicalOperator
    select_items: list[tuple[Term, str]] = field(default_factory=list)

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:  # pragma: no cover - unused path
        yield from self.child.rows(ctx)

    def results(self, ctx: ExecutionContext) -> Iterator[dict[str, object]]:
        for row in self.child.rows(ctx):
            yield {name: evaluate_term(term, row) for term, name in self.select_items}

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"RETURN [{', '.join(name for _term, name in self.select_items)}]"

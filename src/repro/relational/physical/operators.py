"""Physical query operators (the engine's counterpart of Table VII).

The operator names deliberately follow DB2's explain vocabulary so that the
execution-plan experiments (Fig. 10 / Fig. 11) read like the paper:

=========  =====================================================
TBSCAN      full table scan (+ residual predicate)
IXSCAN      B-tree index scan (equality prefix + one range bound)
NLJOIN      index nested-loop join (outer rows drive index probes)
HSJOIN      hash join (build on the inner input, probe with the outer)
FILTER      residual predicate evaluation
SORT        sort on the ORDER BY terms (+ duplicate elimination)
RETURN      final projection to the query's select list
=========  =====================================================

Rows are plain **tuples**; each operator publishes a :class:`SlotMap` that
assigns every ``(alias, column)`` pair of its output a fixed position, and
join-graph :class:`~repro.core.joingraph.Condition` terms are compiled once
per plan into positional slot accessors.  Joins concatenate tuples, so the
self-join aliases of the join graph stay separate without the per-row
``dict[(alias, column)]`` churn of the seed implementation.  All operators
are iterators; the plan is fully pipelined except for SORT and the build
side of HSJOIN.
"""

from __future__ import annotations

import operator as _operator_module
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError, QueryTimeoutError
from repro.algebra import columnar as _columnar
from repro.algebra.columnar import Column, ColumnarTable
from repro.algebra.table import Table
from repro.core.joingraph import ColumnTerm, Condition, ConstantTerm, ParameterTerm, SumTerm, Term
from repro.relational.btree import PRE_PLUS_SIZE, BTreeIndex

#: A physical row: one value per slot of the operator's :class:`SlotMap`.
Row = tuple

_RANGE_RELATIONS = {
    "<": _operator_module.lt,
    "<=": _operator_module.le,
    ">": _operator_module.gt,
    ">=": _operator_module.ge,
}


class SlotMap:
    """Positional layout of a physical row: ``(alias, column) -> slot``."""

    __slots__ = ("slots", "_position_of")

    def __init__(self, slots: Sequence[tuple[str, str]]):
        self.slots: tuple[tuple[str, str], ...] = tuple(slots)
        self._position_of = {slot: position for position, slot in enumerate(self.slots)}

    @staticmethod
    def for_table(table: Table, alias: str) -> "SlotMap":
        return SlotMap([(alias, column) for column in table.columns])

    def concat(self, other: "SlotMap") -> "SlotMap":
        return SlotMap(self.slots + other.slots)

    def position(self, alias: str, column: str) -> Optional[int]:
        return self._position_of.get((alias, column))

    def __len__(self) -> int:
        return len(self.slots)


def compile_term(term: Term, slots: SlotMap) -> Callable[[Row], object]:
    """Compile a join-graph term into a positional slot accessor."""
    if isinstance(term, ColumnTerm):
        position = slots.position(term.alias, term.column)
        if position is None:
            # Mirrors the seed's ``row.get(...)`` behaviour for columns the
            # row does not carry: the term evaluates to NULL.
            return lambda row: None
        return lambda row: row[position]
    if isinstance(term, ConstantTerm):
        value = term.value
        return lambda row: value
    if isinstance(term, SumTerm):
        parts = tuple(compile_term(part, slots) for part in term.terms)

        def _sum(row: Row) -> object:
            total = 0
            for part in parts:
                value = part(row)
                if value is None:
                    return None
                total += value  # type: ignore[operator]
            return total

        return _sum
    if isinstance(term, ParameterTerm):
        raise ExecutionError(
            f"parameter :{term.name} reached the physical layer unbound; "
            "bind the join graph (JoinGraph.bind) before planning"
        )
    raise ExecutionError(f"cannot compile term {term!r}")


def compile_condition(condition: Condition, slots: SlotMap) -> Callable[[Row], bool]:
    """Compile one WHERE conjunct into a positional-row boolean closure."""
    left = compile_term(condition.left, slots)
    right = compile_term(condition.right, slots)
    op = condition.op
    if op == "=":
        def _eq(row: Row) -> bool:
            lv = left(row)
            rv = right(row)
            return lv is not None and rv is not None and lv == rv

        return _eq
    if op == "!=":
        def _ne(row: Row) -> bool:
            lv = left(row)
            rv = right(row)
            return lv is not None and rv is not None and lv != rv

        return _ne
    try:
        relation = _RANGE_RELATIONS[op]
    except KeyError:
        raise ExecutionError(f"unknown comparison operator {op!r}") from None

    def _range(row: Row) -> bool:
        lv = left(row)
        rv = right(row)
        if lv is None or rv is None:
            return False
        try:
            return relation(lv, rv)
        except TypeError:
            return False

    return _range


def compile_conditions(
    conditions: Sequence[Condition], slots: SlotMap
) -> Optional[Callable[[Row], bool]]:
    """Compile a conjunction; ``None`` when there is nothing to check."""
    if not conditions:
        return None
    compiled = tuple(compile_condition(condition, slots) for condition in conditions)
    if len(compiled) == 1:
        return compiled[0]

    def _all(row: Row) -> bool:
        for test in compiled:
            if not test(row):
                return False
        return True

    return _all


def compile_term_columnar(term: Term, slots: SlotMap):
    """Columnar twin of :func:`compile_term`: a closure over a ColumnarTable.

    The table's columns are positionally aligned with ``slots``.  Returns a
    :class:`~repro.algebra.columnar.Column` (or a scalar for constants) per
    call; a column the row does not carry evaluates to NULL, mirroring
    :func:`compile_term`.
    """
    if isinstance(term, ColumnTerm):
        position = slots.position(term.alias, term.column)
        if position is None:
            return lambda table: None
        return lambda table: table.cols[position]
    if isinstance(term, ConstantTerm):
        value = term.value
        return lambda table: value
    if isinstance(term, SumTerm):
        parts = tuple(compile_term_columnar(part, slots) for part in term.terms)
        return lambda table: _columnar.sum_columns(
            [part(table) for part in parts], table.length
        )
    if isinstance(term, ParameterTerm):
        raise ExecutionError(
            f"parameter :{term.name} reached the physical layer unbound; "
            "bind the join graph (JoinGraph.bind) before planning"
        )
    raise ExecutionError(f"cannot compile term {term!r}")


def compile_conditions_mask(conditions: Sequence[Condition], slots: SlotMap):
    """Compile a conjunction into one boolean-mask closure (``None`` if empty).

    The mask kernels share :func:`repro.algebra.columnar.compare_mask`'s
    reference semantics, so masks agree bit-for-bit with the compiled row
    closures of :func:`compile_conditions`.
    """
    if not conditions:
        return None
    compiled = tuple(
        (
            compile_term_columnar(condition.left, slots),
            condition.op,
            compile_term_columnar(condition.right, slots),
        )
        for condition in conditions
    )

    def _mask(table: ColumnarTable):
        mask = None
        for left, op, right in compiled:
            conjunct = _columnar.compare_mask(left(table), op, right(table), table.length)
            mask = conjunct if mask is None else _columnar.mask_and(mask, conjunct)
            if not _columnar.mask_any(mask):
                break
        return mask

    return _mask


class ExecutionContext:
    """Shared run-time state: deadline checks, operator counters, mode flags.

    ``columnar`` selects the vectorized operator paths (mask scans, columnar
    hash joins); the row paths stay in-tree as the differential baseline and
    are what ``columnar=False`` runs.
    """

    def __init__(self, timeout_seconds: Optional[float] = None, columnar: bool = True):
        self.timeout_seconds = timeout_seconds
        self.columnar = columnar
        self.deadline = (
            time.perf_counter() + timeout_seconds if timeout_seconds is not None else None
        )
        self.rows_scanned = 0
        self.index_probes = 0

    def check(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            elapsed = (self.timeout_seconds or 0.0) + (time.perf_counter() - self.deadline)
            raise QueryTimeoutError(self.timeout_seconds or 0.0, elapsed)


@dataclass
class PhysicalOperator:
    """Base class: every operator yields rows and can explain itself."""

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:  # pragma: no cover - abstract
        raise NotImplementedError

    def slots(self) -> SlotMap:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def can_columnar(self) -> bool:
        """True when :meth:`as_columnar` will produce a result (no side effects)."""
        return False

    def as_columnar(self, ctx: ExecutionContext) -> Optional[ColumnarTable]:
        """This operator's full result as a ColumnarTable, or ``None``.

        Operators that can produce their output column-wise (scans, filters,
        hash joins) implement this; pipelined index operators return ``None``
        and stay row-at-a-time.  Column order is positionally aligned with
        :meth:`slots`.  Callers should consult :meth:`can_columnar` first —
        a partially evaluated columnar tree would double-count scan work on
        fallback otherwise.
        """
        return None

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


@dataclass
class TableScan(PhysicalOperator):
    """TBSCAN — scan the base table, applying residual conditions.

    Output rows *are* the table's row tuples (zero copies per row)."""

    table: Table
    alias: str
    conditions: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def slots(self) -> SlotMap:
        return SlotMap.for_table(self.table, self.alias)

    def can_columnar(self) -> bool:
        return True

    def as_columnar(self, ctx: ExecutionContext) -> Optional[ColumnarTable]:
        ctx.check()
        ctx.rows_scanned += len(self.table.rows)
        base = self.table.columnar()
        keep = compile_conditions_mask(self.conditions, self.slots())
        if keep is None:
            return base
        return base.filter(keep(base))

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        if ctx.columnar:
            if not self.conditions:
                # Bulk scan: the table's own tuples, counted in one step.
                ctx.check()
                ctx.rows_scanned += len(self.table.rows)
                yield from self.table.rows
                return
            result = self.as_columnar(ctx)
            yield from result.iter_rows()
            return
        keep = compile_conditions(self.conditions, self.slots())
        for row in self.table.rows:
            ctx.check()
            ctx.rows_scanned += 1
            if keep is None or keep(row):
                yield row

    def describe(self) -> str:
        predicate = " ".join(c.render() for c in self.conditions)
        suffix = f" [{predicate}]" if predicate else ""
        return f"TBSCAN({self.alias}){suffix}"


@dataclass
class IndexBound:
    """One bound on an index key column, evaluated per outer row (or constant)."""

    column: str
    kind: str  # "eq", "low", "high"
    term: Term
    inclusive: bool = True
    #: The join-graph condition this bound enforces (used by the planner to
    #: decide which conditions still need residual evaluation).
    source: object = None


class _CompiledProbe:
    """Bounds + residual of one index access, compiled against slot maps.

    ``bounds`` terms are evaluated against the *outer* row (empty for a bare
    IXSCAN), the residual conditions against the combined output row.
    """

    __slots__ = ("index", "table", "bound_evals", "residual", "key_columns")

    def __init__(
        self,
        index: BTreeIndex,
        table: Table,
        bounds: Sequence[IndexBound],
        residual: Sequence[Condition],
        outer_slots: SlotMap,
        output_slots: SlotMap,
    ):
        self.index = index
        self.table = table
        self.key_columns = index.key_columns
        self.bound_evals = [
            (bound, compile_term(bound.term, outer_slots)) for bound in bounds
        ]
        self.residual = compile_conditions(residual, output_slots)

    def probe(self, ctx: ExecutionContext, outer_row: Row) -> Iterator[Row]:
        """Probe the B-tree with bounds evaluated against ``outer_row``."""
        ctx.index_probes += 1
        equalities: dict[str, object] = {}
        low_extra: Optional[tuple[object, bool]] = None
        high_extra: Optional[tuple[object, bool]] = None
        range_column: Optional[str] = None
        for bound, evaluate in self.bound_evals:
            value = evaluate(outer_row)
            if value is None:
                return
            if bound.kind == "eq":
                equalities[bound.column] = value
            elif bound.kind == "low":
                range_column = bound.column
                if low_extra is None or value > low_extra[0]:  # type: ignore[operator]
                    low_extra = (value, bound.inclusive)
            else:
                range_column = bound.column
                if high_extra is None or value < high_extra[0]:  # type: ignore[operator]
                    high_extra = (value, bound.inclusive)
        prefix = []
        for column in self.key_columns:
            if column in equalities:
                prefix.append(equalities[column])
            else:
                break
        low = list(prefix)
        high = list(prefix)
        low_inclusive = high_inclusive = True
        next_column = (
            self.key_columns[len(prefix)] if len(prefix) < len(self.key_columns) else None
        )
        if range_column is not None and next_column == range_column:
            if low_extra is not None:
                low.append(low_extra[0])
                low_inclusive = low_extra[1]
            if high_extra is not None:
                high.append(high_extra[0])
                high_inclusive = high_extra[1]
        table_rows = self.table.rows
        residual = self.residual
        for _key, position in self.index.scan(
            tuple(low) if low else None,
            tuple(high) if high else None,
            low_inclusive,
            high_inclusive,
        ):
            ctx.check()
            ctx.rows_scanned += 1
            row = outer_row + table_rows[position]
            if residual is None or residual(row):
                yield row


@dataclass
class IndexScan(PhysicalOperator):
    """IXSCAN — B-tree access with a constant equality prefix and range bound."""

    index: BTreeIndex
    table: Table
    alias: str
    bounds: list[IndexBound] = field(default_factory=list)
    residual: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def slots(self) -> SlotMap:
        return SlotMap.for_table(self.table, self.alias)

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        probe = _CompiledProbe(
            self.index, self.table, self.bounds, self.residual, SlotMap(()), self.slots()
        )
        yield from probe.probe(ctx, ())

    def describe(self) -> str:
        keys = ",".join(self.index.key_columns)
        bound = ", ".join(f"{b.column}{'=' if b.kind == 'eq' else b.kind}" for b in self.bounds)
        residual = f" residual={len(self.residual)}" if self.residual else ""
        return f"IXSCAN({self.alias}) index={self.index.name}({keys}) bounds[{bound}]{residual}"


@dataclass
class IndexNestedLoopJoin(PhysicalOperator):
    """NLJOIN — for every outer row, probe the inner alias through a B-tree."""

    outer: PhysicalOperator
    index: BTreeIndex
    table: Table
    alias: str
    bounds: list[IndexBound] = field(default_factory=list)
    residual: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def slots(self) -> SlotMap:
        return self.outer.slots().concat(SlotMap.for_table(self.table, self.alias))

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        probe = _CompiledProbe(
            self.index, self.table, self.bounds, self.residual,
            self.outer.slots(), self.slots(),
        )
        for outer_row in self.outer.rows(ctx):
            yield from probe.probe(ctx, outer_row)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer,)

    def describe(self) -> str:
        keys = ",".join(self.index.key_columns)
        bound = ", ".join(f"{b.column}{'=' if b.kind == 'eq' else b.kind}" for b in self.bounds)
        return f"NLJOIN -> IXSCAN({self.alias}) index={self.index.name}({keys}) bounds[{bound}]"


@dataclass
class HashJoin(PhysicalOperator):
    """HSJOIN — build a hash table on the inner input, probe with the outer."""

    outer: PhysicalOperator
    inner: PhysicalOperator
    outer_terms: list[Term] = field(default_factory=list)
    inner_terms: list[Term] = field(default_factory=list)
    residual: list[Condition] = field(default_factory=list)
    estimated_rows: float = 0.0

    def slots(self) -> SlotMap:
        return self.outer.slots().concat(self.inner.slots())

    def _key_lists(self, table: ColumnarTable, terms: list[Term], slots: SlotMap) -> list[list]:
        lists = []
        for term in terms:
            value = compile_term_columnar(term, slots)(table)
            if isinstance(value, Column):
                lists.append(value.tolist())
            else:  # constant (or missing-column NULL) key
                lists.append([value] * table.length)
        return lists

    def can_columnar(self) -> bool:
        return self.outer.can_columnar() and self.inner.can_columnar()

    def as_columnar(self, ctx: ExecutionContext) -> Optional[ColumnarTable]:
        if not self.can_columnar():
            return None
        outer = self.outer.as_columnar(ctx)
        inner = self.inner.as_columnar(ctx)
        if len(self.outer_terms) == 1:
            outer_key = compile_term_columnar(self.outer_terms[0], self.outer.slots())(outer)
            inner_key = compile_term_columnar(self.inner_terms[0], self.inner.slots())(inner)
            if isinstance(outer_key, Column) and isinstance(inner_key, Column):
                vectorized = _columnar.equi_join_indices(outer_key, inner_key)
                if vectorized is not None:
                    return self._combined(outer, inner, *vectorized)
        if self.outer_terms:
            inner_keys = self._key_lists(inner, self.inner_terms, self.inner.slots())
            outer_keys = self._key_lists(outer, self.outer_terms, self.outer.slots())
            buckets: dict[tuple, list[int]] = {}
            for position, key in enumerate(zip(*inner_keys)):
                buckets.setdefault(key, []).append(position)
            outer_indices: list[int] = []
            inner_indices: list[int] = []
            for position, key in enumerate(zip(*outer_keys)):
                if not position & 0x3FFF:
                    ctx.check()
                matches = buckets.get(key)
                if matches:
                    outer_indices += [position] * len(matches)
                    inner_indices += matches
        else:
            # No equi keys: every outer row pairs with every inner row (the
            # row path hashes on the empty tuple), and the residual does the
            # actual joining.  Keep the outer-major, inner-in-order pairing.
            ctx.check()
            all_inner = list(range(inner.length))
            outer_indices = [p for p in range(outer.length) for _ in all_inner]
            inner_indices = all_inner * outer.length
        np = _columnar.active_numpy()
        if np is not None and outer.vectorized and inner.vectorized:
            count = len(outer_indices)
            outer_indices = np.fromiter(outer_indices, dtype=np.int64, count=count)
            inner_indices = np.fromiter(inner_indices, dtype=np.int64, count=count)
        return self._combined(outer, inner, outer_indices, inner_indices)

    def _combined(
        self,
        outer: ColumnarTable,
        inner: ColumnarTable,
        outer_indices,
        inner_indices,
    ) -> ColumnarTable:
        # Slot names are (alias, column) pairs; the mask compiler is
        # positional, so synthetic unique names suffice for the schema.
        combined = ColumnarTable(
            [f"s{i}" for i in range(len(self.slots()))],
            [c.take(outer_indices) for c in outer.cols]
            + [c.take(inner_indices) for c in inner.cols],
            len(outer_indices),
        )
        keep = compile_conditions_mask(self.residual, self.slots())
        if keep is None:
            return combined
        return combined.filter(keep(combined))

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        if ctx.columnar:
            result = self.as_columnar(ctx)
            if result is not None:
                yield from result.iter_rows()
                return
        inner_keys = [compile_term(term, self.inner.slots()) for term in self.inner_terms]
        outer_keys = [compile_term(term, self.outer.slots()) for term in self.outer_terms]
        residual = compile_conditions(self.residual, self.slots())
        buckets: dict[tuple, list[Row]] = {}
        for inner_row in self.inner.rows(ctx):
            key = tuple(evaluate(inner_row) for evaluate in inner_keys)
            buckets.setdefault(key, []).append(inner_row)
        for outer_row in self.outer.rows(ctx):
            ctx.check()
            key = tuple(evaluate(outer_row) for evaluate in outer_keys)
            for inner_row in buckets.get(key, ()):
                row = outer_row + inner_row
                if residual is None or residual(row):
                    yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer, self.inner)

    def describe(self) -> str:
        keys = ", ".join(
            f"{o.render()}={i.render()}" for o, i in zip(self.outer_terms, self.inner_terms)
        )
        return f"HSJOIN [{keys}]"


@dataclass
class Filter(PhysicalOperator):
    """FILTER — residual predicate evaluation."""

    child: PhysicalOperator
    conditions: list[Condition] = field(default_factory=list)

    def slots(self) -> SlotMap:
        return self.child.slots()

    def can_columnar(self) -> bool:
        return self.child.can_columnar()

    def as_columnar(self, ctx: ExecutionContext) -> Optional[ColumnarTable]:
        child = self.child.as_columnar(ctx)
        if child is None:
            return None
        keep = compile_conditions_mask(self.conditions, self.slots())
        if keep is None:
            return child
        return child.filter(keep(child))

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        if ctx.columnar and self.can_columnar():
            yield from self.as_columnar(ctx).iter_rows()
            return
        keep = compile_conditions(self.conditions, self.slots())
        for row in self.child.rows(ctx):
            if keep is None or keep(row):
                yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"FILTER [{' AND '.join(c.render() for c in self.conditions)}]"


@dataclass
class Sort(PhysicalOperator):
    """SORT — order by the given terms, optionally eliminating duplicate output rows."""

    child: PhysicalOperator
    order_terms: list[Term] = field(default_factory=list)
    select_items: list[tuple[Term, str]] = field(default_factory=list)
    distinct: bool = False

    def slots(self) -> SlotMap:
        return self.child.slots()

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        slots = self.slots()
        order_evals = [compile_term(term, slots) for term in self.order_terms]
        select_evals = [compile_term(term, slots) for term, _name in self.select_items]
        materialised = list(self.child.rows(ctx))
        keys = [
            tuple(_sortable(evaluate(row)) for evaluate in order_evals)
            for row in materialised
        ]
        order = sorted(range(len(materialised)), key=lambda position: keys[position])
        seen: set[tuple] = set()
        for position in order:
            ctx.check()
            row = materialised[position]
            if self.distinct:
                signature = tuple(evaluate(row) for evaluate in select_evals)
                if signature in seen:
                    continue
                seen.add(signature)
            yield row

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        terms = ", ".join(term.render() for term in self.order_terms)
        distinct = " DISTINCT" if self.distinct else ""
        return f"SORT [{terms}]{distinct}"


def _sortable(value: object) -> tuple:
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


@dataclass
class Return(PhysicalOperator):
    """RETURN — project each row onto the query's select list."""

    child: PhysicalOperator
    select_items: list[tuple[Term, str]] = field(default_factory=list)

    def slots(self) -> SlotMap:
        return self.child.slots()

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:  # pragma: no cover - unused path
        yield from self.child.rows(ctx)

    def results(self, ctx: ExecutionContext) -> Iterator[dict[str, object]]:
        slots = self.slots()
        compiled = [(compile_term(term, slots), name) for term, name in self.select_items]
        for row in self.child.rows(ctx):
            yield {name: evaluate(row) for evaluate, name in compiled}

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"RETURN [{', '.join(name for _term, name in self.select_items)}]"

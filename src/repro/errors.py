"""Exception hierarchy shared by all repro subsystems.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLParseError(ReproError):
    """Raised when the XML parser encounters malformed input.

    Carries the character offset and (line, column) position of the failure
    so that callers can produce useful diagnostics.
    """

    def __init__(self, message: str, offset: int = -1, line: int = -1, column: int = -1):
        location = ""
        if line >= 0:
            location = f" at line {line}, column {column}"
        super().__init__(message + location)
        self.offset = offset
        self.line = line
        self.column = column


class XQuerySyntaxError(ReproError):
    """Raised by the XQuery lexer / parser on malformed query text."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XQueryCompilationError(ReproError):
    """Raised by the loop-lifting compiler, e.g. for unbound variables."""


class XQueryBindingError(ReproError):
    """Raised when external-variable bindings are missing or ill-typed."""


class AlgebraError(ReproError):
    """Raised for malformed algebra plans (unknown columns, arity errors)."""


class RewriteError(ReproError):
    """Raised when join graph isolation cannot make progress safely."""


class JoinGraphError(ReproError):
    """Raised when a rewritten plan cannot be cast into a single SFW block."""


class SQLSyntaxError(ReproError):
    """Raised by the SQL parser of the relational back-end."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """Raised for catalog misuse: unknown/duplicate tables or indexes."""


class BackendClosedError(CatalogError):
    """Raised when a closed RDBMS backend (or its pool) is used again."""


class TransientBackendError(ReproError):
    """A backend fault that is expected to clear on retry.

    The SQLite boundary classifies driver errors into this family when the
    failure is environmental rather than semantic: ``database is locked``,
    ``database is busy``, ``disk I/O error``, an external ``interrupt``.
    Retry policies (:mod:`repro.service.resilience`) only ever retry
    errors of this class; everything else is treated as permanent.

    ``cause`` keeps the original driver exception for diagnostics.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause


class BackendExecutionError(ReproError):
    """A *permanent* backend failure (bad SQL, missing table, constraint).

    Raised at the RDBMS boundary instead of leaking raw driver exceptions;
    never retried and never healed — the statement itself is at fault, not
    the backend's health.  ``cause`` keeps the original driver exception.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause


class MirrorIntegrityError(CatalogError):
    """The SQLite mirror diverged from (or can no longer serve) the catalog.

    Raised when ``PRAGMA integrity_check`` fails, the database image is
    malformed, or the mirrored rows are no longer a prefix of the canonical
    encoding.  The backend's quarantine-and-rebuild path
    (:meth:`repro.sqlbackend.backend.SQLiteBackend.rebuild_mirror`) exists
    precisely to recover from this state; this error surfaces only when
    that recovery is impossible.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a physical plan."""


class ExecutionError(ReproError):
    """Raised by physical operators or the algebra interpreter at run time."""


class QueryTimeoutError(ReproError):
    """Raised when a query exceeds its execution budget (the paper's DNF)."""

    def __init__(self, budget_seconds: float, elapsed_seconds: float):
        super().__init__(
            f"query did not finish within {budget_seconds:.3f}s "
            f"(aborted after {elapsed_seconds:.3f}s)"
        )
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class PureXMLError(ReproError):
    """Raised by the pureXML-substitute engine (storage or evaluation)."""


class ServiceError(ReproError):
    """Base class for query-service failures (:mod:`repro.service`)."""


class ServiceClosedError(ServiceError):
    """Raised when work is submitted to a :class:`QueryService` after close."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a query (too many in flight)."""


class CircuitOpenError(TransientBackendError):
    """An engine's circuit breaker is open: the backend is shedding load.

    Transient by definition — the breaker re-probes after its recovery
    window — so fallback chains treat it exactly like any other transient
    backend fault: degrade to the next engine instead of queueing work
    behind a dead backend.
    """


class DegradedExecutionError(ServiceError):
    """Every engine in a fallback chain failed for one query.

    Carries the *original* error (the failure of the engine the caller
    asked for), the engine whose failure ended the chain, and the full
    tuple of engines attempted — enough to reconstruct the degradation
    path from the exception alone.
    """

    def __init__(
        self,
        message: str,
        cause: Optional[BaseException] = None,
        engine: Optional[str] = None,
        attempted: tuple = (),
    ):
        super().__init__(message)
        self.cause = cause
        self.engine = engine
        self.attempted = tuple(attempted)

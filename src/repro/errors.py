"""Exception hierarchy shared by all repro subsystems.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLParseError(ReproError):
    """Raised when the XML parser encounters malformed input.

    Carries the character offset and (line, column) position of the failure
    so that callers can produce useful diagnostics.
    """

    def __init__(self, message: str, offset: int = -1, line: int = -1, column: int = -1):
        location = ""
        if line >= 0:
            location = f" at line {line}, column {column}"
        super().__init__(message + location)
        self.offset = offset
        self.line = line
        self.column = column


class XQuerySyntaxError(ReproError):
    """Raised by the XQuery lexer / parser on malformed query text."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XQueryCompilationError(ReproError):
    """Raised by the loop-lifting compiler, e.g. for unbound variables."""


class XQueryBindingError(ReproError):
    """Raised when external-variable bindings are missing or ill-typed."""


class AlgebraError(ReproError):
    """Raised for malformed algebra plans (unknown columns, arity errors)."""


class RewriteError(ReproError):
    """Raised when join graph isolation cannot make progress safely."""


class JoinGraphError(ReproError):
    """Raised when a rewritten plan cannot be cast into a single SFW block."""


class SQLSyntaxError(ReproError):
    """Raised by the SQL parser of the relational back-end."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """Raised for catalog misuse: unknown/duplicate tables or indexes."""


class BackendClosedError(CatalogError):
    """Raised when a closed RDBMS backend (or its pool) is used again."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a physical plan."""


class ExecutionError(ReproError):
    """Raised by physical operators or the algebra interpreter at run time."""


class QueryTimeoutError(ReproError):
    """Raised when a query exceeds its execution budget (the paper's DNF)."""

    def __init__(self, budget_seconds: float, elapsed_seconds: float):
        super().__init__(
            f"query did not finish within {budget_seconds:.3f}s "
            f"(aborted after {elapsed_seconds:.3f}s)"
        )
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class PureXMLError(ReproError):
    """Raised by the pureXML-substitute engine (storage or evaluation)."""


class ServiceError(ReproError):
    """Base class for query-service failures (:mod:`repro.service`)."""


class ServiceClosedError(ServiceError):
    """Raised when work is submitted to a :class:`QueryService` after close."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a query (too many in flight)."""

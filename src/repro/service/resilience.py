"""Resilience policies for the serving layer: retry, breakers, fallback.

The paper proves five engine configurations bit-for-bit identical — which
turns *graceful degradation* from an approximation into a correctness-
preserving operation: when the RDBMS path fails, an interpreted engine can
serve the **same answer**.  This module supplies the three policies
:class:`~repro.service.QueryService` composes on that foundation:

* :class:`RetryPolicy` — deadline-aware exponential backoff with jitter.
  Only :class:`~repro.errors.TransientBackendError` (and subclasses) is
  ever retried; :class:`~repro.errors.QueryTimeoutError` and permanent
  errors never are, and no retry is scheduled past the request's remaining
  budget — a retry that cannot finish in time is a retry not taken.
* :class:`CircuitBreaker` (built from a :class:`BreakerPolicy`) — the
  classic closed → open → half-open machine, one per engine: after
  ``failure_threshold`` consecutive backend faults the breaker opens and
  requests shed immediately with :class:`~repro.errors.CircuitOpenError`
  instead of burning worker threads against a dead backend; after
  ``recovery_seconds`` a limited number of half-open probes decide whether
  to close it again.
* :class:`FallbackPolicy` — the engine degradation chains.  The default
  mirrors the paper's equivalence proof: ``sql → join-graph → stacked``
  (and ``sql-stacked → stacked``), i.e. RDBMS loss degrades to the
  in-process interpreted engines, never to a wrong answer.

All policies are immutable (frozen dataclasses) except the breaker, whose
mutable state is guarded by its own lock; everything takes an injectable
clock/rng/sleep so the chaos suite runs deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import (
    BackendClosedError,
    BackendExecutionError,
    CircuitOpenError,
    MirrorIntegrityError,
    QueryTimeoutError,
    TransientBackendError,
)

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "FallbackPolicy",
    "RetryPolicy",
    "is_backend_fault",
    "is_retryable",
]


def is_retryable(error: BaseException) -> bool:
    """True for errors a :class:`RetryPolicy` may act on.

    Exactly the transient family — and never
    :class:`~repro.errors.QueryTimeoutError`: a timeout consumed the
    request's budget by definition, so retrying it is always wrong.
    """
    if isinstance(error, QueryTimeoutError):
        return False
    return isinstance(error, TransientBackendError)


def is_backend_fault(error: BaseException) -> bool:
    """True for errors that indicate *backend health*, not query semantics.

    These are the errors that feed circuit breakers and justify degrading
    to a fallback engine.  Semantic failures — syntax errors, binding
    errors, a query outside an engine's fragment — are excluded: every
    engine would fail them identically, so degrading only wastes work; and
    timeouts are excluded because the budget is gone either way.
    """
    return isinstance(
        error,
        (
            TransientBackendError,   # includes CircuitOpenError
            MirrorIntegrityError,
            BackendClosedError,
            BackendExecutionError,
        ),
    ) and not isinstance(error, QueryTimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware exponential backoff with decorrelated jitter.

    ``max_attempts`` counts *executions*, not retries: 3 means one initial
    try plus at most two retries.  Delay for retry *k* (1-based) is
    ``base_delay * multiplier**(k-1)``, capped at ``max_delay``, then
    jittered uniformly within ``[1 - jitter, 1 + jitter]``.  A retry is
    scheduled only when the delay fits the remaining budget — the policy
    never sleeps past a request's deadline.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    #: Injectable randomness for deterministic tests (None = module default).
    rng: Optional[random.Random] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def next_delay(
        self, attempt: int, error: BaseException, remaining: Optional[float]
    ) -> Optional[float]:
        """Seconds to back off before retry, or None for "do not retry".

        ``attempt`` is the 1-based number of the execution that just
        failed; ``remaining`` is the request's remaining budget in seconds
        (None = unbounded).  Returns None when the error is not transient,
        attempts are exhausted, or the computed delay would not leave any
        budget to actually run the retry.
        """
        if not is_retryable(error):
            return None
        if attempt >= self.max_attempts:
            return None
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            rng = self.rng if self.rng is not None else random
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        if remaining is not None and delay >= remaining:
            return None
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration for the per-engine circuit breakers.

    ``failure_threshold`` consecutive backend faults open the breaker;
    after ``recovery_seconds`` it lets ``half_open_probes`` concurrent
    probe requests through — one success closes it, one failure re-opens
    it (and restarts the recovery clock).  ``clock`` is injectable so the
    chaos suite can walk the state machine without sleeping.
    """

    failure_threshold: int = 5
    recovery_seconds: float = 5.0
    half_open_probes: int = 1
    clock: Callable[[], float] = field(
        default=time.monotonic, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")

    def build(self, engine: str) -> "CircuitBreaker":
        return CircuitBreaker(self, engine)


class CircuitBreaker:
    """One engine's closed → open → half-open breaker.  Thread-safe.

    The call protocol: :meth:`allow` before executing (False = shed the
    request), then exactly one of :meth:`record_success` /
    :meth:`record_failure` for requests that were allowed.  Failures that
    are not backend faults (see :func:`is_backend_fault`) must not be
    recorded — a stream of syntax errors says nothing about engine health.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: BreakerPolicy, engine: str = ""):
        self.policy = policy
        self.engine = engine
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._transitions = 0
        self._opened_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """State after applying the recovery timer (lock held)."""
        if self._state == self.OPEN:
            elapsed = self.policy.clock() - (self._opened_at or 0.0)
            if elapsed >= self.policy.recovery_seconds:
                self._set_state(self.HALF_OPEN)
                self._probes_in_flight = 0
        return self._state

    def _set_state(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self._transitions += 1
            if state == self.OPEN:
                self._opened_at = self.policy.clock()
                self._opened_total += 1

    def allow(self) -> bool:
        """May a request proceed on this engine right now?"""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                if self._probes_in_flight < self.policy.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == self.HALF_OPEN:
                self._set_state(self.CLOSED)
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures += 1
            if state == self.HALF_OPEN:
                # The probe failed: back to open, restart the recovery clock.
                self._set_state(self.OPEN)
                self._probes_in_flight = 0
            elif (
                state == self.CLOSED
                and self._consecutive_failures >= self.policy.failure_threshold
            ):
                self._set_state(self.OPEN)

    def open_error(self) -> CircuitOpenError:
        return CircuitOpenError(
            f"circuit breaker for engine {self.engine!r} is {self.state}: "
            "the backend is shedding load"
        )

    def snapshot(self) -> dict:
        """One consistent view of the breaker for ``service_stats()``."""
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "transitions": self._transitions,
                "opened_total": self._opened_total,
            }


#: The degradation chains the equivalence proof makes safe by construction.
#: Keys are *requested* configurations; values the engines tried after the
#: requested one fails with a backend fault.  Interpreted engines have no
#: fallback — they are the floor.
DEFAULT_CHAINS: Mapping[str, tuple[str, ...]] = {
    "sql": ("join-graph", "stacked"),
    "sql-stacked": ("stacked",),
    "join-graph": ("stacked",),
}


@dataclass(frozen=True)
class FallbackPolicy:
    """Engine degradation chains, applied when a backend fault survives retry.

    ``chains`` maps a requested engine to the ordered engines tried next;
    engines not in the map never degrade.  Only *backend faults* trigger
    fallback (:func:`is_backend_fault`): semantic errors would fail
    identically everywhere, and timeouts have no budget left to degrade
    with.  Per-request opt-out rides on ``QueryRequest(fallback=False)``.
    """

    chains: Mapping[str, Sequence[str]] = field(
        default_factory=lambda: dict(DEFAULT_CHAINS)
    )

    def chain_for(self, configuration: str) -> tuple[str, ...]:
        """The full engine order for one request: requested engine first."""
        return (configuration, *self.chains.get(configuration, ()))

""":class:`QueryService` — a concurrent query front-end over one session.

The paper's claim is that an off-the-shelf RDBMS can *serve* XQuery
workloads; this module supplies the serving machinery the evaluation
chapters take for granted:

* a **worker pool** (`concurrent.futures.ThreadPoolExecutor`) executing
  queries against one shared :class:`~repro.core.session.Session` — safe
  because the session's processor is copy-on-write, the plan cache is
  locked, and the SQLite mirror hands every worker thread its own pooled
  read connection (SQLite releases the GIL while a statement runs, so SQL
  executions genuinely overlap on multicore hosts);
* **admission control** — at most ``max_in_flight`` queries queued or
  running; beyond that :meth:`QueryService.submit` either blocks
  (``admission="block"``, the default) or fails fast with
  :class:`~repro.errors.ServiceOverloadedError` (``admission="reject"``);
* **per-query budgets** — a ``timeout_seconds`` per request (or the
  service-wide default) flows into the engines' existing budget
  mechanisms: SQLite's progress handler on the ``sql``/``sql-stacked``
  paths, the interpreter/operator budgets elsewhere; overruns surface as
  :class:`~repro.errors.QueryTimeoutError` on the future and are counted;
* **metrics** — per-engine counters (submitted/completed/failed/timed
  out/rejected/degraded, latency totals) plus the session's plan-cache
  counters, one consistent snapshot via :meth:`QueryService.service_stats`;
* **resilience** (all opt-in, see :mod:`repro.service.resilience`) — a
  :class:`~repro.service.resilience.RetryPolicy` retries transient backend
  faults with deadline-aware backoff, a
  :class:`~repro.service.resilience.BreakerPolicy` gives every engine a
  circuit breaker that sheds load after consecutive faults, and a
  :class:`~repro.service.resilience.FallbackPolicy` degrades a failed
  engine down the paper's equivalence chain (``sql → join-graph →
  stacked``) — safe because all five configurations are proven bit-for-bit
  identical, so a degraded answer is the *same* answer.  Degraded
  outcomes carry ``degraded_from`` and are counted in
  ``service_stats()["resilience"]``.

Every engine configuration of the paper's Table IX experiment runs through
the service unchanged (``stacked``, ``isolated``, ``join-graph``, ``sql``,
``sql-stacked``, or ``auto``), with results bit-for-bit identical to serial
execution — the concurrency stress tests pin exactly that.

Example:

>>> from repro.core.session import Session
>>> session = Session()
>>> session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
0
>>> with QueryService(session, max_workers=2) as service:
...     future = service.submit('doc("tiny.xml")/descendant::b')
...     batch = service.execute_many(
...         ['doc("tiny.xml")/descendant::b[. > 1]'] * 2, configuration="sql")
>>> future.result().items
[2, 4]
>>> [outcome.items for outcome in batch]
[[4], [4]]
>>> service.service_stats()["engines"]["sql"]["completed"]
2
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.errors import (
    DegradedExecutionError,
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.core.pipeline import ExecutionOutcome, PreparedQuery
from repro.core.session import Session
from repro.service.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    FallbackPolicy,
    RetryPolicy,
    is_backend_fault,
)


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the service.

    Either ``source`` (ad-hoc text, compiled through the session's plan
    cache) or ``prepared`` (a :class:`~repro.core.pipeline.PreparedQuery`
    handle) must be set.  ``configuration`` picks the engine —
    ``"auto"``/``"stacked"``/``"isolated"``/``"join-graph"``/``"sql"``/
    ``"sql-stacked"``, exactly as everywhere else in the stack.

    ``fallback=False`` opts this request out of the service's engine
    degradation chain: the requested engine's failure surfaces directly
    instead of being served by an interpreted equivalent (useful for
    differential tests and benchmarks that must pin one engine).
    """

    source: Optional[str] = None
    prepared: Optional[PreparedQuery] = None
    bindings: Optional[Mapping[str, object]] = None
    configuration: str = "auto"
    timeout_seconds: Optional[float] = None
    fallback: bool = True

    def __post_init__(self) -> None:
        if (self.source is None) == (self.prepared is None):
            raise ValueError("a QueryRequest needs exactly one of source/prepared")


#: Anything :meth:`QueryService.execute_many` accepts as one request.
RequestLike = Union[str, PreparedQuery, QueryRequest]


@dataclass
class EngineMetrics:
    """Counters for one engine configuration (keyed by *requested* name)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    rejected: int = 0
    degraded: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def snapshot(self) -> dict[str, object]:
        """One point-in-time view; callers hold the service's metrics lock.

        Every mutation of these counters happens under that same lock, so
        a snapshot is internally consistent — in particular
        ``submitted >= completed + failed + timed_out`` always holds within
        one snapshot (a submitted query is counted exactly once on the
        outcome side, under the lock, when it finishes).
        """
        mean = self.total_seconds / self.completed if self.completed else 0.0
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "total_seconds": self.total_seconds,
            "mean_seconds": mean,
            "max_seconds": self.max_seconds,
        }


class QueryService:
    """A thread-pool query service over one :class:`Session`.

    The service does not own the session: closing the service stops the
    workers but leaves the session (and its SQLite mirror) usable — several
    services may even share one session, since all shared state below it
    is lock-protected.

    ``admission`` is ``"block"`` (default: :meth:`submit` waits for a free
    slot) or ``"reject"`` (raise
    :class:`~repro.errors.ServiceOverloadedError` immediately — the
    behaviour a load balancer wants).
    """

    def __init__(
        self,
        session: Session,
        max_workers: int = 8,
        max_in_flight: Optional[int] = None,
        default_timeout_seconds: Optional[float] = None,
        admission: str = "block",
        retry: Optional[RetryPolicy] = None,
        fallback: Optional[FallbackPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
    ):
        if max_workers < 1:
            raise ValueError("QueryService needs at least one worker")
        if admission not in ("block", "reject"):
            raise ValueError('admission must be "block" or "reject"')
        if max_in_flight is None:
            max_in_flight = 2 * max_workers
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.session = session
        self.max_workers = max_workers
        self.max_in_flight = max_in_flight
        self.default_timeout_seconds = default_timeout_seconds
        self.admission = admission
        #: Resilience policies (all optional — None keeps the raw PR 4
        #: behaviour where engine errors propagate straight to the future):
        #: ``retry`` re-executes transient backend faults with backoff,
        #: ``breaker`` sheds load per engine after consecutive faults,
        #: ``fallback`` degrades a failed engine to an interpreted
        #: equivalent (bit-for-bit identical results by construction).
        self.retry_policy = retry
        self.fallback_policy = fallback
        self.breaker_policy = breaker
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._metrics: dict[str, EngineMetrics] = {}
        self._metrics_lock = threading.Lock()
        #: Aggregate resilience counters, mutated under the metrics lock.
        self._resilience = {
            "retries": 0,
            "fallbacks": 0,
            "breaker_short_circuits": 0,
            "exhausted": 0,
        }
        self._in_flight = 0
        #: Signalled when the last in-flight query finishes (drain support);
        #: shares the metrics lock so the in-flight count it guards is the
        #: same one the counters see.
        self._drained = threading.Condition(self._metrics_lock)
        self._closed = False
        #: Injectable backoff sleep (the chaos suite swaps in a no-op).
        self._sleep = time.sleep

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        source: Optional[str] = None,
        bindings: Optional[Mapping[str, object]] = None,
        configuration: str = "auto",
        timeout_seconds: Optional[float] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> "Future[ExecutionOutcome]":
        """Enqueue one query; returns a future of its ``ExecutionOutcome``.

        The future raises whatever the engine raised — including
        :class:`~repro.errors.QueryTimeoutError` when the per-query budget
        (``timeout_seconds`` or the service default) ran out.
        """
        request = QueryRequest(
            source=source,
            prepared=prepared,
            bindings=bindings,
            configuration=configuration,
            timeout_seconds=timeout_seconds,
        )
        return self.submit_request(request)

    def submit_request(self, request: QueryRequest) -> "Future[ExecutionOutcome]":
        """:meth:`submit`, taking an assembled :class:`QueryRequest`."""
        if self._closed:
            raise ServiceClosedError("this QueryService has been closed")
        metrics = self._engine_metrics(request.configuration)
        if not self._slots.acquire(blocking=self.admission == "block"):
            with self._metrics_lock:
                metrics.rejected += 1
            raise ServiceOverloadedError(
                f"admission control: {self.max_in_flight} queries already in flight"
            )
        with self._metrics_lock:
            metrics.submitted += 1
            self._in_flight += 1
        try:
            future = self._executor.submit(self._run, request, metrics)
        except RuntimeError as error:
            # The executor shut down between the closed check and here.
            with self._metrics_lock:
                metrics.submitted -= 1
                self._in_flight -= 1
            self._slots.release()
            raise ServiceClosedError("this QueryService has been closed") from error
        future.add_done_callback(self._release_slot)
        return future

    def execute(
        self,
        source: Optional[str] = None,
        bindings: Optional[Mapping[str, object]] = None,
        configuration: str = "auto",
        timeout_seconds: Optional[float] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> ExecutionOutcome:
        """Submit one query and wait for its result (convenience wrapper)."""
        return self.submit(
            source=source,
            bindings=bindings,
            configuration=configuration,
            timeout_seconds=timeout_seconds,
            prepared=prepared,
        ).result()

    def execute_many(
        self,
        requests: Iterable[RequestLike],
        configuration: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> list[ExecutionOutcome]:
        """Execute a batch; results come back in *request order*.

        Entries may be source strings, :class:`PreparedQuery` handles, or
        full :class:`QueryRequest` objects; ``configuration`` /
        ``timeout_seconds`` apply to the string/prepared shorthand forms.
        Under ``admission="block"`` a batch larger than ``max_in_flight``
        self-throttles through the semaphore; under ``admission="reject"``
        over-limit entries fail individually with
        :class:`~repro.errors.ServiceOverloadedError` while the admitted
        rest of the batch still runs.  Results are gathered in request
        order; with ``return_exceptions=True`` failures (execution *and*
        admission) are returned in place instead of raised — the rest of
        the batch is never discarded.  Without it, the first failure is
        raised after every admitted request finished.
        """
        slots: list[Union[Future, BaseException]] = []
        for entry in requests:
            request = self._as_request(entry, configuration, timeout_seconds)
            try:
                slots.append(self.submit_request(request))
            except ServiceError as error:
                slots.append(error)
        results: list[ExecutionOutcome] = []
        first_error: Optional[BaseException] = None
        for slot in slots:
            if isinstance(slot, BaseException):
                error: Optional[BaseException] = slot
            else:
                try:
                    results.append(slot.result())
                    continue
                except BaseException as raised:
                    error = raised
            if return_exceptions:
                results.append(error)  # type: ignore[arg-type]
            elif first_error is None:
                first_error = error
        if first_error is not None:
            raise first_error
        return results

    def _as_request(
        self,
        entry: RequestLike,
        configuration: Optional[str],
        timeout_seconds: Optional[float],
    ) -> QueryRequest:
        if isinstance(entry, QueryRequest):
            return entry
        if isinstance(entry, PreparedQuery):
            return QueryRequest(
                prepared=entry,
                configuration=configuration or "auto",
                timeout_seconds=timeout_seconds,
            )
        return QueryRequest(
            source=entry,
            configuration=configuration or "auto",
            timeout_seconds=timeout_seconds,
        )

    # -- the worker body ---------------------------------------------------------------

    def _run(self, request: QueryRequest, metrics: EngineMetrics) -> ExecutionOutcome:
        budget = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.default_timeout_seconds
        )
        started = time.perf_counter()
        # ``_in_flight`` must reach zero *before* the future's result is
        # visible — a caller that just collected every result may read
        # ``service_stats()`` immediately, and the done callback (which
        # releases the admission slot) only runs after ``set_result``.
        try:
            try:
                outcome = self._run_resilient(request, budget, started)
            except QueryTimeoutError:
                with self._metrics_lock:
                    metrics.timed_out += 1
                raise
            except BaseException:
                with self._metrics_lock:
                    metrics.failed += 1
                raise
            elapsed = time.perf_counter() - started
            with self._metrics_lock:
                metrics.completed += 1
                if getattr(outcome, "degraded_from", None) is not None:
                    metrics.degraded += 1
                metrics.total_seconds += elapsed
                metrics.max_seconds = max(metrics.max_seconds, elapsed)
            return outcome
        finally:
            with self._drained:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._drained.notify_all()

    def _run_resilient(
        self, request: QueryRequest, budget: Optional[float], started: float
    ) -> ExecutionOutcome:
        """Walk the engine chain, retrying each engine per the retry policy.

        The chain starts with the requested engine; further entries come
        from the fallback policy (unless the request opted out).  Per
        engine: the breaker is consulted first (open → shed and move on),
        then :meth:`_attempt_with_retry` runs the query with backoff.
        A timeout propagates immediately — the budget is gone, there is
        nothing left to degrade with.  A semantic (non-backend) error on
        the *requested* engine propagates raw; only backend faults walk
        further down the chain.  If the whole chain faults, the first
        engine's error surfaces wrapped in
        :class:`~repro.errors.DegradedExecutionError`.
        """
        if request.fallback and self.fallback_policy is not None:
            chain = self.fallback_policy.chain_for(request.configuration)
        else:
            chain = (request.configuration,)
        errors_seen: list[tuple[str, BaseException]] = []
        for position, engine in enumerate(chain):
            breaker = self._breaker(engine)
            if breaker is not None and not breaker.allow():
                with self._metrics_lock:
                    self._resilience["breaker_short_circuits"] += 1
                errors_seen.append((engine, breaker.open_error()))
                continue
            try:
                outcome = self._attempt_with_retry(
                    request, engine, breaker, budget, started, fresh=position == 0
                )
            except QueryTimeoutError:
                raise
            except BaseException as error:
                if not is_backend_fault(error):
                    # Semantic failure — every engine would fail it the same
                    # way, so degrading is pure waste.  Surface it raw.
                    raise
                if len(chain) == 1:
                    # No degradation possible (policy off, opted out, or an
                    # interpreted floor engine): raw PR 4 behaviour.
                    raise
                errors_seen.append((engine, error))
                continue
            if position > 0:
                try:
                    outcome.degraded_from = chain[0]
                except AttributeError:
                    pass  # exotic outcome type (test stubs); counters still track it
                with self._metrics_lock:
                    self._resilience["fallbacks"] += 1
            return outcome
        first_engine, first_error = errors_seen[0]
        if len(chain) == 1:
            # Only reachable via an open breaker on a chain of one.
            raise first_error
        with self._metrics_lock:
            self._resilience["exhausted"] += 1
        raise DegradedExecutionError(
            f"all engines failed for this request (tried: {', '.join(chain)}); "
            f"first failure was on {first_engine!r}: {first_error}",
            cause=first_error,
            engine=first_engine,
            attempted=chain,
        ) from first_error

    def _attempt_with_retry(
        self,
        request: QueryRequest,
        engine: str,
        breaker: Optional[CircuitBreaker],
        budget: Optional[float],
        started: float,
        fresh: bool = False,
    ) -> ExecutionOutcome:
        """Run one engine with the retry policy's backoff loop.

        Each attempt gets the request's *remaining* budget as its timeout,
        so retries and fallback engines can never stretch a request past
        its deadline.  The very first execution of the requested engine
        (``fresh=True``) gets the budget verbatim — no clock arithmetic on
        the fast path.
        """
        attempt = 0
        while True:
            attempt += 1
            if budget is None:
                remaining = None
            elif fresh and attempt == 1:
                remaining = budget
            else:
                remaining = budget - (time.perf_counter() - started)
            if remaining is not None and remaining <= 0:
                raise QueryTimeoutError(
                    f"query exceeded its {budget}s budget before "
                    f"attempt {attempt} on engine {engine!r} could start"
                )
            try:
                outcome = self._execute_once(request, engine, remaining)
            except BaseException as error:
                if breaker is not None and is_backend_fault(error):
                    breaker.record_failure()
                delay = (
                    None
                    if self.retry_policy is None
                    else self.retry_policy.next_delay(attempt, error, remaining)
                )
                if delay is None:
                    raise
                with self._metrics_lock:
                    self._resilience["retries"] += 1
                if delay > 0:
                    self._sleep(delay)
                continue
            if breaker is not None:
                breaker.record_success()
            return outcome

    def _execute_once(
        self, request: QueryRequest, engine: str, remaining: Optional[float]
    ) -> ExecutionOutcome:
        if request.prepared is not None:
            return request.prepared.run(
                request.bindings,
                engine=engine,
                timeout_seconds=remaining,
            )
        return self.session.execute(
            request.source,
            bindings=request.bindings,
            timeout_seconds=remaining,
            configuration=engine,
        )

    def _breaker(self, engine: str) -> Optional[CircuitBreaker]:
        """The lazily-built breaker for one engine (None when disabled)."""
        if self.breaker_policy is None:
            return None
        with self._breakers_lock:
            breaker = self._breakers.get(engine)
            if breaker is None:
                breaker = self._breakers[engine] = self.breaker_policy.build(engine)
            return breaker

    def _release_slot(self, future: Future) -> None:
        # The in-flight count is decremented at the end of ``_run`` (see
        # there for why); this callback normally only returns the admission
        # slot.  A future cancelled while still queued never reaches
        # ``_run``, so its count is settled here instead.
        if future.cancelled():
            with self._drained:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._drained.notify_all()
        self._slots.release()

    def _engine_metrics(self, configuration: str) -> EngineMetrics:
        with self._metrics_lock:
            metrics = self._metrics.get(configuration)
            if metrics is None:
                metrics = self._metrics[configuration] = EngineMetrics()
            return metrics

    # -- monitoring --------------------------------------------------------------------

    def service_stats(self) -> dict[str, object]:
        """One consistent snapshot of service + plan-cache counters.

        ``engines`` is keyed by the *requested* configuration name (so
        ``"auto"`` traffic is reported as such rather than smeared over the
        engines it resolved to); ``plan_cache`` is the session's shared
        cache — its hit rate spans ad-hoc service traffic, prepared
        handles, and any serial use of the same session.
        """
        with self._metrics_lock:
            engines = {
                name: metrics.snapshot() for name, metrics in self._metrics.items()
            }
            in_flight = self._in_flight
            resilience: dict[str, object] = dict(self._resilience)
        with self._breakers_lock:
            breakers = list(self._breakers.items())
        resilience["breakers"] = {
            engine: breaker.snapshot() for engine, breaker in breakers
        }
        return {
            "engines": engines,
            "in_flight": in_flight,
            "max_in_flight": self.max_in_flight,
            "max_workers": self.max_workers,
            "admission": self.admission,
            "closed": self._closed,
            "resilience": resilience,
            "plan_cache": self.session.cache_stats(),
        }

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(
        self,
        wait: bool = True,
        drain: bool = False,
        drain_timeout: Optional[float] = None,
    ) -> None:
        """Stop accepting work and shut the pool down.  Idempotent.

        In-flight queries finish (``wait=True`` blocks until they do); the
        underlying session stays open — the service never owns it.

        ``drain=True`` makes the shutdown *graceful and bounded*: admission
        stops immediately, then the call waits — at most ``drain_timeout``
        seconds (None = indefinitely) — for every in-flight query to
        finish before shutting the executor down.  Returns normally either
        way; queries still running after the drain window keep their
        workers until they complete (the executor never cancels running
        work), but no new work is admitted.
        """
        self._closed = True
        if drain:
            with self._drained:
                self._drained.wait_for(
                    lambda: self._in_flight == 0, timeout=drain_timeout
                )
            drained = self._in_flight == 0
            # Past the drain window: don't block shutdown on stragglers
            # unless the drain actually completed and wait=True is cheap.
            self._executor.shutdown(wait=wait and drained)
            return
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

""":class:`QueryService` — a concurrent query front-end over one session.

The paper's claim is that an off-the-shelf RDBMS can *serve* XQuery
workloads; this module supplies the serving machinery the evaluation
chapters take for granted:

* a **worker pool** (`concurrent.futures.ThreadPoolExecutor`) executing
  queries against one shared :class:`~repro.core.session.Session` — safe
  because the session's processor is copy-on-write, the plan cache is
  locked, and the SQLite mirror hands every worker thread its own pooled
  read connection (SQLite releases the GIL while a statement runs, so SQL
  executions genuinely overlap on multicore hosts);
* **admission control** — at most ``max_in_flight`` queries queued or
  running; beyond that :meth:`QueryService.submit` either blocks
  (``admission="block"``, the default) or fails fast with
  :class:`~repro.errors.ServiceOverloadedError` (``admission="reject"``);
* **per-query budgets** — a ``timeout_seconds`` per request (or the
  service-wide default) flows into the engines' existing budget
  mechanisms: SQLite's progress handler on the ``sql``/``sql-stacked``
  paths, the interpreter/operator budgets elsewhere; overruns surface as
  :class:`~repro.errors.QueryTimeoutError` on the future and are counted;
* **metrics** — per-engine counters (submitted/completed/failed/timed
  out/rejected, latency totals) plus the session's plan-cache counters,
  one consistent snapshot via :meth:`QueryService.service_stats`.

Every engine configuration of the paper's Table IX experiment runs through
the service unchanged (``stacked``, ``isolated``, ``join-graph``, ``sql``,
``sql-stacked``, or ``auto``), with results bit-for-bit identical to serial
execution — the concurrency stress tests pin exactly that.

Example:

>>> from repro.core.session import Session
>>> session = Session()
>>> session.register("tiny.xml", "<a><b>1</b><b>2</b></a>")
0
>>> with QueryService(session, max_workers=2) as service:
...     future = service.submit('doc("tiny.xml")/descendant::b')
...     batch = service.execute_many(
...         ['doc("tiny.xml")/descendant::b[. > 1]'] * 2, configuration="sql")
>>> future.result().items
[2, 4]
>>> [outcome.items for outcome in batch]
[[4], [4]]
>>> service.service_stats()["engines"]["sql"]["completed"]
2
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.errors import (
    QueryTimeoutError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.core.pipeline import ExecutionOutcome, PreparedQuery
from repro.core.session import Session


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the service.

    Either ``source`` (ad-hoc text, compiled through the session's plan
    cache) or ``prepared`` (a :class:`~repro.core.pipeline.PreparedQuery`
    handle) must be set.  ``configuration`` picks the engine —
    ``"auto"``/``"stacked"``/``"isolated"``/``"join-graph"``/``"sql"``/
    ``"sql-stacked"``, exactly as everywhere else in the stack.
    """

    source: Optional[str] = None
    prepared: Optional[PreparedQuery] = None
    bindings: Optional[Mapping[str, object]] = None
    configuration: str = "auto"
    timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.source is None) == (self.prepared is None):
            raise ValueError("a QueryRequest needs exactly one of source/prepared")


#: Anything :meth:`QueryService.execute_many` accepts as one request.
RequestLike = Union[str, PreparedQuery, QueryRequest]


@dataclass
class EngineMetrics:
    """Counters for one engine configuration (keyed by *requested* name)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    rejected: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def snapshot(self) -> dict[str, object]:
        mean = self.total_seconds / self.completed if self.completed else 0.0
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "rejected": self.rejected,
            "total_seconds": self.total_seconds,
            "mean_seconds": mean,
            "max_seconds": self.max_seconds,
        }


class QueryService:
    """A thread-pool query service over one :class:`Session`.

    The service does not own the session: closing the service stops the
    workers but leaves the session (and its SQLite mirror) usable — several
    services may even share one session, since all shared state below it
    is lock-protected.

    ``admission`` is ``"block"`` (default: :meth:`submit` waits for a free
    slot) or ``"reject"`` (raise
    :class:`~repro.errors.ServiceOverloadedError` immediately — the
    behaviour a load balancer wants).
    """

    def __init__(
        self,
        session: Session,
        max_workers: int = 8,
        max_in_flight: Optional[int] = None,
        default_timeout_seconds: Optional[float] = None,
        admission: str = "block",
    ):
        if max_workers < 1:
            raise ValueError("QueryService needs at least one worker")
        if admission not in ("block", "reject"):
            raise ValueError('admission must be "block" or "reject"')
        if max_in_flight is None:
            max_in_flight = 2 * max_workers
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.session = session
        self.max_workers = max_workers
        self.max_in_flight = max_in_flight
        self.default_timeout_seconds = default_timeout_seconds
        self.admission = admission
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._metrics: dict[str, EngineMetrics] = {}
        self._metrics_lock = threading.Lock()
        self._in_flight = 0
        self._closed = False

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        source: Optional[str] = None,
        bindings: Optional[Mapping[str, object]] = None,
        configuration: str = "auto",
        timeout_seconds: Optional[float] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> "Future[ExecutionOutcome]":
        """Enqueue one query; returns a future of its ``ExecutionOutcome``.

        The future raises whatever the engine raised — including
        :class:`~repro.errors.QueryTimeoutError` when the per-query budget
        (``timeout_seconds`` or the service default) ran out.
        """
        request = QueryRequest(
            source=source,
            prepared=prepared,
            bindings=bindings,
            configuration=configuration,
            timeout_seconds=timeout_seconds,
        )
        return self.submit_request(request)

    def submit_request(self, request: QueryRequest) -> "Future[ExecutionOutcome]":
        """:meth:`submit`, taking an assembled :class:`QueryRequest`."""
        if self._closed:
            raise ServiceClosedError("this QueryService has been closed")
        metrics = self._engine_metrics(request.configuration)
        if not self._slots.acquire(blocking=self.admission == "block"):
            with self._metrics_lock:
                metrics.rejected += 1
            raise ServiceOverloadedError(
                f"admission control: {self.max_in_flight} queries already in flight"
            )
        with self._metrics_lock:
            metrics.submitted += 1
            self._in_flight += 1
        try:
            future = self._executor.submit(self._run, request, metrics)
        except RuntimeError as error:
            # The executor shut down between the closed check and here.
            with self._metrics_lock:
                metrics.submitted -= 1
                self._in_flight -= 1
            self._slots.release()
            raise ServiceClosedError("this QueryService has been closed") from error
        future.add_done_callback(self._release_slot)
        return future

    def execute(
        self,
        source: Optional[str] = None,
        bindings: Optional[Mapping[str, object]] = None,
        configuration: str = "auto",
        timeout_seconds: Optional[float] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> ExecutionOutcome:
        """Submit one query and wait for its result (convenience wrapper)."""
        return self.submit(
            source=source,
            bindings=bindings,
            configuration=configuration,
            timeout_seconds=timeout_seconds,
            prepared=prepared,
        ).result()

    def execute_many(
        self,
        requests: Iterable[RequestLike],
        configuration: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> list[ExecutionOutcome]:
        """Execute a batch; results come back in *request order*.

        Entries may be source strings, :class:`PreparedQuery` handles, or
        full :class:`QueryRequest` objects; ``configuration`` /
        ``timeout_seconds`` apply to the string/prepared shorthand forms.
        Under ``admission="block"`` a batch larger than ``max_in_flight``
        self-throttles through the semaphore; under ``admission="reject"``
        over-limit entries fail individually with
        :class:`~repro.errors.ServiceOverloadedError` while the admitted
        rest of the batch still runs.  Results are gathered in request
        order; with ``return_exceptions=True`` failures (execution *and*
        admission) are returned in place instead of raised — the rest of
        the batch is never discarded.  Without it, the first failure is
        raised after every admitted request finished.
        """
        slots: list[Union[Future, BaseException]] = []
        for entry in requests:
            request = self._as_request(entry, configuration, timeout_seconds)
            try:
                slots.append(self.submit_request(request))
            except ServiceError as error:
                slots.append(error)
        results: list[ExecutionOutcome] = []
        first_error: Optional[BaseException] = None
        for slot in slots:
            if isinstance(slot, BaseException):
                error: Optional[BaseException] = slot
            else:
                try:
                    results.append(slot.result())
                    continue
                except BaseException as raised:
                    error = raised
            if return_exceptions:
                results.append(error)  # type: ignore[arg-type]
            elif first_error is None:
                first_error = error
        if first_error is not None:
            raise first_error
        return results

    def _as_request(
        self,
        entry: RequestLike,
        configuration: Optional[str],
        timeout_seconds: Optional[float],
    ) -> QueryRequest:
        if isinstance(entry, QueryRequest):
            return entry
        if isinstance(entry, PreparedQuery):
            return QueryRequest(
                prepared=entry,
                configuration=configuration or "auto",
                timeout_seconds=timeout_seconds,
            )
        return QueryRequest(
            source=entry,
            configuration=configuration or "auto",
            timeout_seconds=timeout_seconds,
        )

    # -- the worker body ---------------------------------------------------------------

    def _run(self, request: QueryRequest, metrics: EngineMetrics) -> ExecutionOutcome:
        budget = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.default_timeout_seconds
        )
        started = time.perf_counter()
        try:
            if request.prepared is not None:
                outcome = request.prepared.run(
                    request.bindings,
                    engine=request.configuration,
                    timeout_seconds=budget,
                )
            else:
                outcome = self.session.execute(
                    request.source,
                    bindings=request.bindings,
                    timeout_seconds=budget,
                    configuration=request.configuration,
                )
        except QueryTimeoutError:
            with self._metrics_lock:
                metrics.timed_out += 1
            raise
        except BaseException:
            with self._metrics_lock:
                metrics.failed += 1
            raise
        elapsed = time.perf_counter() - started
        with self._metrics_lock:
            metrics.completed += 1
            metrics.total_seconds += elapsed
            metrics.max_seconds = max(metrics.max_seconds, elapsed)
        return outcome

    def _release_slot(self, _future: Future) -> None:
        with self._metrics_lock:
            self._in_flight -= 1
        self._slots.release()

    def _engine_metrics(self, configuration: str) -> EngineMetrics:
        with self._metrics_lock:
            metrics = self._metrics.get(configuration)
            if metrics is None:
                metrics = self._metrics[configuration] = EngineMetrics()
            return metrics

    # -- monitoring --------------------------------------------------------------------

    def service_stats(self) -> dict[str, object]:
        """One consistent snapshot of service + plan-cache counters.

        ``engines`` is keyed by the *requested* configuration name (so
        ``"auto"`` traffic is reported as such rather than smeared over the
        engines it resolved to); ``plan_cache`` is the session's shared
        cache — its hit rate spans ad-hoc service traffic, prepared
        handles, and any serial use of the same session.
        """
        with self._metrics_lock:
            engines = {
                name: metrics.snapshot() for name, metrics in self._metrics.items()
            }
            in_flight = self._in_flight
        return {
            "engines": engines,
            "in_flight": in_flight,
            "max_in_flight": self.max_in_flight,
            "max_workers": self.max_workers,
            "admission": self.admission,
            "closed": self._closed,
            "plan_cache": self.session.cache_stats(),
        }

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the pool down.  Idempotent.

        In-flight queries finish (``wait=True`` blocks until they do); the
        underlying session stays open — the service never owns it.
        """
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

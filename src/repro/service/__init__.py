"""The concurrent serving layer: a worker pool over one :class:`Session`.

:class:`QueryService` is the deployment-shaped entry point the ROADMAP's
north star asks for — submit queries from any thread, run them on a pool
of workers with admission control and per-query budgets, and read
per-engine latency/throughput counters back out.  See
:mod:`repro.service.service` for the full design notes.
"""

from repro.service.service import (
    EngineMetrics,
    QueryRequest,
    QueryService,
)

__all__ = ["EngineMetrics", "QueryRequest", "QueryService"]

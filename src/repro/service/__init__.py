"""The concurrent serving layer: a worker pool over one :class:`Session`.

:class:`QueryService` is the deployment-shaped entry point the ROADMAP's
north star asks for — submit queries from any thread, run them on a pool
of workers with admission control and per-query budgets, and read
per-engine latency/throughput counters back out.  See
:mod:`repro.service.service` for the full design notes.

The resilience layer (:mod:`repro.service.resilience`) is opt-in:
construct the service with a :class:`RetryPolicy` (transient faults are
retried with deadline-aware backoff), a :class:`BreakerPolicy` (per-engine
circuit breakers shed load from a failing backend), and/or a
:class:`FallbackPolicy` (a failed engine degrades down the paper's
equivalence chain — the degraded answer is bit-for-bit the same answer).
"""

from repro.service.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    FallbackPolicy,
    RetryPolicy,
)
from repro.service.service import (
    EngineMetrics,
    QueryRequest,
    QueryService,
)

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "EngineMetrics",
    "FallbackPolicy",
    "QueryRequest",
    "QueryService",
    "RetryPolicy",
]

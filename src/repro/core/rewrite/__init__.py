"""The declarative rewrite engine behind join graph isolation.

The paper's Section III describes isolation as a *peephole rewriting
system*: small local rules, each with a structural shape and a premise over
inferred plan properties, applied until a fixpoint.  This package makes
that description literal — rules are **data**, not Python control flow:

* :mod:`repro.core.rewrite.rule` — the :class:`Rule` object (a structural
  :class:`Pattern` over operator shapes, a guard over inferred properties,
  and a builder for the replacement), the :class:`RuleRegistry`, and the
  registration-time left-linearity / sharing validator;
* :mod:`repro.core.rewrite.context` — the premise-evaluation
  :class:`RuleContext` (column provenance, upstream references, the
  ``rank_compared_upstream`` guard) with cross-step memo hooks;
* :mod:`repro.core.rewrite.rules` — the paper's rules (1)-(17) and the
  generalised key-join collapse (9*) re-expressed in the declarative form,
  assembled into the goal groups the driver runs;
* :mod:`repro.core.rewrite.engine` — the drivers: the production
  **worklist** driver (pattern-indexed dispatch over dirty nodes with
  scoped property re-inference) and the **legacy** restart-from-root
  driver kept as the benchmark baseline;
* :mod:`repro.core.rewrite.trace` — rewrite provenance: every applied
  step and every rejected application, threaded through
  :class:`~repro.core.rewriter.IsolationReport` into
  :attr:`~repro.core.stages.CompilationResult.rewrite_trace`.
"""

from repro.core.rewrite.context import RuleContext
from repro.core.rewrite.engine import LegacyDriver, WorklistDriver, run_phases
from repro.core.rewrite.rule import (
    Pattern,
    Rule,
    RuleRegistry,
    RuleValidationError,
    validate_rule,
)
from repro.core.rewrite.rules import (
    CLEANUP_GROUP,
    JOIN_GROUP,
    RANK_GROUP,
    REGISTRY,
)
from repro.core.rewrite.trace import RejectedApplication, RewriteStep, RewriteTrace

__all__ = [
    "CLEANUP_GROUP",
    "JOIN_GROUP",
    "LegacyDriver",
    "Pattern",
    "RANK_GROUP",
    "REGISTRY",
    "RejectedApplication",
    "RewriteStep",
    "RewriteTrace",
    "Rule",
    "RuleContext",
    "RuleRegistry",
    "RuleValidationError",
    "WorklistDriver",
    "run_phases",
    "validate_rule",
]

"""The isolation drivers: pattern-indexed worklist vs. restart-from-root.

Both drivers execute the same declarative rule groups with identical
observable behaviour — the same applications in the same order, the same
rejected applications, the same step accounting (pinned by the XMark
histogram tests).  They differ only in how much work one rewrite step
costs:

:class:`LegacyDriver`
    The faithful re-implementation of the pre-declarative engine: after
    every application it re-infers all plan properties from scratch and
    re-scans the plan from the root, trying every rule of the phase at
    every node.  One step is O(nodes × rules) guard evaluations; kept as
    the benchmark baseline (``benchmarks/bench_rewrite.py``).

:class:`WorklistDriver`
    The production driver.  Rule dispatch is pattern-indexed (only rules
    whose declared root class covers a node's class are consulted), and a
    *failure memo* turns the restart-scan into a worklist of dirty nodes:
    a node whose whole rule bucket failed is skipped on later steps while
    every premise input the bucket's guards can observe is provably
    unchanged (all rules tried at a node in one visit share one property
    snapshot, so the per-node entry loses nothing).
    Property re-inference is scoped the same way — the bottom-up
    ``const`` / ``key`` properties and the column-provenance paths are
    memoized by subtree object identity across steps, so a step costs
    guard evaluations proportional to the *changed region* of the plan,
    not to its size.

Why skipping is sound — every input a guard can observe is covered by one
of four channels, and each channel conservatively clears the memo:

* **subtree** (the matched node's structure, its children's ``const`` /
  ``keys``, column provenance): operators are immutable, so the memo key —
  the node *object* — changing is the only way these change.  Entries pin
  their node, so a hit implies the identical subtree.
* **local top-down state** (``icols``, ``set``, ``needed_columns`` of the
  matched node): the entry stores the property value *objects* observed at
  failure time and is re-checked by identity on revisit — sound because
  re-inference reuses the previous value object whenever the recomputed
  value is equal to it.
* **sharing** (parents of the node or of its descendants, consulted by
  projection fusion and the key-join collapse's spine widening): after
  each step the driver diffs every surviving node's parent identity tuple
  against the previous step and clears the memo for changed nodes *and
  all their ancestors* — an ancestor's guard may have looked at this
  node's parents.  A parent replaced by its *mechanical rebuild* (the
  pushout's :attr:`~repro.algebra.dag.Pushout.rebuilt` map: same operator,
  same fields, ``with_children`` over new inputs) does not count as a
  change: every field a guard can observe on that parent is intact.
* **global predicate comparisons** (``rank_compared_upstream``): the set
  of compared column origins is fingerprinted each step into an *epoch*;
  entries of the two epoch-sensitive rules ((12) and (14)) are only
  trusted within the epoch they were recorded in.

A pushout rebuilds the whole ancestor cone of a replacement, so on deep
plans most operator *objects* change every step even though almost none
of their *fields* do.  The driver therefore migrates its identity-keyed
property memos along the pushout's ``rebuilt`` map before each step —
re-keying an entry from the old object to its field-identical rebuild —
and lets the per-child/per-parent validity checks inside
:mod:`repro.core.properties` decide how far the actual change cascades.
Failure-memo entries are *not* migrated: a guard may have observed the
rebuilt node's (changed) children, so a rebuilt node is always re-tried.

Rejected applications — rules whose replacement failed the *global*
premise while being glued in (an ``AlgebraError`` from the pushout) — are
never memoized: the legacy driver re-encounters them on every scan, and
the global premise lives outside the guard's observable surface, so the
worklist retries them exactly as often.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AlgebraError
from repro.algebra.dag import iter_nodes, pushout
from repro.algebra.operators import Join, Operator, Select, Serialize
from repro.core.properties import infer_properties
from repro.core.rewrite.context import RuleContext
from repro.core.rewrite.rule import PatternIndex, Rule
from repro.core.rewrite.trace import RejectedApplication, RewriteStep

#: One phase of the goal sequence: a display name plus its rule group.
Phase = tuple[str, tuple[Rule, ...]]

#: Rules whose guard consults the global ``rank_compared_upstream`` premise;
#: their memo entries are scoped to the compared-origins epoch.
_EPOCH_SENSITIVE = frozenset({"rank_to_project(12)", "rank_pull_up(14)"})


class _DriverBase:
    """Shared bookkeeping: step accounting and the provenance trace."""

    name = "base"

    def __init__(self, max_steps: int):
        self.max_steps = max_steps
        self.steps: list[RewriteStep] = []
        self.rejections: list[RejectedApplication] = []
        self.converged = True

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def _record(
        self,
        rule: Rule,
        node: Operator,
        replacement_label: str,
        replacement_id: int,
        phase: str,
    ) -> None:
        self.steps.append(
            RewriteStep(
                rule=rule.name,
                target=node.label(),
                replacement=replacement_label,
                index=self.step_count,
                phase=phase,
                target_id=id(node),
                replacement_id=replacement_id,
            )
        )

    def _reject(self, rule: Rule, node: Operator, error: Exception, phase: str) -> None:
        self.rejections.append(
            RejectedApplication(
                rule=rule.name,
                target=node.label(),
                error=str(error),
                step=self.step_count,
                phase=phase,
                target_id=id(node),
            )
        )

    def run(self, plan: Operator, phases: list[Phase]) -> Operator:
        raise NotImplementedError


class LegacyDriver(_DriverBase):
    """Restart-from-root: full re-inference and a full scan after every step."""

    name = "legacy"

    def run(self, plan: Operator, phases: list[Phase]) -> Operator:
        for phase_name, rules in phases:
            if not rules:
                continue
            while True:
                if self.step_count >= self.max_steps:
                    self.converged = False
                    return plan
                rewritten = self._apply_first(plan, rules, phase_name)
                if rewritten is None:
                    break
                plan = rewritten
        return plan

    def _apply_first(
        self, plan: Operator, rules: tuple[Rule, ...], phase: str
    ) -> Optional[Operator]:
        ctx = RuleContext(plan, infer_properties(plan))
        for node in iter_nodes(plan):
            if isinstance(node, Serialize):
                continue
            for rule in rules:
                result = rule.apply(node, ctx)
                if result is None:
                    continue
                replacements = result if isinstance(result, dict) else {id(node): result}
                replacement_label = replacements[id(node)].label()
                try:
                    glued = pushout(plan, replacements)
                except AlgebraError as error:
                    # The rewrite is locally sound but globally inapplicable:
                    # rebuilding the DAG tripped an operator invariant (e.g.
                    # a widened shared spine makes a far-away join's inputs
                    # overlap).  The constructor checks are the exact global
                    # premise — record the refusal and keep scanning; the
                    # plan is unchanged.
                    self._reject(rule, node, error, phase)
                    continue
                new_at_target = glued.glued.get(id(node))
                self._record(
                    rule,
                    node,
                    replacement_label,
                    id(new_at_target) if new_at_target is not None else 0,
                    phase,
                )
                return glued.root
        return None


class WorklistDriver(_DriverBase):
    """Pattern-indexed dispatch over dirty nodes with scoped re-inference."""

    name = "worklist"

    def __init__(self, max_steps: int):
        super().__init__(max_steps)
        #: ``id(node) -> (node, icols, set, refs, epoch)`` recording that
        #: *every* rule of the node's dispatch bucket failed to match while
        #: the node held exactly these property values; the values are
        #: compared by *object identity* on revisit (see the module
        #: docstring).  One entry per node suffices because all rules tried
        #: at a node within one step observe the same property snapshot.
        #: Entries pin their node object; they are phase-scoped (cleared at
        #: every phase transition, since the bucket they quantify over
        #: changes with the phase) and never written on a visit that saw a
        #: global-premise rejection (the rejected rule must be retried on
        #: every later scan).
        self._fail: dict[int, tuple[Operator, frozenset, bool, frozenset, int]] = {}
        #: Cross-step memos, keyed by object identity (entries pin their
        #: node; validation contracts are documented at each memo's type).
        self._bottom_up_memo: dict = {}
        self._top_down_memo: dict = {}
        self._provenance_memo: dict = {}
        #: The previous step's :attr:`~repro.algebra.dag.Pushout.rebuilt`
        #: map — the memo-migration input consumed at the start of the next
        #: step.
        self._last_rebuilt: dict[int, Operator] = {}
        #: Previous step's plan root (pinned so ids stay unique), per-node
        #: parent identity tuples and predicate-node identity-set, for the
        #: sharing / epoch diffs.
        self._prev_root: Optional[Operator] = None
        self._prev_parent_ids: Optional[dict[int, tuple[int, ...]]] = None
        self._prev_predicate_ids: Optional[frozenset[int]] = None
        self._epoch = 0
        self._steps_since_prune = 0

    def run(self, plan: Operator, phases: list[Phase]) -> Operator:
        for phase_name, rules in phases:
            if not rules:
                continue
            index = PatternIndex(rules, sensitive=_EPOCH_SENSITIVE)
            # Failure entries quantify over the *current phase's* buckets.
            self._fail.clear()
            while True:
                if self.step_count >= self.max_steps:
                    self.converged = False
                    return plan
                rewritten = self._step(plan, index, phase_name)
                if rewritten is None:
                    break
                plan = rewritten
        return plan

    # -- one step -----------------------------------------------------------------

    def _step(self, plan: Operator, index: PatternIndex, phase: str) -> Optional[Operator]:
        # Migrate the property memos along the previous pushout's mechanical
        # rebuilds: re-key each entry to the field-identical new object and
        # pin it (see the module docstring; validity is still decided by
        # the per-child/per-parent checks inside the memos' consumers).
        rebuilt = self._last_rebuilt
        if rebuilt:
            for memo in (self._bottom_up_memo, self._top_down_memo):
                for old_id, new_node in rebuilt.items():
                    entry = memo.pop(old_id, None)
                    if entry is not None:
                        memo[id(new_node)] = (new_node,) + entry[1:]
        # One traversal per step: the topological order and the parent map
        # are computed once and shared by property inference, the rule
        # context, the pushout fast path and the memo maintenance below.
        # Inlined post-order DFS (cf. ``iter_nodes``): the generator's
        # resumption overhead is measurable at one traversal per step.
        nodes: list[Operator] = []
        seen: set[int] = set()
        walk: list[tuple[Operator, bool]] = [(plan, False)]
        while walk:
            node, expanded = walk.pop()
            if expanded:
                nodes.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            walk.append((node, True))
            for child in reversed(node.children):
                if id(child) not in seen:
                    walk.append((child, False))
        parents: dict[int, list[Operator]] = {id(node): [] for node in nodes}
        for node in nodes:
            for child in node.children:
                parents[id(child)].append(node)
        properties = infer_properties(
            plan,
            bottom_up_memo=self._bottom_up_memo,
            top_down_memo=self._top_down_memo,
            order=nodes,
            parents=parents,
            rebuilt=rebuilt,
        )
        ctx = RuleContext(
            plan,
            properties,
            provenance_memo=self._provenance_memo,
            parents=parents,
        )
        self._refresh_memos(plan, ctx, nodes, rebuilt)
        self._last_rebuilt = {}
        epoch = self._epoch
        fail = self._fail
        icols_by = properties._icols
        set_by = properties._set
        refs_by = properties._refs
        for_node = index.for_node
        epoch_blind = index.epoch_blind
        for node in nodes:
            if isinstance(node, Serialize):
                continue
            bucket = for_node(node)
            if not bucket:
                continue
            node_id = id(node)
            icols = icols_by[node_id]
            is_set = set_by[node_id]
            refs = refs_by[node_id]
            entry = fail.get(node_id)
            if (
                entry is not None
                and entry[0] is node
                and entry[1] is icols
                and entry[2] == is_set
                and entry[3] is refs
                and (entry[4] == epoch or epoch_blind(node))
            ):
                continue  # premises provably unchanged: every rule still fails
            rejected = False
            for rule in bucket:
                result = rule.apply(node, ctx)
                if result is None:
                    continue
                replacements = result if isinstance(result, dict) else {node_id: result}
                replacement_label = replacements[node_id].label()
                try:
                    glued = pushout(plan, replacements, parents=parents, order=nodes)
                except AlgebraError as error:
                    # Global-premise rejection: never memoized (see module
                    # docstring) — the pair is retried on every later scan.
                    self._reject(rule, node, error, phase)
                    rejected = True
                    continue
                self._last_rebuilt = glued.rebuilt
                new_at_target = glued.glued.get(node_id)
                self._record(
                    rule,
                    node,
                    replacement_label,
                    id(new_at_target) if new_at_target is not None else 0,
                    phase,
                )
                return glued.root
            if not rejected:
                fail[node_id] = (node, icols, is_set, refs, epoch)
        return None

    # -- memo maintenance ---------------------------------------------------------

    def _refresh_memos(
        self,
        plan: Operator,
        ctx: RuleContext,
        nodes: list[Operator],
        rebuilt: dict[int, Operator],
    ) -> None:
        """Clear memo entries whose premise channels changed; prune the dead.

        Runs once per step in O(plan edges): identity comparisons only, no
        property or provenance work.  Dead entries (keyed by nodes no
        longer in the plan) are harmless — they pin their node object, so
        an id can never be recycled into a false hit — and are swept only
        periodically to keep the per-step cost flat.
        """
        # Epoch: ``rank_compared_upstream`` is a function of the plan's σ/⋈
        # operators (each predicate column's origin is determined by the —
        # immutable — operator object it hangs off).  An unchanged σ/⋈
        # identity-set therefore implies an unchanged compared-origins set;
        # bump the epoch whenever the identity-set moved (conservative: a
        # changed set merely re-enables rules (12)/(14) for one re-try).
        # Mechanical rebuilds do NOT excuse a σ/⋈ here: the rebuild's
        # *subtree* changed, so its predicate columns may resolve to new
        # origins.
        predicate_ids = frozenset(
            id(node) for node in nodes if isinstance(node, (Select, Join))
        )
        if (
            self._prev_predicate_ids is not None
            and predicate_ids != self._prev_predicate_ids
        ):
            self._epoch += 1
        # Sharing: diff every surviving node's parent identity tuple against
        # the previous step; a change dirties the node and all its ancestors
        # (their guards may consult this node's parents).  A parent that
        # merely became its mechanical rebuild is normalised back to its old
        # id first — every parent field a guard can observe is intact, so
        # the edge did not change in any way a guard could have seen.
        parent_ids = {
            nid: tuple(map(id, plist)) for nid, plist in ctx.parents.items()
        }
        if self._prev_parent_ids is not None and self._fail:
            previous_parent_ids = self._prev_parent_ids
            old_id_of = {id(new): old_id for old_id, new in rebuilt.items()}
            dirty = []
            for node in nodes:
                current = parent_ids[id(node)]
                previous = previous_parent_ids.get(id(node))
                if previous is None or previous == current:
                    continue  # brand-new node, or untouched edges
                if previous == tuple(old_id_of.get(i, i) for i in current):
                    continue  # parents merely mechanically rebuilt
                dirty.append(node)
            if dirty:
                seen = {id(node) for node in dirty}
                queue = list(dirty)
                while queue:
                    for parent in ctx.parents.get(id(queue.pop()), []):
                        if id(parent) not in seen:
                            seen.add(id(parent))
                            queue.append(parent)
                self._fail = {
                    key: entry
                    for key, entry in self._fail.items()
                    if key not in seen
                }
        # Keep the previous root alive until *after* the diffs above so no
        # id from the previous step could have been recycled meanwhile.
        self._prev_root = plan
        self._prev_parent_ids = parent_ids
        self._prev_predicate_ids = predicate_ids
        # Periodic sweep of entries keyed by dropped nodes (memory only).
        self._steps_since_prune += 1
        if self._steps_since_prune >= 64:
            self._steps_since_prune = 0
            alive = set(parent_ids)
            self._fail = {k: v for k, v in self._fail.items() if k in alive}
            self._bottom_up_memo = {
                k: v for k, v in self._bottom_up_memo.items() if k in alive
            }
            self._top_down_memo = {
                k: v for k, v in self._top_down_memo.items() if k in alive
            }
            self._provenance_memo = {
                k: v for k, v in self._provenance_memo.items() if k[0] in alive
            }


#: Driver name → class, the dispatch table behind ``JoinGraphIsolation.driver``.
DRIVERS: dict[str, type[_DriverBase]] = {
    LegacyDriver.name: LegacyDriver,
    WorklistDriver.name: WorklistDriver,
}


def run_phases(
    plan: Operator,
    phases: list[Phase],
    max_steps: int = 5000,
    driver: str = "worklist",
) -> tuple[Operator, _DriverBase]:
    """Run the goal sequence with the named driver; the driver carries the trace."""
    try:
        driver_class = DRIVERS[driver]
    except KeyError:
        raise ValueError(
            f"unknown rewrite driver {driver!r} (expected one of {sorted(DRIVERS)})"
        ) from None
    engine = driver_class(max_steps)
    return engine.run(plan, phases), engine

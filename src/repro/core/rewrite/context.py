"""Premise-evaluation context shared by all rewrite rules for one step.

The :class:`RuleContext` is what a rule's *guard* sees: the plan root, the
inferred :class:`~repro.core.properties.PlanProperties`, the parent map,
column provenance, the conservative ``upstream_refs`` superset of
``icols``, and the global ``rank_compared_upstream`` premise.

Guards must evaluate their premises exclusively through this interface —
that closed surface is what lets the worklist driver prove that a failed
match cannot have become applicable while a node and its context
fingerprint are unchanged (see :mod:`repro.core.rewrite.engine`).

``provenance_memo`` is the cross-step memo hook: provenance paths depend
only on a node's subtree, and subtrees are identified by object identity
(operators are immutable), so the worklist driver threads one memo dict
through every step of an isolation run.  The memo holds the node
reference alongside the cached path, which both validates the entry and
pins the object so its ``id`` cannot be recycled while the entry lives.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.algebra.dag import iter_nodes, parents_map
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    GroupAggregate,
    Join,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.core.properties import PlanProperties, _parent_refs

#: One provenance path: ``[(node, column), ..., (origin, origin_column)]``.
ProvenancePath = list
#: Cross-step provenance memo: ``(id(node), column) -> (node, path)``.
ProvenanceMemo = dict


class RuleContext:
    """Premise-evaluation context shared by all rules for one rewrite step."""

    def __init__(
        self,
        root: Operator,
        properties: PlanProperties,
        provenance_memo: Optional[ProvenanceMemo] = None,
        parents: Optional[dict[int, list[Operator]]] = None,
    ):
        self.root = root
        self.properties = properties
        self.parents = parents if parents is not None else parents_map(root)
        self._upstream_refs_memo: dict[int, frozenset[str]] = {}
        self._compared_origins: Optional[set[tuple[int, str]]] = None
        self._provenance_memo: ProvenanceMemo = (
            provenance_memo if provenance_memo is not None else {}
        )

    # -- fresh names -------------------------------------------------------------

    #: Process-wide counter: rule contexts are rebuilt after every rewrite
    #: step, so a per-context counter would re-issue the same "fresh" names
    #: step after step — and two widenings of one shared spine would then
    #: collide on identical carry columns.
    _fresh_columns = itertools.count(1)

    def fresh_column(self, hint: str = "carry") -> str:
        return f"{hint}_w{next(self._fresh_columns)}"

    # -- column provenance ---------------------------------------------------------

    def provenance(self, node: Operator, column: str) -> list[tuple[Operator, str]]:
        """The provenance path of ``column``: ``[(node, name), ..., (origin, name)]``.

        The path follows projections through their renamings, passes through
        row-preserving unary operators and descends into the join/cross input
        that provides the column.  It ends at the operator that *introduced*
        the column (a leaf, ``@``, ``#`` or ``ϱ``).  Paths depend only on the
        subtree below ``node``, so they are memoized by object identity —
        across rewrite steps when the driver shares the memo.
        """
        memo_key = (id(node), column)
        cached = self._provenance_memo.get(memo_key)
        if cached is not None and cached[0] is node:
            return cached[1]
        path: list[tuple[Operator, str]] = []
        current, name = node, column
        while True:
            path.append((current, name))
            if isinstance(current, Project):
                name = current.renaming()[name]
                current = current.child
                continue
            if isinstance(current, (Select, Distinct, Serialize)):
                current = current.children[0]
                continue
            if isinstance(current, (Attach, RowId, RowRank)):
                if name == current.column:
                    break
                current = current.child
                continue
            if isinstance(current, GroupAggregate):
                if name == current.item_column:
                    break  # the aggregate value is introduced here
                current = current.loop  # loop columns pass through untouched
                continue
            if isinstance(current, (Join, Cross)):
                left, right = current.children
                current = left if name in left.columns else right
                continue
            break  # leaf (doc or literal table)
        self._provenance_memo[memo_key] = (node, path)
        return path

    def origin(self, node: Operator, column: str) -> tuple[Operator, str]:
        """The introducing operator and column name of ``column`` of ``node``."""
        path = self.provenance(node, column)
        return path[-1]

    # -- structural references -------------------------------------------------------

    def upstream_refs(self, node: Operator) -> frozenset[str]:
        """Column names of ``node``'s output referenced structurally upstream.

        This is a conservative superset of ``icols`` used to keep rewrites
        that narrow an operator's output schema from breaking parents that
        still *mention* a column (e.g. a dead projection item) even though
        the column is not strictly required.
        """
        eager = self.properties._refs
        if eager is not None:
            # The memoized top-down inference already computed refs for
            # every node of the plan (the worklist driver's mode).
            return eager[id(node)]
        cached = self._upstream_refs_memo.get(id(node))
        if cached is not None:
            return cached
        refs: set[str] = set()
        for parent in self.parents.get(id(node), []):  # direct parents
            refs |= _parent_refs(parent, node, self.upstream_refs(parent))
        result = frozenset(refs)
        self._upstream_refs_memo[id(node)] = result
        return result

    def needed_columns(self, node: Operator) -> frozenset[str]:
        """``icols`` widened by structural upstream references."""
        return self.properties.icols(node) | self.upstream_refs(node)

    # -- global premises --------------------------------------------------------------

    def compared_origins(self) -> frozenset[tuple[int, str]]:
        """Origins ``(id(op), column)`` compared by any σ/⋈ predicate in the plan.

        Computed once per rewrite step (memoized on the context); the
        worklist driver additionally fingerprints the whole set as an epoch
        so ``rank_compared_upstream``-guarded rules are re-tried exactly
        when the set changes.
        """
        if self._compared_origins is None:
            compared: set[tuple[int, str]] = set()
            for node in iter_nodes(self.root):
                if isinstance(node, Select):
                    bases = [node.child]
                elif isinstance(node, Join):
                    bases = list(node.children)
                else:
                    continue
                for column in node.predicate.columns():
                    base = next(b for b in bases if column in b.columns)
                    origin_node, origin_column = self.origin(base, column)
                    compared.add((id(origin_node), origin_column))
            self._compared_origins = compared
        return frozenset(self._compared_origins)

    def rank_compared_upstream(self, rank: "RowRank") -> bool:
        """Does any σ/⋈ predicate in the plan compare this rank's column?

        Positional predicates (``E[n]``) compile into a selection on the
        sequence-position rank; for such a plan the rank is *not* a pure
        ordering column, and rewrites that replace it by its ordering source
        (rule (12)) would silently change which rows the selection keeps.
        """
        return (id(rank), rank.column) in self.compared_origins()

"""Declarative rewrite rules: pattern + guard + builder, validated as data.

A :class:`Rule` is the unit the isolation engine executes:

``pattern``
    A :class:`Pattern` — the structural shape the rule matches: the
    operator class(es) at the match root plus optional per-position child
    class constraints.  Patterns are **left-linear by construction**: they
    can only constrain *classes*, never require two matched positions to
    be one and the same object.  Identity premises (the key-join
    collapse's shared anchor, rule (8)'s row-id origin) belong in guards,
    where the pushout substitution of :mod:`repro.algebra.dag` preserves
    the sharing they rely on.

``guard``
    ``guard(node, ctx) -> match | None`` — the premise over the inferred
    plan properties (Tables II-V), evaluated only when the pattern
    matched.  A non-``None`` return is the *match payload* handed to the
    builder; ``None`` means the premise failed.

``build``
    ``build(node, match, ctx) -> Operator | {id(old): new}`` — constructs
    the replacement (a single node, or a substitution map covering
    several nodes at once, as the key-join collapse uses to widen a
    shared spine).  Builders must be pure: they never mutate matched
    operators, and they reuse matched sub-plans by object identity so the
    pushout keeps the DAG's sharing intact.

``exemplar``
    A zero-argument callable returning a small pinned plan on which the
    rule fires — the fixture the sharing validator and the per-rule
    differential tests run against.

Rules are collected in a :class:`RuleRegistry`, and every registration
runs :func:`validate_rule`: a malformed rule (no pattern root, a
non-left-linear pattern, a builder that mutates operators in place or
copies leaves instead of sharing them) fails at import time, not in the
middle of an isolation run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import ReproError
from repro.algebra.dag import iter_nodes
from repro.algebra.operators import Operator, Serialize

#: What a builder may return: one replacement for the matched node, or a
#: substitution map ``{id(old): new}`` covering several nodes at once.
RuleResult = Union[Operator, Dict[int, Operator]]

Guard = Callable[[Operator, object], Optional[object]]
Builder = Callable[[Operator, object, object], RuleResult]

#: Guard payload for rules whose premise is a plain yes/no (no bound parts).
MATCHED = object()


class RuleValidationError(ReproError):
    """A rule failed registration-time validation."""


@dataclass(frozen=True)
class Pattern:
    """A structural pattern over operator shapes.

    ``root`` is the tuple of operator classes the rule can match at;
    ``children`` optionally constrains child positions (``None`` entries
    leave a position unconstrained).  Class-only constraints make every
    pattern left-linear: no operator *instance* — i.e. no identity
    constraint — can be embedded, so a pattern never requires two matched
    positions to coincide.
    """

    root: tuple[type, ...]
    children: tuple[Optional[tuple[type, ...]], ...] = ()

    def matches(self, node: Operator) -> bool:
        if not isinstance(node, self.root):
            return False
        if self.children:
            if len(node.children) < len(self.children):
                return False
            for constraint, child in zip(self.children, node.children):
                if constraint is not None and not isinstance(child, constraint):
                    return False
        return True


def pattern(
    root: Union[type, Tuple[type, ...]],
    *children: Optional[Union[type, Tuple[type, ...]]],
) -> Pattern:
    """Convenience constructor normalising classes to tuples."""
    root_tuple = root if isinstance(root, tuple) else (root,)
    child_constraints = tuple(
        None if c is None else (c if isinstance(c, tuple) else (c,)) for c in children
    )
    return Pattern(root=root_tuple, children=child_constraints)


@dataclass(frozen=True)
class Rule:
    """One declarative rewrite rule (see the module docstring)."""

    name: str
    pattern: Pattern
    guard: Guard
    build: Builder
    #: The paper's Fig. 5 rule number(s), e.g. ``"(9*)"``; ``""`` for
    #: implementation extras (projection fusion, constant folding).
    paper: str = ""
    #: A pinned plan on which the rule fires (validator + test fixture).
    exemplar: Optional[Callable[[], Operator]] = None
    #: Cleanup-phase rules must never be rejected by the global premise —
    #: they only ever shrink what is already there (asserted in tests).
    cleanup: bool = False

    def match(self, node: Operator, ctx) -> Optional[object]:
        """Pattern + guard; the match payload, or ``None``."""
        if not self.pattern.matches(node):
            return None
        return self.guard(node, ctx)

    def apply(self, node: Operator, ctx) -> Optional[RuleResult]:
        """Match and build in one step (``None`` when not applicable)."""
        match = self.match(node, ctx)
        if match is None:
            return None
        result = self.build(node, match, ctx)
        if result is node:
            return None
        return result


# -- validation --------------------------------------------------------------------


def is_left_linear(rule: Rule) -> bool:
    """True when the rule's pattern contains class constraints only.

    The :class:`Pattern` dataclass can in principle be constructed with
    arbitrary objects; a well-formed (left-linear) pattern names operator
    *classes*, never instances, so matching can never demand that two
    positions resolve to one shared object.
    """
    entries = list(rule.pattern.root)
    for constraint in rule.pattern.children:
        if constraint is not None:
            entries.extend(constraint)
    return all(isinstance(entry, type) and issubclass(entry, Operator) for entry in entries)


def _structural_fingerprint(root: Operator) -> tuple:
    """A deep structural rendering used to detect in-place mutation."""
    nodes = list(iter_nodes(root))
    index = {id(node): position for position, node in enumerate(nodes)}
    return tuple(
        (type(node).__name__, node.label(), node.columns, tuple(index[id(c)] for c in node.children))
        for node in nodes
    )


def validate_rule(rule: Rule, run_exemplar: bool = True) -> None:
    """Registration-time validation; raises :class:`RuleValidationError`.

    Structural checks (always): the rule declares a non-empty pattern root
    of operator classes, the pattern is left-linear, guard and builder are
    callable, and the match root is not the serialization point (the
    driver never rewrites ``Serialize`` itself).

    Behavioural checks (``run_exemplar``): the rule's exemplar plan is
    matched and rebuilt once, asserting that (a) the rule actually fires
    on its own fixture, (b) the input plan is structurally untouched
    afterwards — builders must not mutate operators in place — and
    (c) every leaf reachable from the replacement is one of the input
    plan's own leaf objects: builders splice matched sub-plans in by
    identity, they never deep-copy them (the sharing contract the pushout
    substitution relies on).
    """
    if not rule.name:
        raise RuleValidationError("a rewrite rule needs a name")
    if not rule.pattern.root:
        raise RuleValidationError(f"rule {rule.name!r} lacks a declared pattern root")
    if not is_left_linear(rule):
        raise RuleValidationError(
            f"rule {rule.name!r} is not left-linear: pattern constraints must be "
            "operator classes (identity premises belong in the guard)"
        )
    if any(issubclass(entry, Serialize) for entry in rule.pattern.root):
        raise RuleValidationError(
            f"rule {rule.name!r} matches at the serialization point; the driver "
            "only rewrites below it"
        )
    if not callable(rule.guard) or not callable(rule.build):
        raise RuleValidationError(f"rule {rule.name!r}: guard and build must be callable")
    if rule.exemplar is None:
        raise RuleValidationError(f"rule {rule.name!r} lacks an exemplar plan")
    if run_exemplar:
        _validate_on_exemplar(rule)


def _validate_on_exemplar(rule: Rule) -> None:
    # Deferred: properties/context import rule-free modules, but pulling
    # them at module import keeps the import graph acyclic only this way.
    from repro.core.properties import infer_properties
    from repro.core.rewrite.context import RuleContext

    plan = rule.exemplar()  # type: ignore[misc]
    before = _structural_fingerprint(plan)
    ctx = RuleContext(plan, infer_properties(plan))
    result = None
    for node in iter_nodes(plan):
        if isinstance(node, Serialize):
            continue
        result = rule.apply(node, ctx)
        if result is not None:
            break
    if result is None:
        raise RuleValidationError(f"rule {rule.name!r} does not fire on its exemplar plan")
    if _structural_fingerprint(plan) != before:
        raise RuleValidationError(f"rule {rule.name!r} mutated the matched plan in place")
    replacements = result if isinstance(result, dict) else {id(node): result}
    input_leaves = {id(n) for n in iter_nodes(plan) if n.is_leaf}
    for replacement in replacements.values():
        for part in iter_nodes(replacement):
            if part.is_leaf and id(part) not in input_leaves:
                raise RuleValidationError(
                    f"rule {rule.name!r} broke sharing: replacement leaf {part!r} "
                    "is not an input-plan object (builders must splice matched "
                    "sub-plans in by identity, not copy them)"
                )


class RuleRegistry:
    """The validated collection of rewrite rules, indexed for dispatch."""

    def __init__(self) -> None:
        self._rules: list[Rule] = []
        self._by_name: dict[str, Rule] = {}

    def register(self, rule: Rule, run_exemplar: bool = True) -> Rule:
        validate_rule(rule, run_exemplar=run_exemplar)
        if rule.name in self._by_name:
            raise RuleValidationError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        self._by_name[rule.name] = rule
        return rule

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def get(self, name: str) -> Rule:
        return self._by_name[name]

    def bucket(self, rules: tuple[Rule, ...]) -> "PatternIndex":
        """A pattern index over ``rules`` (order-preserving per bucket)."""
        return PatternIndex(rules)


class PatternIndex:
    """Rules bucketed by concrete operator class (lazy, order-preserving).

    Dispatch by ``type(node)`` replaces the legacy driver's "try every rule
    at every node" inner loop: only rules whose declared pattern root
    covers the node's class are ever consulted.
    """

    def __init__(self, rules: tuple[Rule, ...], sensitive: frozenset = frozenset()):
        self._rules = rules
        self._buckets: dict[type, tuple[Rule, ...]] = {}
        #: Rule names whose guards consult a global premise; see
        #: :func:`epoch_blind`.
        self._sensitive = sensitive
        self._epoch_blind: dict[type, bool] = {}

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def for_node(self, node: Operator) -> tuple[Rule, ...]:
        bucket = self._buckets.get(type(node))
        if bucket is None:
            bucket = tuple(
                rule for rule in self._rules if isinstance(node, rule.pattern.root)
            )
            self._buckets[type(node)] = bucket
        return bucket

    def epoch_blind(self, node: Operator) -> bool:
        """True when no rule of the node's bucket is globally sensitive.

        The worklist driver re-tries globally sensitive rules whenever its
        compared-origins epoch moves; a node whose whole bucket is blind to
        the epoch can keep its failure-memo entry across epoch bumps.
        """
        blind = self._epoch_blind.get(type(node))
        if blind is None:
            blind = not any(
                rule.name in self._sensitive for rule in self.for_node(node)
            )
            self._epoch_blind[type(node)] = blind
        return blind

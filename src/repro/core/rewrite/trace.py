"""Rewrite provenance: what fired, where, and what was turned away.

Every isolation run produces a :class:`RewriteTrace` — the ordered list of
applied :class:`RewriteStep` records plus the :class:`RejectedApplication`
records for rules whose local premise held but whose *global* premise (the
operator invariants checked while gluing the replacement into the plan)
did not.  The trace is carried by
:class:`~repro.core.rewriter.IsolationReport` and surfaces on
:attr:`~repro.core.stages.CompilationResult.rewrite_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RewriteStep:
    """One applied rewrite step.

    ``target_id`` / ``replacement_id`` are the Python object identities of
    the matched operator and of the node glued in at its position — stable
    within one compilation, which is all a provenance trace needs to
    correlate steps (a later step's target may *be* an earlier step's
    replacement).
    """

    rule: str
    target: str
    replacement: str
    index: int = 0
    phase: str = ""
    target_id: int = 0
    replacement_id: int = 0

    def describe(self) -> str:
        return f"[{self.index}:{self.phase}] {self.rule}: {self.target}  →  {self.replacement}"


#: Backwards-compatible alias: the pre-declarative engine called its step
#: records ``RuleApplication`` (rule / target / replacement fields, which
#: :class:`RewriteStep` preserves).
RuleApplication = RewriteStep


@dataclass(frozen=True)
class RejectedApplication:
    """A rule application whose global premise failed.

    The rule matched locally and built a replacement, but gluing it into
    the plan tripped an operator invariant (e.g. a widened shared spine
    made a far-away join's inputs overlap).  The driver treats this as
    "not applicable" and keeps scanning — this record makes the refusal
    observable instead of silently swallowed.
    """

    rule: str
    target: str
    error: str
    step: int = 0
    phase: str = ""
    target_id: int = 0

    def describe(self) -> str:
        return f"[step {self.step}:{self.phase}] {self.rule} rejected at {self.target}: {self.error}"


@dataclass(frozen=True)
class RewriteTrace:
    """The full provenance of one isolation run."""

    steps: tuple[RewriteStep, ...] = ()
    rejections: tuple[RejectedApplication, ...] = ()
    initial_operator_count: int = 0
    final_operator_count: int = 0
    converged: bool = True
    driver: str = "worklist"

    def rules_fired(self) -> dict[str, int]:
        """Histogram of rule names over all applied steps."""
        histogram: dict[str, int] = {}
        for step in self.steps:
            histogram[step.rule] = histogram.get(step.rule, 0) + 1
        return histogram

    def render(self) -> str:
        """A human-readable account of the run (README's trace example)."""
        lines = [
            f"isolation: {self.initial_operator_count} → {self.final_operator_count} "
            f"operators in {len(self.steps)} steps ({self.driver} driver)"
        ]
        lines.extend(step.describe() for step in self.steps)
        if self.rejections:
            lines.append(f"rejected applications ({len(self.rejections)}):")
            lines.extend(rejection.describe() for rejection in self.rejections)
        if not self.converged:
            lines.append("WARNING: did not converge (step limit hit)")
        return "\n".join(lines)


def format_divergence(
    steps: list[RewriteStep], max_steps: int, last: int = 8
) -> str:
    """The :class:`~repro.errors.RewriteError` message for non-convergence.

    Includes the full rule histogram and the last ``last`` applications so
    a livelocked rule pair is diagnosable straight from the exception.
    """
    histogram: dict[str, int] = {}
    for step in steps:
        histogram[step.rule] = histogram.get(step.rule, 0) + 1
    fired = ", ".join(
        f"{name}×{count}"
        for name, count in sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    tail = "; ".join(
        f"{step.rule} @ {step.target} → {step.replacement}" for step in steps[-last:]
    )
    return (
        f"join graph isolation did not converge within {max_steps} steps; "
        f"rules fired: {{{fired}}}; last {min(last, len(steps))} applications: {tail}"
    )

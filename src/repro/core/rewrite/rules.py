"""The join graph isolation rules (Fig. 5 of the paper), as declarative data.

Every rule is a :class:`~repro.core.rewrite.rule.Rule` object — a
structural pattern (root operator class, child constraints), a guard over
the inferred plan properties, and a builder for the replacement — rather
than a hand-coded match/replace function.  The logic is a 1:1
re-expression of the pre-declarative ``core/rules.py`` (zero behaviour
change, pinned by the per-rule differential tests and the XMark rule
histograms), organised so that every premise is visible in one place:

* the *pattern* says where the rule can possibly fire (this is what the
  engine's pattern index dispatches on);
* the *guard* evaluates the paper's premises through the
  :class:`~repro.core.rewrite.context.RuleContext` and returns the bound
  match parts;
* the *builder* assembles the replacement from those parts, splicing
  matched sub-plans in by object identity (the sharing contract the
  registration-time validator enforces on every rule's exemplar).

The implemented set corresponds to the paper's rules with two adaptations
required by this implementation's column-disjoint join operator (the
paper's algebra allows both join inputs to expose the same column name,
ours — matching SQL — does not):

* Rule (9) is generalised into the *key-join collapse* rule (``(9*)``): a
  join ``A ⋈ a=b B`` whose two join columns stem from the same column
  ``c`` of the same operator ``X`` with ``{c}`` a key of ``X``, and whose
  one side is a row-preserving column chain over ``X``, is replaced by the
  other side widened with the columns it still needs.  This single rule
  subsumes the paper's Rule (9) (removal of the degenerated equi-joins
  introduced by FOR / IF compilation, Fig. 6) and also eliminates the
  ``pre = item`` context joins of the STEP / COMP rules, which is what
  turns Q1 into the *three*-fold self-join of Fig. 7/8.  Its
  multi-conjunct form collapses value joins: the iteration-bookkeeping
  equality is the pivot and the value comparison survives as a selection.
* Rules (11) and (15) — join push-down below and row-rank pull-up above
  binary operators — are not needed once the collapse rule is in place
  and are therefore not part of the default goal sequence.

All remaining rules ((1)-(8), (10), (12)-(14), (16), (17)) follow the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate
from repro.core.rewrite.context import RuleContext
from repro.core.rewrite.rule import (
    MATCHED,
    Rule,
    RuleRegistry,
    RuleResult,
    pattern,
)

#: Operators that neither filter nor multiply the rows flowing through them
#: (with respect to a key column they carry) — the "safe" spine of the side
#: a key-join collapse is allowed to drop.
_ROW_PRESERVING = (Project, Attach, RowId, RowRank, Distinct, Serialize)


# ---------------------------------------------------------------------------
# Shared helpers (constant folding, collapse machinery)
# ---------------------------------------------------------------------------


def _constant_single_row(node: Operator) -> Optional[dict[str, object]]:
    """If ``node`` is statically a one-row constant table, return its row."""
    if isinstance(node, LiteralTable):
        if len(node.rows) == 1:
            return dict(zip(node.columns, node.rows[0]))
        return None
    if isinstance(node, Attach):
        row = _constant_single_row(node.child)
        if row is None:
            return None
        row = dict(row)
        row[node.column] = node.value
        return row
    if isinstance(node, Project):
        row = _constant_single_row(node.child)
        if row is None:
            return None
        return {new: row[old] for new, old in node.items}
    return None


def _safe_spine(path: list[tuple[Operator, str]]) -> bool:
    """True when every node strictly above the origin is row-preserving.

    ``count``/``sum`` aggregations emit exactly one row per loop row (the
    provenance path descends into the loop side), so they preserve rows;
    ``avg`` drops empty groups and does not.
    """
    for op, _name in path[:-1]:
        if isinstance(op, GroupAggregate):
            if op.function == "avg":
                return False
            continue
        if not isinstance(op, _ROW_PRESERVING):
            return False
    return True


def _resolve_needed(
    ctx: RuleContext, dropped: Operator, needed: list[str], anchor: Operator
) -> Optional[dict[str, tuple[str, object]]]:
    """Express the needed columns of the dropped side relative to ``anchor``.

    Returns ``{column: ("const", value) | ("anchor", anchor_column)}`` or
    ``None`` when some column is not recoverable.
    """
    resolution: dict[str, tuple[str, object]] = {}
    for column in needed:
        path = ctx.provenance(dropped, column)
        origin_node, origin_column = path[-1]
        if isinstance(origin_node, Attach):
            resolution[column] = ("const", origin_node.value)
            continue
        anchored = next((name for op, name in path if op is anchor), None)
        if anchored is not None:
            resolution[column] = ("anchor", anchored)
            continue
        return None
    return resolution


def _widen_chain(
    ctx: RuleContext,
    kept: Operator,
    kept_join_column: str,
    anchor: Operator,
    carries: dict[str, str],
    collapsing_join: Optional[Operator] = None,
) -> Optional[tuple[Operator, dict[int, Operator]]]:
    """Thread ``carries`` (target name → anchor column) up the kept side's spine.

    The spine is the provenance path of the kept side's join column; the
    anchor lies on it by construction.  Operators other than π pass all of
    their input columns through, so only the projections on the spine need to
    be extended; everything above the first extended projection is rebuilt as
    well.

    Returns the widened kept root together with a substitution map
    ``{id(old spine node): rebuilt node}``.  The caller applies that map to
    the whole plan, so other references to the (possibly shared) spine nodes
    keep pointing at one single widened copy — the extra columns are ignored
    by those other consumers.  ``None`` is returned when a name clash or an
    intolerant foreign parent makes the widening unsafe; the rule then simply
    does not fire.
    """
    if not carries:
        return kept, {}
    path = ctx.provenance(kept, kept_join_column)
    spine = [op for op, _name in path]
    if anchor not in spine:
        return None
    anchor_index = spine.index(anchor)
    #: Nodes whose parent-tolerance need not be checked: the collapsing join
    #: itself (it is being replaced) and the spine nodes (rebuilt together).
    exempt = {id(op) for op in spine}
    if collapsing_join is not None:
        exempt.add(id(collapsing_join))
    #: Current name of each carried column while walking up the spine.
    names: dict[str, str] = dict(carries)
    substitutions: dict[int, Operator] = {}
    current: Operator = anchor
    changed = False
    for position in range(anchor_index - 1, -1, -1):
        op = spine[position]
        below = spine[position + 1]
        if isinstance(op, Project):
            items = list(op.items)
            taken = {new for new, _old in items}
            extra: list[tuple[str, str]] = []
            for target in carries:
                # Always thread carries under fresh names: spine projections
                # may be *shared* (other consumers see the widened copy), and
                # surfacing the target name inside the spine would collide
                # when a second widening carries the same column up a sibling
                # branch.  Only the unshared top projection below surfaces
                # the target names.
                output = ctx.fresh_column(target)
                while output in taken:
                    output = ctx.fresh_column(target)
                taken.add(output)
                extra.append((output, names[target]))
                names[target] = output
            rebuilt: Operator = Project(current if changed else below, items + extra)
            changed = True
        elif not changed:
            current = op
            continue
        else:
            if isinstance(op, (Join, Cross)):
                other = next(child for child in op.children if child is not below)
                if set(other.columns) & set(names.values()):
                    return None
            children = [current if child is below else child for child in op.children]
            rebuilt = op.with_children(children)
        if not _foreign_parents_tolerate(ctx, op, set(names.values()), exempt):
            return None
        substitutions[id(op)] = rebuilt
        current = rebuilt
    # Surface each carried column under its target name next to the kept columns.
    if all(names[target] == target for target in carries) and all(
        target in current.columns for target in carries
    ):
        return current, substitutions
    items = [(column, column) for column in kept.columns]
    for target in carries:
        if names[target] not in current.columns:
            return None
        items.append((target, names[target]))
    return Project(current, items), substitutions


def _foreign_parents_tolerate(
    ctx: RuleContext, node: Operator, added_columns: set[str], exempt: set[int]
) -> bool:
    """Check that parents outside the widened spine can absorb extra columns.

    Projections, selections, attaches and the like simply ignore columns they
    do not mention; joins and cross products additionally require the added
    columns not to clash with their other input; duplicate eliminations stay
    correct because the added columns are functionally dependent on the key
    column the spine already carries.  Parents listed in ``exempt`` (the
    collapsing join and the spine itself) are rebuilt anyway and skipped.
    """
    for parent in ctx.parents.get(id(node), ()):  # direct parents only
        if id(parent) in exempt:
            continue
        if isinstance(parent, (Join, Cross)):
            sibling = next((c for c in parent.children if c is not node), None)
            if sibling is not None and set(sibling.columns) & added_columns:
                return False
    return True


def _anchor_keys(anchor: Operator) -> frozenset[frozenset[str]]:
    """Candidate keys of the anchor operator derivable without full inference."""
    keys: set[frozenset[str]] = set()
    if isinstance(anchor, DocTable):
        keys.add(frozenset({"pre"}))
    if isinstance(anchor, RowId):
        keys.add(frozenset({anchor.column}))
    if isinstance(anchor, LiteralTable):
        for index, column in enumerate(anchor.columns):
            values = [row[index] for row in anchor.rows]
            if len(values) == len(set(values)):
                keys.add(frozenset({column}))
    return frozenset(keys)


def _column_has_rowid_origin(ctx: RuleContext, node: Operator, column: str) -> bool:
    origin_node, _origin_column = ctx.origin(node, column)
    return isinstance(origin_node, (RowId,))


# ---------------------------------------------------------------------------
# House-cleaning rules (1) - (5), (10), (12), (13), plus constant folding
# ---------------------------------------------------------------------------


def _guard_prune_rowid(node: Operator, ctx: RuleContext):
    """(1)  a is not needed upstream."""
    if node.column not in ctx.needed_columns(node):
        return MATCHED
    return None


def _guard_prune_rank(node: Operator, ctx: RuleContext):
    """(2)  a is not needed upstream."""
    if node.column not in ctx.needed_columns(node):
        return MATCHED
    return None


def _guard_prune_attach(node: Operator, ctx: RuleContext):
    """(3)  a is not needed upstream."""
    if node.column not in ctx.needed_columns(node):
        return MATCHED
    return None


def _build_child(node: Operator, match, ctx: RuleContext) -> Operator:
    """■(q) → q  (shared by the pruning rules and rule (6))."""
    return node.children[0]


def _guard_prune_project(node: Project, ctx: RuleContext):
    """(4)  some projection items are not needed upstream."""
    needed = ctx.needed_columns(node)
    kept = [item for item in node.items if item[0] in needed]
    if kept and len(kept) < len(node.items):
        return kept
    return None


def _build_prune_project(node: Project, kept, ctx: RuleContext) -> Operator:
    return Project(node.child, kept)


def _guard_project_fuse(node: Project, ctx: RuleContext):
    """The inner projection is not shared by other parents."""
    inner = node.child
    if len(ctx.parents.get(id(inner), ())) > 1:
        return None
    inner_map = inner.renaming()
    return [(new, inner_map[old]) for new, old in node.items]


def _build_project_fuse(node: Project, fused, ctx: RuleContext) -> Operator:
    return Project(node.child.child, fused)


def _guard_cross_to_attach(node: Cross, ctx: RuleContext):
    """(5)  one input is statically a one-row constant table."""
    for side, other in ((node.right, node.left), (node.left, node.right)):
        row = _constant_single_row(side)
        if row is not None:
            return other, row
    return None


def _build_cross_to_attach(node: Cross, match, ctx: RuleContext) -> Operator:
    other, row = match
    result: Operator = other
    for column, value in row.items():
        result = Attach(result, column, value)
    # Column order may differ from the original cross product; operators
    # address columns by name, so no reordering projection is needed.
    return result


def _guard_const_join_to_cross(node: Join, ctx: RuleContext):
    """(10)  both join columns are the same constant."""
    if not node.predicate.is_single_column_equality():
        return None
    (a, b) = node.predicate.column_equalities()[0]
    left, right = node.children
    const_left = ctx.properties.const(left)
    const_right = ctx.properties.const(right)
    values = {}
    for column in (a, b):
        if column in left.columns and column in const_left:
            values[column] = const_left[column]
        elif column in right.columns and column in const_right:
            values[column] = const_right[column]
        else:
            return None
    if values[a] == values[b]:
        return MATCHED
    return None


def _build_const_join_to_cross(node: Join, match, ctx: RuleContext) -> Operator:
    left, right = node.children
    return Cross(left, right)


def _guard_project_const_source(node: Project, ctx: RuleContext):
    """Some (but not all) projection items source a constant column."""
    const = ctx.properties.const(node.child)
    constant_items = [(new, old) for new, old in node.items if old in const]
    if not constant_items or len(constant_items) == len(node.items):
        return None
    remaining = [(new, old) for new, old in node.items if old not in const]
    return constant_items, remaining, const


def _build_project_const_source(node: Project, match, ctx: RuleContext) -> Operator:
    constant_items, remaining, const = match
    result: Operator = Project(node.child, remaining)
    for new, old in constant_items:
        result = Attach(result, new, const[old])
    return result


def _guard_rank_to_project(node: RowRank, ctx: RuleContext):
    """(12)  single ordering column, rank never compared upstream."""
    if len(node.order_by) != 1:
        return None
    if ctx.rank_compared_upstream(node):
        # A positional selection tests this rank's *value*; substituting
        # the ordering column would select by node rank instead of by
        # sequence position.
        return None
    return MATCHED


def _build_rank_to_project(node: RowRank, match, ctx: RuleContext) -> Operator:
    source = node.order_by[0]
    items = [(node.column, source)] + [(c, c) for c in node.child.columns]
    return Project(node.child, items)


def _guard_rank_prune_const(node: RowRank, ctx: RuleContext):
    """(13)  some ordering / partition criteria are constant."""
    const = ctx.properties.const(node.child)
    kept = tuple(column for column in node.order_by if column not in const)
    kept_partition = tuple(column for column in node.partition_by if column not in const)
    if kept == node.order_by and kept_partition == node.partition_by:
        return None
    return kept, kept_partition


def _build_rank_prune_const(node: RowRank, match, ctx: RuleContext) -> Operator:
    kept, kept_partition = match
    if kept:
        return RowRank(node.child, node.column, kept, kept_partition)
    # All ordering columns are constant: every row gets rank 1.
    return Attach(node.child, node.column, 1)


# ---------------------------------------------------------------------------
# δ rules (6) - (8)
# ---------------------------------------------------------------------------


def _guard_remove_distinct(node: Distinct, ctx: RuleContext):
    """(6)  the output is de-duplicated further upstream."""
    if ctx.properties.is_set(node):
        return MATCHED
    return None


def _guard_shrink_distinct(node: Distinct, ctx: RuleContext):
    """(7)  constant, not-needed columns exist underneath the δ."""
    if isinstance(node.child, Project):
        return None
    const = set(ctx.properties.const(node.child))
    needed = ctx.needed_columns(node)
    drop = const - needed
    keep = [column for column in node.child.columns if column not in drop]
    if drop and keep and len(keep) < len(node.child.columns):
        return keep
    return None


def _build_shrink_distinct(node: Distinct, keep, ctx: RuleContext) -> Operator:
    return Distinct(Project.keep(node.child, keep))


def _guard_introduce_distinct(node: Join, ctx: RuleContext):
    """(8)  the equi-join of FOR / IF compilation emits unique rows."""
    if ctx.properties.is_set(node):
        return None
    if not node.predicate.is_single_column_equality():
        return None
    (a, b) = node.predicate.column_equalities()[0]
    if not (
        _column_has_rowid_origin(ctx, node, a) or _column_has_rowid_origin(ctx, node, b)
    ):
        return None
    icols = ctx.needed_columns(node) & frozenset(node.columns)
    if not icols or not ctx.properties.has_key_within(node, icols):
        return None
    return [column for column in node.columns if column in icols]


def _build_introduce_distinct(node: Join, ordered, ctx: RuleContext) -> Operator:
    return Distinct(Project.keep(node, ordered))


# ---------------------------------------------------------------------------
# ϱ movement rules (14), (16), (17)
# ---------------------------------------------------------------------------


def _guard_rank_pull_up(node: Operator, ctx: RuleContext):
    """(14)  ■(ϱa:⟨b⟩(q)) → ϱa:⟨b⟩(■(q))   for ■ ∈ {σ, δ, @, #}."""
    child = node.children[0]
    if isinstance(node, Select) and child.column in node.predicate.columns():
        return None
    if isinstance(node, (Attach, RowId)) and node.column == child.column:
        return None
    if isinstance(node, (Select, Distinct)) and ctx.rank_compared_upstream(child):
        # A positional selection upstream tests this rank's value; filtering
        # or de-duplicating *before* ranking would renumber the rows it sees.
        return None
    return MATCHED


def _build_rank_pull_up(node: Operator, match, ctx: RuleContext) -> Operator:
    child = node.children[0]
    rebuilt = node.with_children([child.child])
    return RowRank(rebuilt, child.column, child.order_by, child.partition_by)


def _guard_rank_pull_up_project(node: Project, ctx: RuleContext):
    """(16)  π a,c1..cm (ϱa:⟨b⟩(q)) → ϱa:⟨b⟩(π b,c1..cm(q))   (renaming-aware)."""
    child = node.child
    rank_items = [(new, old) for new, old in node.items if old == child.column]
    if len(rank_items) != 1:
        return None
    rank_name = rank_items[0][0]
    other_items = [(new, old) for new, old in node.items if old != child.column]
    # The ordering and partition columns must survive the projection
    # (possibly renamed).
    extended_items = list(other_items)

    def thread(columns: tuple[str, ...]) -> Optional[list[str]]:
        renamed_columns: list[str] = []
        for column in columns:
            renamed = next((new for new, old in extended_items if old == column), None)
            if renamed is None:
                if column in {new for new, _old in extended_items} or column == rank_name:
                    return None
                extended_items.append((column, column))
                renamed = column
            renamed_columns.append(renamed)
        return renamed_columns

    order_by = thread(child.order_by)
    if order_by is None:
        return None
    partition_by = thread(child.partition_by)
    if partition_by is None:
        return None
    if not extended_items:
        return None
    return rank_name, extended_items, tuple(order_by), tuple(partition_by)


def _build_rank_pull_up_project(node: Project, match, ctx: RuleContext) -> Operator:
    rank_name, extended_items, order_by, partition_by = match
    projected = Project(node.child.child, extended_items)
    return RowRank(projected, rank_name, order_by, partition_by)


def _guard_rank_splice(node: RowRank, ctx: RuleContext):
    """(17)  merge the ordering criteria of two adjacent ϱ operators.

    A partitioned child rank expands into its partition columns followed by
    its ordering columns: whenever the outer criteria preceding the child
    rank pin one partition (the FOR/DDO compilation shapes), ordering by
    ⟨partition, order⟩ coincides with ordering by the rank value.
    """
    child = node.child
    if child.column not in node.order_by:
        return None
    expansion = tuple(child.partition_by) + tuple(child.order_by)
    new_order: list[str] = []
    for column in node.order_by:
        if column == child.column:
            new_order.extend(c for c in expansion if c not in new_order)
        elif column not in new_order:
            new_order.append(column)
    if tuple(new_order) == node.order_by:
        return None
    return tuple(new_order)


def _build_rank_splice(node: RowRank, new_order, ctx: RuleContext) -> Operator:
    return RowRank(node.child, node.column, new_order, node.partition_by)


# ---------------------------------------------------------------------------
# (9) generalised: key-join collapse
# ---------------------------------------------------------------------------


def _guard_key_join_collapse(node: Join, ctx: RuleContext):
    """(9*)  collapse a join on a column equality stemming from the same key.

    ``A ⋈ a=b ∧ rest B`` is replaced by the *kept* side widened with the
    columns it still needs from the *dropped* side (with ``rest`` — if any —
    re-applied as a selection over the widened result) when

    * the two pivot columns trace back to the same column ``c`` of the same
      operator ``X`` (the anchor) with ``{c}`` a candidate key of ``X``,
    * the dropped side is a row-preserving column chain over ``X`` (so each
      kept row matches exactly the dropped row it originated from), and
    * every dropped-side column still needed upstream — including the ones
      the residual conjuncts mention — is either a constant or readable from
      ``X``'s output (it is then threaded up the kept side's spine).
    """
    for pivot in node.predicate.conjuncts:
        if not pivot.is_column_equality():
            continue
        result = _try_key_join_collapse(node, ctx, pivot)
        if result is not None:
            return result
    return None


def _try_key_join_collapse(
    node: Join, ctx: RuleContext, pivot: Comparison
) -> Optional[dict[int, Operator]]:
    a = pivot.left.name  # type: ignore[union-attr]
    b = pivot.right.name  # type: ignore[union-attr]
    residual = [c for c in node.predicate.conjuncts if c is not pivot]
    left, right = node.children
    if a in right.columns:
        a, b = b, a
    if a not in left.columns or b not in right.columns:
        return None
    left_path = ctx.provenance(left, a)
    right_path = ctx.provenance(right, b)
    left_origin = left_path[-1]
    right_origin = right_path[-1]
    if left_origin[0] is not right_origin[0] or left_origin[1] != right_origin[1]:
        return None
    anchor, anchor_column = left_origin
    if frozenset({anchor_column}) not in _anchor_keys(anchor):
        return None
    needed_all = ctx.needed_columns(node)
    for conjunct in residual:
        needed_all |= conjunct.columns()
    for dropped, kept, dropped_path, kept_column in (
        (right, left, right_path, a),
        (left, right, left_path, b),
    ):
        if not _safe_spine(dropped_path):
            continue
        needed = [
            column
            for column in dropped.columns
            if column in needed_all and column not in kept.columns
        ]
        resolution = _resolve_needed(ctx, dropped, needed, anchor)
        if resolution is None:
            continue
        carries = {
            column: source
            for column, (kind, source) in resolution.items()
            if kind == "anchor"
        }
        widening = _widen_chain(ctx, kept, kept_column, anchor, carries, collapsing_join=node)
        if widening is None:
            continue
        widened, substitutions = widening
        result: Operator = widened
        for column, (kind, value) in resolution.items():
            if kind == "const" and column not in result.columns:
                result = Attach(result, column, value)
        if residual:
            result = Select(result, Predicate(residual))
        replacements: dict[int, Operator] = dict(substitutions)
        replacements[id(node)] = result
        return replacements
    return None


def _build_key_join_collapse(node: Join, replacements, ctx: RuleContext) -> RuleResult:
    return replacements


# ---------------------------------------------------------------------------
# Exemplar plans (validator + per-rule differential fixtures)
# ---------------------------------------------------------------------------
#
# Each exemplar is a small evaluable plan (DocTable / LiteralTable leaves,
# ``Serialize(π pos, item)`` root) on which exactly the rule in question
# fires.  The registration-time validator runs the rule against it to
# prove the rule fires, mutates nothing in place, and preserves leaf
# sharing; the per-rule differential tests additionally evaluate the plan
# before and after the step and compare the decoded sequences bit for bit.


def _result_head(body: Operator, pos: str = "pre", item: str = "pre") -> Serialize:
    return Serialize(Project(body, [("pos", pos), ("item", item)]))


def _x_prune_rowid() -> Operator:
    return _result_head(RowId(DocTable(), "rid"))


def _x_prune_rank() -> Operator:
    return _result_head(RowRank(DocTable(), "rnk", ("pre",), ()))


def _x_prune_attach() -> Operator:
    return _result_head(Attach(DocTable(), "dead", 1))


def _x_prune_project() -> Operator:
    inner = Project(DocTable(), [("pos", "pre"), ("item", "pre"), ("junk", "size")])
    # A second parent keeps project_fuse from matching first in scans, so
    # this exemplar isolates the pruning premise.
    return Serialize(Distinct(inner))


def _x_project_fuse() -> Operator:
    inner = Project(DocTable(), [("p", "pre"), ("s", "size")])
    return Serialize(Project(inner, [("pos", "p"), ("item", "p")]))


def _x_cross_to_attach() -> Operator:
    loop = LiteralTable(("iter",), [(1,)])
    return _result_head(Cross(DocTable(), loop))


def _x_const_join_to_cross() -> Operator:
    left = Attach(DocTable(), "a", 1)
    right = Attach(LiteralTable(("v",), [(7,)]), "b", 1)
    joined = Join(left, right, Predicate.equality("a", "b"))
    return _result_head(joined)


def _x_project_const_source() -> Operator:
    body = Attach(DocTable(), "one", 1)
    return Serialize(Project(body, [("pos", "pre"), ("item", "pre"), ("unit", "one")]))


def _x_rank_to_project() -> Operator:
    rank = RowRank(DocTable(), "rnk", ("pre",), ())
    return Serialize(Project(rank, [("pos", "rnk"), ("item", "pre")]))


def _x_rank_prune_const() -> Operator:
    rank = RowRank(Attach(DocTable(), "one", 1), "rnk", ("one", "pre"), ())
    return Serialize(Project(rank, [("pos", "rnk"), ("item", "pre")]))


def _x_remove_distinct() -> Operator:
    inner = Distinct(Project(DocTable(), [("pos", "pre"), ("item", "pre")]))
    return Serialize(Distinct(Project(inner, [("pos", "pos"), ("item", "item")])))


def _x_shrink_distinct() -> Operator:
    body = Attach(Project(DocTable(), [("pos", "pre"), ("item", "pre")]), "one", 1)
    return Serialize(Project(Distinct(body), [("pos", "pos"), ("item", "item")]))


def _x_introduce_distinct() -> Operator:
    anchored = RowId(DocTable(), "rid")
    left = Project(anchored, [("rid", "rid"), ("pos", "pre")])
    right = Project(anchored, [("rid2", "rid"), ("item", "pre")])
    joined = Join(left, right, Predicate.equality("rid", "rid2"))
    return Serialize(Project(joined, [("pos", "pos"), ("item", "item")]))


def _x_rank_pull_up() -> Operator:
    rank = RowRank(DocTable(), "rnk", ("pre",), ())
    selected = Select(rank, Predicate.of(Comparison(ColumnRef("size"), ">=", Literal(0))))
    return Serialize(Project(selected, [("pos", "rnk"), ("item", "pre")]))


def _x_rank_pull_up_project() -> Operator:
    rank = RowRank(DocTable(), "rnk", ("pre",), ())
    return Serialize(Project(rank, [("pos", "rnk"), ("item", "pre")]))


def _x_rank_splice() -> Operator:
    inner = RowRank(DocTable(), "r1", ("pre",), ())
    outer = RowRank(inner, "r2", ("r1", "size"), ())
    return Serialize(Project(outer, [("pos", "r2"), ("item", "pre")]))


def _x_key_join_collapse() -> Operator:
    doc = DocTable()
    kept = Project(doc, [("k", "pre"), ("pos", "pre"), ("item", "pre")])
    dropped = Project(doc, [("d", "pre")])
    joined = Join(kept, dropped, Predicate.equality("k", "d"))
    return Serialize(Project(joined, [("pos", "pos"), ("item", "item")]))


# ---------------------------------------------------------------------------
# The registry and the goal groups
# ---------------------------------------------------------------------------

REGISTRY = RuleRegistry()

_r = REGISTRY.register

#: House-cleaning rules, applied throughout all goals.  Order matters: the
#: driver applies the first match in (node, rule) scan order, so the group
#: tuples below reproduce the pre-declarative engine's rule order exactly.
CLEANUP_GROUP: tuple[Rule, ...] = (
    _r(Rule(
        name="project_fuse",
        paper="",
        pattern=pattern(Project, Project),
        guard=_guard_project_fuse,
        build=_build_project_fuse,
        exemplar=_x_project_fuse,
        cleanup=True,
    )),
    _r(Rule(
        name="prune_project(4)",
        paper="(4)",
        pattern=pattern(Project),
        guard=_guard_prune_project,
        build=_build_prune_project,
        exemplar=_x_prune_project,
        cleanup=True,
    )),
    _r(Rule(
        name="prune_rowid(1)",
        paper="(1)",
        pattern=pattern(RowId),
        guard=_guard_prune_rowid,
        build=_build_child,
        exemplar=_x_prune_rowid,
        cleanup=True,
    )),
    _r(Rule(
        name="prune_rank(2)",
        paper="(2)",
        pattern=pattern(RowRank),
        guard=_guard_prune_rank,
        build=_build_child,
        exemplar=_x_prune_rank,
        cleanup=True,
    )),
    _r(Rule(
        name="prune_attach(3)",
        paper="(3)",
        pattern=pattern(Attach),
        guard=_guard_prune_attach,
        build=_build_child,
        exemplar=_x_prune_attach,
        cleanup=True,
    )),
    _r(Rule(
        name="cross_to_attach(5)",
        paper="(5)",
        pattern=pattern(Cross),
        guard=_guard_cross_to_attach,
        build=_build_cross_to_attach,
        exemplar=_x_cross_to_attach,
        cleanup=True,
    )),
    _r(Rule(
        name="const_join_to_cross(10)",
        paper="(10)",
        pattern=pattern(Join),
        guard=_guard_const_join_to_cross,
        build=_build_const_join_to_cross,
        exemplar=_x_const_join_to_cross,
        cleanup=True,
    )),
    _r(Rule(
        name="project_const_source",
        paper="",
        pattern=pattern(Project),
        guard=_guard_project_const_source,
        build=_build_project_const_source,
        exemplar=_x_project_const_source,
        cleanup=True,
    )),
)

#: Goal ϱ: establish (at most) a single row-rank operator in the plan tail.
RANK_GROUP: tuple[Rule, ...] = (
    _r(Rule(
        name="rank_prune_const(13)",
        paper="(13)",
        pattern=pattern(RowRank),
        guard=_guard_rank_prune_const,
        build=_build_rank_prune_const,
        exemplar=_x_rank_prune_const,
    )),
    _r(Rule(
        name="rank_to_project(12)",
        paper="(12)",
        pattern=pattern(RowRank),
        guard=_guard_rank_to_project,
        build=_build_rank_to_project,
        exemplar=_x_rank_to_project,
    )),
    _r(Rule(
        name="rank_splice(17)",
        paper="(17)",
        pattern=pattern(RowRank, RowRank),
        guard=_guard_rank_splice,
        build=_build_rank_splice,
        exemplar=_x_rank_splice,
    )),
    _r(Rule(
        name="rank_pull_up(14)",
        paper="(14)",
        pattern=pattern((Select, Distinct, Attach, RowId), RowRank),
        guard=_guard_rank_pull_up,
        build=_build_rank_pull_up,
        exemplar=_x_rank_pull_up,
    )),
    _r(Rule(
        name="rank_pull_up_project(16)",
        paper="(16)",
        pattern=pattern(Project, RowRank),
        guard=_guard_rank_pull_up_project,
        build=_build_rank_pull_up_project,
        exemplar=_x_rank_pull_up_project,
    )),
)

#: Goals δ and ⋈: single δ in the tail, joins pushed down / removed.
JOIN_GROUP: tuple[Rule, ...] = (
    _r(Rule(
        name="introduce_distinct(8)",
        paper="(8)",
        pattern=pattern(Join),
        guard=_guard_introduce_distinct,
        build=_build_introduce_distinct,
        exemplar=_x_introduce_distinct,
    )),
    _r(Rule(
        name="remove_distinct(6)",
        paper="(6)",
        pattern=pattern(Distinct),
        guard=_guard_remove_distinct,
        build=_build_child,
        exemplar=_x_remove_distinct,
    )),
    _r(Rule(
        name="shrink_distinct(7)",
        paper="(7)",
        pattern=pattern(Distinct),
        guard=_guard_shrink_distinct,
        build=_build_shrink_distinct,
        exemplar=_x_shrink_distinct,
    )),
    _r(Rule(
        name="key_join_collapse(9*)",
        paper="(9*)",
        pattern=pattern(Join),
        guard=_guard_key_join_collapse,
        build=_build_key_join_collapse,
        exemplar=_x_key_join_collapse,
    )),
)

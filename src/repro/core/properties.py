"""Plan property inference (Tables II-V of the paper).

For every operator of a plan DAG four properties are inferred:

``icols``
    The set of input columns strictly required by the operator's upstream
    plan (top-down, seeded with ``{pos, item}`` at the serialization point,
    accumulated over all parents).

``const``
    The set of ``column = constant`` facts that hold for every output row
    (bottom-up).

``key``
    The set of candidate keys of the operator's output (bottom-up).

``set``
    Whether the operator's output rows are subject to duplicate elimination
    further up on *every* path to the root (top-down, seeded ``False`` at
    the root, conjunctively accumulated).

The rewrite rules of :mod:`repro.core.rules` consult these properties
through a :class:`PlanProperties` snapshot; the snapshot is recomputed after
every rewrite step (the plans are small enough — a few hundred operators —
for this to be cheap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.dag import iter_nodes, topological_order
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)

#: Seed of ``icols`` at the serialization point: the two columns needed to
#: represent and serialize the resulting XML node sequence.
SERIALIZE_ICOLS = frozenset({"pos", "item"})


@dataclass
class NodeProperties:
    """The four inferred properties of one operator."""

    icols: frozenset[str] = frozenset()
    const: dict[str, object] = field(default_factory=dict)
    keys: frozenset[frozenset[str]] = frozenset()
    set: bool = True


class PlanProperties:
    """A property snapshot for every operator of one plan DAG."""

    def __init__(self, root: Operator):
        self.root = root
        self._by_node: dict[int, NodeProperties] = {}
        self._infer()

    # -- public accessors --------------------------------------------------------

    def of(self, node: Operator) -> NodeProperties:
        return self._by_node[id(node)]

    def icols(self, node: Operator) -> frozenset[str]:
        return self._by_node[id(node)].icols

    def const(self, node: Operator) -> dict[str, object]:
        return self._by_node[id(node)].const

    def keys(self, node: Operator) -> frozenset[frozenset[str]]:
        return self._by_node[id(node)].keys

    def is_set(self, node: Operator) -> bool:
        return self._by_node[id(node)].set

    def has_key_within(self, node: Operator, columns: frozenset[str]) -> bool:
        """True when some candidate key of ``node`` is contained in ``columns``."""
        return any(key <= columns for key in self.keys(node))

    # -- inference ----------------------------------------------------------------

    def _infer(self) -> None:
        order = topological_order(self.root)
        for node in order:
            self._by_node[id(node)] = NodeProperties()
        # Bottom-up: const and key.
        for node in order:
            properties = self._by_node[id(node)]
            properties.const = _infer_const(node, self._by_node)
            properties.keys = _infer_keys(node, self._by_node)
        # Top-down: icols and set.  Parents appear after children in the
        # topological order, so walk it in reverse.
        root_properties = self._by_node[id(self.root)]
        root_properties.set = False
        if isinstance(self.root, Serialize):
            root_properties.icols = SERIALIZE_ICOLS & frozenset(self.root.columns)
            if not root_properties.icols:
                root_properties.icols = frozenset(self.root.columns)
        else:
            root_properties.icols = frozenset(self.root.columns)
        for node in reversed(order):
            self._propagate_down(node)

    def _propagate_down(self, node: Operator) -> None:
        properties = self._by_node[id(node)]
        for position, child in enumerate(node.children):
            child_properties = self._by_node[id(child)]
            child_properties.icols = child_properties.icols | _child_icols(
                node, position, child, properties.icols
            )
            child_properties.set = child_properties.set and _child_set(
                node, position, properties.set
            )


def infer_properties(root: Operator) -> PlanProperties:
    """Infer all four plan properties for the DAG rooted at ``root``."""
    return PlanProperties(root)


# ---------------------------------------------------------------------------
# const (Table III)
# ---------------------------------------------------------------------------


def _infer_const(node: Operator, by_node: dict[int, "NodeProperties"]) -> dict[str, object]:
    if isinstance(node, DocTable):
        return {}
    if isinstance(node, LiteralTable):
        constants: dict[str, object] = {}
        for index, column in enumerate(node.columns):
            values = {row[index] for row in node.rows}
            if len(values) == 1:
                constants[column] = next(iter(values))
        return constants
    if isinstance(node, (Serialize, Select, Distinct, RowId, RowRank)):
        return dict(by_node[id(node.children[0])].const)
    if isinstance(node, Project):
        child_const = by_node[id(node.child)].const
        return {new: child_const[old] for new, old in node.items if old in child_const}
    if isinstance(node, Attach):
        constants = dict(by_node[id(node.child)].const)
        constants[node.column] = node.value
        return constants
    if isinstance(node, (Join, Cross)):
        combined = dict(by_node[id(node.children[0])].const)
        combined.update(by_node[id(node.children[1])].const)
        return combined
    if isinstance(node, GroupAggregate):
        # Loop columns pass through untouched; the aggregate value does not.
        return dict(by_node[id(node.loop)].const)
    return {}


# ---------------------------------------------------------------------------
# key (Table IV)
# ---------------------------------------------------------------------------


def _infer_keys(node: Operator, by_node: dict[int, "NodeProperties"]) -> frozenset[frozenset[str]]:
    if isinstance(node, DocTable):
        return frozenset({frozenset({"pre"})})
    if isinstance(node, LiteralTable):
        return _literal_table_keys(node)
    if isinstance(node, (Serialize, Select)):
        return by_node[id(node.children[0])].keys
    if isinstance(node, Project):
        return _project_keys(node, by_node[id(node.child)].keys)
    if isinstance(node, Distinct):
        return by_node[id(node.child)].keys | frozenset({frozenset(node.child.columns)})
    if isinstance(node, Attach):
        return by_node[id(node.child)].keys
    if isinstance(node, RowId):
        return by_node[id(node.child)].keys | frozenset({frozenset({node.column})})
    if isinstance(node, RowRank):
        return _rank_keys(node, by_node[id(node.child)].keys)
    if isinstance(node, Join):
        return _join_keys(node, by_node)
    if isinstance(node, Cross):
        left = by_node[id(node.children[0])].keys
        right = by_node[id(node.children[1])].keys
        return frozenset({k1 | k2 for k1 in left for k2 in right})
    if isinstance(node, GroupAggregate):
        # At most one output row per loop row, loop column names unchanged.
        return by_node[id(node.loop)].keys
    return frozenset()


def _literal_table_keys(node: LiteralTable) -> frozenset[frozenset[str]]:
    keys: set[frozenset[str]] = set()
    for index, column in enumerate(node.columns):
        values = [row[index] for row in node.rows]
        if len(values) == len(set(values)):
            keys.add(frozenset({column}))
    if len(node.rows) == len(set(node.rows)):
        keys.add(frozenset(node.columns))
    return frozenset(keys)


def _project_keys(
    node: Project, child_keys: frozenset[frozenset[str]]
) -> frozenset[frozenset[str]]:
    source_columns = frozenset(old for _new, old in node.items)
    keys: set[frozenset[str]] = set()
    for key in child_keys:
        if key <= source_columns:
            keys.add(frozenset(new for new, old in node.items if old in key))
    return frozenset(keys)


def _rank_keys(node: RowRank, child_keys: frozenset[frozenset[str]]) -> frozenset[frozenset[str]]:
    order_columns = frozenset(node.order_by)
    partition_columns = frozenset(node.partition_by)
    keys: set[frozenset[str]] = set(child_keys)
    for key in child_keys:
        if key & order_columns:
            # The rank is only unique within one partition, so the derived
            # key must carry the partition columns alongside the rank.
            keys.add(frozenset({node.column}) | (key - order_columns) | partition_columns)
    return frozenset(keys)


def _join_keys(node: Join, by_node: dict[int, "NodeProperties"]) -> frozenset[frozenset[str]]:
    left, right = node.children
    left_keys = by_node[id(left)].keys
    right_keys = by_node[id(right)].keys
    keys: set[frozenset[str]] = set()
    predicate = node.predicate
    if predicate.is_single_column_equality():
        (a, b) = predicate.column_equalities()[0]
        # Normalise so that ``a`` belongs to the left input and ``b`` to the right.
        if a in right.columns and b in left.columns:
            a, b = b, a
        right_has_key_b = frozenset({b}) in right_keys
        left_has_key_a = frozenset({a}) in left_keys
        if right_has_key_b:
            keys |= set(left_keys)
            keys |= {(k1 - {a}) | k2 for k1 in left_keys for k2 in right_keys}
        if left_has_key_a:
            keys |= set(right_keys)
            keys |= {k1 | (k2 - {b}) for k1 in left_keys for k2 in right_keys}
        if not keys:
            keys = {k1 | k2 for k1 in left_keys for k2 in right_keys}
        return frozenset(keys)
    return frozenset({k1 | k2 for k1 in left_keys for k2 in right_keys})


# ---------------------------------------------------------------------------
# icols (Table II) and set (Table V): contribution of a parent to one child
# ---------------------------------------------------------------------------


def _child_icols(
    node: Operator, position: int, child: Operator, icols: frozenset[str]
) -> frozenset[str]:
    if isinstance(node, Serialize):
        return SERIALIZE_ICOLS & frozenset(child.columns) or frozenset(child.columns)
    if isinstance(node, Project):
        needed = icols & frozenset(node.columns)
        return frozenset(old for new, old in node.items if new in needed)
    if isinstance(node, Select):
        return (icols | node.predicate.columns()) & frozenset(child.columns)
    if isinstance(node, Join):
        return (icols | node.predicate.columns()) & frozenset(child.columns)
    if isinstance(node, Cross):
        return icols & frozenset(child.columns)
    if isinstance(node, Distinct):
        return icols & frozenset(child.columns)
    if isinstance(node, Attach):
        return (icols - {node.column}) & frozenset(child.columns)
    if isinstance(node, RowId):
        return (icols - {node.column}) & frozenset(child.columns)
    if isinstance(node, RowRank):
        return (
            (icols - {node.column})
            | frozenset(node.order_by)
            | frozenset(node.partition_by)
        ) & frozenset(child.columns)
    if isinstance(node, GroupAggregate):
        if position == 0:  # the aggregated input
            needed = {node.group_column, node.unit_column}
            if node.value_column is not None:
                needed.add(node.value_column)
            return frozenset(needed)
        # The loop: everything upstream needs except the aggregate value,
        # plus the group column the aggregation itself keys on.
        return ((icols - {node.item_column}) | {node.group_column}) & frozenset(child.columns)
    return icols & frozenset(child.columns)


def _child_set(node: Operator, position: int, node_set: bool) -> bool:
    if isinstance(node, Distinct):
        return True
    if isinstance(node, Serialize):
        return False
    if isinstance(node, GroupAggregate):
        # The aggregation itself deduplicates its *argument* on
        # (group, unit, value) — every column it keeps — so a δ below the
        # child is redundant and removable.  The loop input's multiplicity
        # is observed verbatim (one output row per loop row).
        return position == 0
    return node_set

"""Plan property inference (Tables II-V of the paper).

For every operator of a plan DAG four properties are inferred:

``icols``
    The set of input columns strictly required by the operator's upstream
    plan (top-down, seeded with ``{pos, item}`` at the serialization point,
    accumulated over all parents).

``const``
    The set of ``column = constant`` facts that hold for every output row
    (bottom-up).

``key``
    The set of candidate keys of the operator's output (bottom-up).

``set``
    Whether the operator's output rows are subject to duplicate elimination
    further up on *every* path to the root (top-down, seeded ``False`` at
    the root, conjunctively accumulated).

The rewrite rules of :mod:`repro.core.rules` consult these properties
through a :class:`PlanProperties` snapshot; the snapshot is recomputed after
every rewrite step (the plans are small enough — a few hundred operators —
for this to be cheap).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.dag import iter_nodes, topological_order
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)

#: Seed of ``icols`` at the serialization point: the two columns needed to
#: represent and serialize the resulting XML node sequence.
SERIALIZE_ICOLS = frozenset({"pos", "item"})


#: Cross-step memo for the bottom-up properties: ``id(node) -> (node, child
#: states, const, keys)`` with one ``(columns, const, keys)`` triple per
#: child.  ``const`` / ``keys`` are a pure function of the node's own fields
#: and its children's ``(columns, const, keys)``, so an entry is valid when
#: the pinned node is identical (same fields) and every child's current
#: values match the stored triple.  Entries therefore survive the pushout's
#: mechanical ancestor rebuilds: the rewrite driver re-keys them along
#: :attr:`~repro.algebra.dag.Pushout.rebuilt` (a ``with_children`` rebuild
#: preserves all fields), and the child-state check picks up whether the
#: rewrite below actually changed anything the node's properties depend on.
#: Recomputed-but-equal values re-use the previous value *object*, which is
#: what lets parents validate by identity instead of deep comparison.
BottomUpMemo = dict

#: Cross-step memo for the top-down state: ``id(node) -> (node, parent
#: tuple, parent state tuple, icols, set, refs, columns)``.  ``icols`` /
#: ``set`` / ``refs`` (the structural upstream references of
#: :meth:`~repro.core.rewrite.context.RuleContext.upstream_refs`) of a node
#: are each a pure function of its own column schema plus its parents'
#: fields and top-down state, so an entry is valid when every stored parent
#: is the identical object — or its mechanical rebuild, looked up through
#: the step's ``rebuilt`` map — holding the identical state objects, and the
#: node's schema is unchanged.  Re-inference recomputes only the cone
#: actually affected by a rewrite: a recomputed-but-equal value re-uses the
#: previous value *object*, which lets the identity check cut the cascade
#: off at the first node whose properties did not really change.
TopDownMemo = dict

#: The one empty-refs object: seeds and recomputations share it so the
#: identity checks above hold across steps without a value comparison.
_NO_REFS: frozenset[str] = frozenset()


class PlanProperties:
    """A property snapshot for every operator of one plan DAG."""

    def __init__(
        self,
        root: Operator,
        bottom_up_memo: Optional[BottomUpMemo] = None,
        top_down_memo: Optional[TopDownMemo] = None,
        order: Optional[list[Operator]] = None,
        parents: Optional[dict[int, list[Operator]]] = None,
        rebuilt: Optional[dict[int, Operator]] = None,
    ):
        self.root = root
        self._icols: dict[int, frozenset[str]] = {}
        self._const: dict[int, dict[str, object]] = {}
        self._keys: dict[int, frozenset[frozenset[str]]] = {}
        self._set: dict[int, bool] = {}
        #: ``upstream_refs`` per node — populated only by the memoized
        #: top-down pass; ``None`` means the rule context computes refs
        #: lazily itself (the legacy driver's mode).
        self._refs: Optional[dict[int, frozenset[str]]] = None
        self._infer(bottom_up_memo, top_down_memo, order, parents, rebuilt)

    # -- public accessors --------------------------------------------------------

    def icols(self, node: Operator) -> frozenset[str]:
        return self._icols[id(node)]

    def const(self, node: Operator) -> dict[str, object]:
        return self._const[id(node)]

    def keys(self, node: Operator) -> frozenset[frozenset[str]]:
        return self._keys[id(node)]

    def is_set(self, node: Operator) -> bool:
        return self._set[id(node)]

    def has_key_within(self, node: Operator, columns: frozenset[str]) -> bool:
        """True when some candidate key of ``node`` is contained in ``columns``."""
        return any(key <= columns for key in self.keys(node))

    # -- inference ----------------------------------------------------------------

    def _infer(
        self,
        bottom_up_memo: Optional[BottomUpMemo],
        top_down_memo: Optional[TopDownMemo],
        order: Optional[list[Operator]],
        parents: Optional[dict[int, list[Operator]]],
        rebuilt: Optional[dict[int, Operator]],
    ) -> None:
        if order is None:
            order = topological_order(self.root)
        const_by, keys_by = self._const, self._keys
        # Bottom-up: const and key.
        for node in order:
            node_id = id(node)
            entry = bottom_up_memo.get(node_id) if bottom_up_memo is not None else None
            if entry is not None and entry[0] is node:
                for child, (columns, child_const, child_keys) in zip(
                    node.children, entry[1]
                ):
                    if (
                        const_by[id(child)] is not child_const
                        or keys_by[id(child)] is not child_keys
                        or (columns is not child.columns and columns != child.columns)
                    ):
                        break
                else:
                    const_by[node_id] = entry[2]
                    keys_by[node_id] = entry[3]
                    continue
            const = _infer_const(node, const_by)
            keys = _infer_keys(node, keys_by)
            # Recomputed-but-equal: keep the previous value *objects* so
            # parents (and their memo entries) can validate by identity.
            if entry is not None and entry[0] is node:
                if const == entry[2]:
                    const = entry[2]
                if keys == entry[3]:
                    keys = entry[3]
            const_by[node_id] = const
            keys_by[node_id] = keys
            if bottom_up_memo is not None:
                bottom_up_memo[node_id] = (
                    node,
                    tuple(
                        (child.columns, const_by[id(child)], keys_by[id(child)])
                        for child in node.children
                    ),
                    const,
                    keys,
                )
        # Top-down: icols and set.  Parents appear after children in the
        # topological order, so walk it in reverse.
        root = self.root
        self._set[id(root)] = False
        if isinstance(root, Serialize):
            root_icols = SERIALIZE_ICOLS & frozenset(root.columns)
            if not root_icols:
                root_icols = frozenset(root.columns)
        else:
            root_icols = frozenset(root.columns)
        if top_down_memo is not None and parents is not None:
            # Seed the root through its memo entry so the seeds are the
            # *same objects* step after step (the children's identity
            # checks rely on that).
            entry = top_down_memo.get(id(root))
            if entry is not None and entry[0] is root and root_icols == entry[3]:
                root_icols = entry[3]
            top_down_memo[id(root)] = (
                root, (), (), root_icols, False, _NO_REFS, root.columns
            )
            self._icols[id(root)] = root_icols
            self._refs = {id(root): _NO_REFS}
            self._pull_down_memoized(order, parents, top_down_memo, rebuilt)
        else:
            self._icols[id(root)] = root_icols
            icols_by, set_by = self._icols, self._set
            for node in order:
                if id(node) not in icols_by:
                    icols_by[id(node)] = frozenset()
                    set_by[id(node)] = True
            for node in reversed(order):
                self._propagate_down(node)

    def _pull_down_memoized(
        self,
        order: list[Operator],
        parents: dict[int, list[Operator]],
        memo: TopDownMemo,
        rebuilt: Optional[dict[int, Operator]],
    ) -> None:
        """The pull-based, memoized equivalent of the ``_propagate_down`` pass.

        Computes exactly the same unions (``icols``, ``refs``) and
        conjunctions (``set``) as the push-based pass and the rule
        context's lazy ``upstream_refs`` recursion, but per *node* instead
        of per parent edge, which makes each node's result a pure function
        of its parents — the shape the :data:`TopDownMemo` validation
        needs.  ``rebuilt`` (the step's mechanical-rebuild map) lets an
        entry stay valid when a stored parent was merely re-created by
        ``with_children`` around an unrelated change: the rebuild has the
        same fields, so its contribution is the same whenever its state is.
        """
        icols_by, set_by, refs_by = self._icols, self._set, self._refs
        root = self.root
        rebuilt_get = rebuilt.get if rebuilt is not None else {}.get
        memo_get = memo.get
        for node in reversed(order):
            if node is root:
                continue
            node_id = id(node)
            plist = parents[node_id]
            entry = memo_get(node_id)
            if (
                entry is not None
                and entry[0] is node
                and len(entry[1]) == len(plist)
                and (entry[6] is node.columns or entry[6] == node.columns)
            ):
                valid = True
                stale_parents = False
                for stored, current, state in zip(entry[1], plist, entry[2]):
                    if stored is not current:
                        if rebuilt_get(id(stored)) is not current:
                            valid = False
                            break
                        stale_parents = True
                    current_id = id(current)
                    if (
                        icols_by[current_id] is not state[0]
                        or set_by[current_id] != state[1]
                        or refs_by[current_id] is not state[2]
                    ):
                        valid = False
                        break
                if valid:
                    icols_by[node_id] = entry[3]
                    set_by[node_id] = entry[4]
                    refs_by[node_id] = entry[5]
                    if stale_parents:
                        # Refresh the parent tuple: the rebuilt map only
                        # covers the *current* step's rebuilds.
                        memo[node_id] = (node, tuple(plist)) + entry[2:]
                    continue
            icols: frozenset[str] = frozenset()
            is_set = True
            refs: set[str] = set()
            for parent in plist:
                parent_id = id(parent)
                parent_icols = icols_by[parent_id]
                parent_set = set_by[parent_id]
                for position, child in enumerate(parent.children):
                    if child is node:
                        icols = icols | _child_icols(
                            parent, position, node, parent_icols
                        )
                        is_set = is_set and _child_set(parent, position, parent_set)
                refs |= _parent_refs(parent, node, refs_by[parent_id])
            frozen_refs = frozenset(refs) if refs else _NO_REFS
            # Recomputed-but-equal: keep the previous value *object* so the
            # identity checks of this node's children (and their memo
            # entries) stay valid — this is what stops one rewrite near the
            # root from invalidating the entire plan's top-down state.
            if entry is not None and entry[0] is node:
                if icols == entry[3]:
                    icols = entry[3]
                if frozen_refs == entry[5]:
                    frozen_refs = entry[5]
            icols_by[node_id] = icols
            set_by[node_id] = is_set
            refs_by[node_id] = frozen_refs
            memo[node_id] = (
                node,
                tuple(plist),
                tuple(
                    (icols_by[id(p)], set_by[id(p)], refs_by[id(p)]) for p in plist
                ),
                icols,
                is_set,
                frozen_refs,
                node.columns,
            )

    def _propagate_down(self, node: Operator) -> None:
        icols_by, set_by = self._icols, self._set
        node_icols = icols_by[id(node)]
        node_set = set_by[id(node)]
        for position, child in enumerate(node.children):
            child_id = id(child)
            icols_by[child_id] = icols_by[child_id] | _child_icols(
                node, position, child, node_icols
            )
            set_by[child_id] = set_by[child_id] and _child_set(
                node, position, node_set
            )


def infer_properties(
    root: Operator,
    bottom_up_memo: Optional[BottomUpMemo] = None,
    top_down_memo: Optional[TopDownMemo] = None,
    order: Optional[list[Operator]] = None,
    parents: Optional[dict[int, list[Operator]]] = None,
    rebuilt: Optional[dict[int, Operator]] = None,
) -> PlanProperties:
    """Infer all four plan properties for the DAG rooted at ``root``.

    ``bottom_up_memo`` optionally reuses ``const`` / ``key`` results for
    subtrees preserved across rewrite steps (see :data:`BottomUpMemo`);
    ``top_down_memo`` (which additionally needs the ``parents`` map) does
    the same for ``icols`` / ``set`` (see :data:`TopDownMemo`).  ``order``
    lets a caller that already traversed the plan share its topological
    order instead of paying a second traversal, and ``rebuilt`` is the
    step's mechanical-rebuild map (:attr:`~repro.algebra.dag.Pushout.rebuilt`)
    that keeps memo entries valid across ``with_children`` rebuilds.
    """
    return PlanProperties(
        root, bottom_up_memo, top_down_memo, order, parents, rebuilt
    )


# ---------------------------------------------------------------------------
# const (Table III)
# ---------------------------------------------------------------------------


def _infer_const(
    node: Operator, const_by: dict[int, dict[str, object]]
) -> dict[str, object]:
    if isinstance(node, DocTable):
        return {}
    if isinstance(node, LiteralTable):
        constants: dict[str, object] = {}
        for index, column in enumerate(node.columns):
            values = {row[index] for row in node.rows}
            if len(values) == 1:
                constants[column] = next(iter(values))
        return constants
    if isinstance(node, (Serialize, Select, Distinct, RowId, RowRank)):
        return dict(const_by[id(node.children[0])])
    if isinstance(node, Project):
        child_const = const_by[id(node.child)]
        return {new: child_const[old] for new, old in node.items if old in child_const}
    if isinstance(node, Attach):
        constants = dict(const_by[id(node.child)])
        constants[node.column] = node.value
        return constants
    if isinstance(node, (Join, Cross)):
        combined = dict(const_by[id(node.children[0])])
        combined.update(const_by[id(node.children[1])])
        return combined
    if isinstance(node, GroupAggregate):
        # Loop columns pass through untouched; the aggregate value does not.
        return dict(const_by[id(node.loop)])
    return {}


# ---------------------------------------------------------------------------
# key (Table IV)
# ---------------------------------------------------------------------------


def _infer_keys(
    node: Operator, keys_by: dict[int, frozenset[frozenset[str]]]
) -> frozenset[frozenset[str]]:
    if isinstance(node, DocTable):
        return frozenset({frozenset({"pre"})})
    if isinstance(node, LiteralTable):
        return _literal_table_keys(node)
    if isinstance(node, (Serialize, Select)):
        return keys_by[id(node.children[0])]
    if isinstance(node, Project):
        return _project_keys(node, keys_by[id(node.child)])
    if isinstance(node, Distinct):
        return keys_by[id(node.child)] | frozenset({frozenset(node.child.columns)})
    if isinstance(node, Attach):
        return keys_by[id(node.child)]
    if isinstance(node, RowId):
        return keys_by[id(node.child)] | frozenset({frozenset({node.column})})
    if isinstance(node, RowRank):
        return _rank_keys(node, keys_by[id(node.child)])
    if isinstance(node, Join):
        return _join_keys(node, keys_by)
    if isinstance(node, Cross):
        left = keys_by[id(node.children[0])]
        right = keys_by[id(node.children[1])]
        return frozenset({k1 | k2 for k1 in left for k2 in right})
    if isinstance(node, GroupAggregate):
        # At most one output row per loop row, loop column names unchanged.
        return keys_by[id(node.loop)]
    return frozenset()


def _literal_table_keys(node: LiteralTable) -> frozenset[frozenset[str]]:
    keys: set[frozenset[str]] = set()
    for index, column in enumerate(node.columns):
        values = [row[index] for row in node.rows]
        if len(values) == len(set(values)):
            keys.add(frozenset({column}))
    if len(node.rows) == len(set(node.rows)):
        keys.add(frozenset(node.columns))
    return frozenset(keys)


def _project_keys(
    node: Project, child_keys: frozenset[frozenset[str]]
) -> frozenset[frozenset[str]]:
    source_columns = frozenset(old for _new, old in node.items)
    keys: set[frozenset[str]] = set()
    for key in child_keys:
        if key <= source_columns:
            keys.add(frozenset(new for new, old in node.items if old in key))
    return frozenset(keys)


def _rank_keys(node: RowRank, child_keys: frozenset[frozenset[str]]) -> frozenset[frozenset[str]]:
    order_columns = frozenset(node.order_by)
    partition_columns = frozenset(node.partition_by)
    keys: set[frozenset[str]] = set(child_keys)
    for key in child_keys:
        if key & order_columns:
            # The rank is only unique within one partition, so the derived
            # key must carry the partition columns alongside the rank.
            keys.add(frozenset({node.column}) | (key - order_columns) | partition_columns)
    return frozenset(keys)


def _join_keys(
    node: Join, keys_by: dict[int, frozenset[frozenset[str]]]
) -> frozenset[frozenset[str]]:
    left, right = node.children
    left_keys = keys_by[id(left)]
    right_keys = keys_by[id(right)]
    keys: set[frozenset[str]] = set()
    predicate = node.predicate
    if predicate.is_single_column_equality():
        (a, b) = predicate.column_equalities()[0]
        # Normalise so that ``a`` belongs to the left input and ``b`` to the right.
        if a in right.columns and b in left.columns:
            a, b = b, a
        right_has_key_b = frozenset({b}) in right_keys
        left_has_key_a = frozenset({a}) in left_keys
        if right_has_key_b:
            keys |= set(left_keys)
            keys |= {(k1 - {a}) | k2 for k1 in left_keys for k2 in right_keys}
        if left_has_key_a:
            keys |= set(right_keys)
            keys |= {k1 | (k2 - {b}) for k1 in left_keys for k2 in right_keys}
        if not keys:
            keys = {k1 | k2 for k1 in left_keys for k2 in right_keys}
        return frozenset(keys)
    return frozenset({k1 | k2 for k1 in left_keys for k2 in right_keys})


# ---------------------------------------------------------------------------
# upstream refs: structural references of one parent into one child
# ---------------------------------------------------------------------------


def _parent_refs(
    parent: Operator, child: Operator, parent_refs: frozenset[str]
) -> set[str]:
    """Columns of ``child`` that ``parent`` structurally references.

    ``parent_refs`` is the parent's own (already computed) upstream refs —
    pass-through operators forward them.  This is the per-edge contribution
    behind :meth:`~repro.core.rewrite.context.RuleContext.upstream_refs`:
    the rule context's lazy recursion and the eager memoized pass above
    both sum exactly these sets.
    """
    child_columns = set(child.columns)
    refs: set[str] = set()
    if isinstance(parent, Project):
        refs |= {old for _new, old in parent.items} & child_columns
        return refs
    if isinstance(parent, Select):
        refs |= set(parent.predicate.columns()) & child_columns
    elif isinstance(parent, Join):
        refs |= set(parent.predicate.columns()) & child_columns
    elif isinstance(parent, RowRank):
        refs |= (set(parent.order_by) | set(parent.partition_by)) & child_columns
    elif isinstance(parent, GroupAggregate):
        structural = {parent.group_column, parent.unit_column}
        if parent.value_column is not None:
            structural.add(parent.value_column)
        refs |= structural & child_columns
    # Pass-through parents forward their own upstream references.
    if isinstance(
        parent,
        (Select, Join, Cross, Distinct, Attach, RowId, RowRank, GroupAggregate, Serialize),
    ):
        refs |= parent_refs & child_columns
    return refs


# ---------------------------------------------------------------------------
# icols (Table II) and set (Table V): contribution of a parent to one child
# ---------------------------------------------------------------------------


def _child_icols(
    node: Operator, position: int, child: Operator, icols: frozenset[str]
) -> frozenset[str]:
    if isinstance(node, Serialize):
        return SERIALIZE_ICOLS & frozenset(child.columns) or frozenset(child.columns)
    if isinstance(node, Project):
        needed = icols & frozenset(node.columns)
        return frozenset(old for new, old in node.items if new in needed)
    if isinstance(node, Select):
        return (icols | node.predicate.columns()) & frozenset(child.columns)
    if isinstance(node, Join):
        return (icols | node.predicate.columns()) & frozenset(child.columns)
    if isinstance(node, Cross):
        return icols & frozenset(child.columns)
    if isinstance(node, Distinct):
        return icols & frozenset(child.columns)
    if isinstance(node, Attach):
        return (icols - {node.column}) & frozenset(child.columns)
    if isinstance(node, RowId):
        return (icols - {node.column}) & frozenset(child.columns)
    if isinstance(node, RowRank):
        return (
            (icols - {node.column})
            | frozenset(node.order_by)
            | frozenset(node.partition_by)
        ) & frozenset(child.columns)
    if isinstance(node, GroupAggregate):
        if position == 0:  # the aggregated input
            needed = {node.group_column, node.unit_column}
            if node.value_column is not None:
                needed.add(node.value_column)
            return frozenset(needed)
        # The loop: everything upstream needs except the aggregate value,
        # plus the group column the aggregation itself keys on.
        return ((icols - {node.item_column}) | {node.group_column}) & frozenset(child.columns)
    return icols & frozenset(child.columns)


def _child_set(node: Operator, position: int, node_set: bool) -> bool:
    if isinstance(node, Distinct):
        return True
    if isinstance(node, Serialize):
        return False
    if isinstance(node, GroupAggregate):
        # The aggregation itself deduplicates its *argument* on
        # (group, unit, value) — every column it keeps — so a δ below the
        # child is redundant and removable.  The loop input's multiplicity
        # is observed verbatim (one output row per loop row).
        return position == 0
    return node_set

"""The goal-directed join graph isolation rewriter (Section III of the paper).

The rewriting proceeds through the paper's goals:

1. **house cleaning** — the simplification rules (1)-(5), (10), (12), (13)
   are applied until no more of them fire;
2. **goal ϱ** — the row-rank operators are simplified and moved towards the
   plan tail (rules (12)-(14), (16), (17));
3. **goals δ and ⋈** — a single duplicate elimination is established in the
   plan tail and the equi-joins introduced by loop lifting (and the
   ``pre = item`` context joins) are collapsed (rules (6)-(8) and the
   generalised rule (9*));
4. **final cleaning** — a last house-cleaning pass removes operators whose
   attached columns became unreferenced during the join collapses.

The rules themselves are declarative :class:`~repro.core.rewrite.rule.Rule`
objects (:mod:`repro.core.rewrite.rules`); this module assembles them into
the goal sequence and hands the sequence to one of the two drivers of
:mod:`repro.core.rewrite.engine` — the production pattern-indexed
**worklist** driver, or the restart-from-root **legacy** driver kept as the
benchmark baseline.  Both produce identical plans, applications, and
rejection records; they differ only in per-step cost.

The applicability of each rule is decided locally on a single operator and
its inferred properties (Tables II-V), exactly as the paper's peephole
strategy prescribes.  Progress is guaranteed because every rule either
removes an operator, strictly shrinks one, or replaces a join by a narrower
plan; a step limit guards against bugs nonetheless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RewriteError
from repro.algebra.dag import node_count
from repro.algebra.operators import Serialize
from repro.core.rewrite.engine import Phase, run_phases
from repro.core.rewrite.rule import Rule
from repro.core.rewrite.rules import CLEANUP_GROUP, JOIN_GROUP, RANK_GROUP
from repro.core.rewrite.trace import (
    RejectedApplication,
    RewriteStep,
    RewriteTrace,
    format_divergence,
)

#: Backwards-compatible alias (the step records used to be a separate class).
RuleApplication = RewriteStep


@dataclass
class IsolationReport:
    """A record of one isolation run (used by tests and the ablation bench)."""

    applications: list[RewriteStep] = field(default_factory=list)
    rejections: list[RejectedApplication] = field(default_factory=list)
    steps: int = 0
    initial_operator_count: int = 0
    final_operator_count: int = 0
    converged: bool = True
    driver: str = "worklist"

    def rules_fired(self) -> dict[str, int]:
        """Histogram of rule names over all applied steps."""
        histogram: dict[str, int] = {}
        for application in self.applications:
            histogram[application.rule] = histogram.get(application.rule, 0) + 1
        return histogram

    def trace(self) -> RewriteTrace:
        """The run as an immutable provenance trace (see ``rewrite_trace``)."""
        return RewriteTrace(
            steps=tuple(self.applications),
            rejections=tuple(self.rejections),
            initial_operator_count=self.initial_operator_count,
            final_operator_count=self.final_operator_count,
            converged=self.converged,
            driver=self.driver,
        )


@dataclass
class JoinGraphIsolation:
    """Configuration and driver of the isolation rewriting.

    ``enable_rank_goal``, ``enable_distinct_goal`` and ``enable_join_goal``
    exist for the ablation experiment (switching off individual goals shows
    how far DB2-style back-ends get without them).  ``driver`` selects the
    rewrite engine: the production ``"worklist"`` driver or the
    restart-from-root ``"legacy"`` baseline (identical results, slower).
    """

    max_steps: int = 5000
    enable_cleanup: bool = True
    enable_rank_goal: bool = True
    enable_distinct_goal: bool = True
    enable_join_goal: bool = True
    driver: str = "worklist"

    def isolate(self, root: Serialize) -> tuple[Serialize, IsolationReport]:
        """Rewrite ``root`` and return the isolated plan plus a report."""
        plan, engine = run_phases(
            root, self._phases(), max_steps=self.max_steps, driver=self.driver
        )
        report = IsolationReport(
            applications=engine.steps,
            rejections=engine.rejections,
            steps=engine.step_count,
            initial_operator_count=node_count(root),
            final_operator_count=node_count(plan),
            converged=engine.converged,
            driver=self.driver,
        )
        if not isinstance(plan, Serialize):
            plan = Serialize(plan)
        return plan, report

    # -- phases -------------------------------------------------------------------

    def _phases(self) -> list[Phase]:
        cleanup: tuple[Rule, ...] = CLEANUP_GROUP if self.enable_cleanup else ()
        phases: list[Phase] = []
        if self.enable_cleanup:
            phases.append(("cleanup", cleanup))
        if self.enable_rank_goal:
            phases.append(("rank", cleanup + RANK_GROUP))
        join_rules = tuple(
            rule
            for rule in JOIN_GROUP
            if self.enable_distinct_goal or "distinct" not in rule.name
        )
        if self.enable_join_goal or self.enable_distinct_goal:
            phases.append(
                (
                    "join",
                    cleanup + (RANK_GROUP if self.enable_rank_goal else ()) + join_rules,
                )
            )
        if self.enable_cleanup:
            phases.append(("final", cleanup))
        return phases


def isolate(
    root: Serialize, config: JoinGraphIsolation | None = None
) -> tuple[Serialize, IsolationReport]:
    """Convenience wrapper: run join graph isolation with default settings."""
    isolation = config or JoinGraphIsolation()
    plan, report = isolation.isolate(root)
    if not report.converged:
        raise RewriteError(format_divergence(report.applications, isolation.max_steps))
    return plan, report

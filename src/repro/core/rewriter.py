"""The goal-directed join graph isolation rewriter (Section III of the paper).

The rewriting proceeds through the paper's goals:

1. **house cleaning** — the simplification rules (1)-(5), (10), (12), (13)
   are applied until no more of them fire;
2. **goal ϱ** — the row-rank operators are simplified and moved towards the
   plan tail (rules (12)-(14), (16), (17));
3. **goals δ and ⋈** — a single duplicate elimination is established in the
   plan tail and the equi-joins introduced by loop lifting (and the
   ``pre = item`` context joins) are collapsed (rules (6)-(8) and the
   generalised rule (9*));
4. **final cleaning** — a last house-cleaning pass removes operators whose
   attached columns became unreferenced during the join collapses.

After every rule application the plan properties (Tables II-V) are
re-inferred; the applicability of each rule is decided locally on a single
operator and its inferred properties, exactly as the paper's peephole
strategy prescribes.  Progress is guaranteed because every rule either
removes an operator, strictly shrinks one, or replaces a join by a narrower
plan; a step limit guards against bugs nonetheless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AlgebraError, RewriteError
from repro.algebra.dag import iter_nodes, node_count, substitute
from repro.algebra.operators import Operator, Serialize
from repro.core.properties import infer_properties
from repro.core.rules import (
    CLEANUP_RULES,
    JOIN_RULES,
    RANK_RULES,
    Rule,
    RuleApplication,
    RuleContext,
)


@dataclass
class IsolationReport:
    """A record of one isolation run (used by tests and the ablation bench)."""

    applications: list[RuleApplication] = field(default_factory=list)
    steps: int = 0
    initial_operator_count: int = 0
    final_operator_count: int = 0
    converged: bool = True

    def rules_fired(self) -> dict[str, int]:
        """Histogram of rule names over all applied steps."""
        histogram: dict[str, int] = {}
        for application in self.applications:
            histogram[application.rule] = histogram.get(application.rule, 0) + 1
        return histogram


@dataclass
class JoinGraphIsolation:
    """Configuration and driver of the isolation rewriting.

    ``enable_rank_goal``, ``enable_distinct_goal`` and ``enable_join_goal``
    exist for the ablation experiment (switching off individual goals shows
    how far DB2-style back-ends get without them).
    """

    max_steps: int = 5000
    enable_cleanup: bool = True
    enable_rank_goal: bool = True
    enable_distinct_goal: bool = True
    enable_join_goal: bool = True

    def isolate(self, root: Serialize) -> tuple[Serialize, IsolationReport]:
        """Rewrite ``root`` and return the isolated plan plus a report."""
        report = IsolationReport(initial_operator_count=node_count(root))
        plan: Operator = root
        for phase_rules in self._phases():
            plan = self._run_phase(plan, phase_rules, report)
        report.final_operator_count = node_count(plan)
        if not isinstance(plan, Serialize):
            plan = Serialize(plan)
        return plan, report

    # -- phases -------------------------------------------------------------------

    def _phases(self) -> list[tuple[tuple[str, Rule], ...]]:
        cleanup = CLEANUP_RULES if self.enable_cleanup else ()
        phases: list[tuple[tuple[str, Rule], ...]] = []
        if self.enable_cleanup:
            phases.append(cleanup)
        if self.enable_rank_goal:
            phases.append(cleanup + RANK_RULES)
        join_rules = tuple(
            (name, rule)
            for name, rule in JOIN_RULES
            if self.enable_distinct_goal or "distinct" not in name
        )
        if self.enable_join_goal or self.enable_distinct_goal:
            phases.append(cleanup + (RANK_RULES if self.enable_rank_goal else ()) + join_rules)
        if self.enable_cleanup:
            phases.append(cleanup)
        return phases

    def _run_phase(
        self,
        plan: Operator,
        rules: tuple[tuple[str, Rule], ...],
        report: IsolationReport,
    ) -> Operator:
        if not rules:
            return plan
        while True:
            if report.steps >= self.max_steps:
                report.converged = False
                return plan
            application = self._apply_first(plan, rules)
            if application is None:
                return plan
            plan, record = application
            report.applications.append(record)
            report.steps += 1

    def _apply_first(
        self, plan: Operator, rules: tuple[tuple[str, Rule], ...]
    ) -> tuple[Operator, RuleApplication] | None:
        properties = infer_properties(plan)
        ctx = RuleContext(plan, properties)
        for node in iter_nodes(plan):
            if isinstance(node, Serialize):
                continue
            for name, rule in rules:
                result = rule(node, ctx)
                if result is None or result is node:
                    continue
                if isinstance(result, dict):
                    replacements = result
                    replacement_label = replacements[id(node)].label()
                else:
                    replacements = {id(node): result}
                    replacement_label = result.label()
                try:
                    new_plan = substitute(plan, replacements)
                except AlgebraError:
                    # The rewrite is locally sound but globally inapplicable:
                    # rebuilding the DAG tripped an operator invariant (e.g.
                    # a widened shared spine makes a far-away join's inputs
                    # overlap).  The constructor checks are the exact global
                    # premise — treat the application as not applicable and
                    # keep scanning; the plan is unchanged.
                    continue
                record = RuleApplication(
                    rule=name,
                    target=node.label(),
                    replacement=replacement_label,
                )
                return new_plan, record
        return None


def isolate(
    root: Serialize, config: JoinGraphIsolation | None = None
) -> tuple[Serialize, IsolationReport]:
    """Convenience wrapper: run join graph isolation with default settings."""
    isolation = config or JoinGraphIsolation()
    plan, report = isolation.isolate(root)
    if not report.converged:
        raise RewriteError(
            f"join graph isolation did not converge within {isolation.max_steps} steps"
        )
    return plan, report

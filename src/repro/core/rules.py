"""The join graph isolation rewrite rules (Fig. 5 of the paper).

Every rule is a function ``rule(node, ctx) -> Operator | None`` returning a
replacement for ``node`` (or ``None`` when the rule does not apply).  The
premises consult the inferred plan properties through the
:class:`RuleContext`.

The implemented set corresponds to the paper's rules with two adaptations
required by this implementation's column-disjoint join operator (the paper's
algebra allows both join inputs to expose the same column name, ours —
matching SQL — does not):

* Rule (9) is generalised into the *key-join collapse* rule
  (:func:`rule_key_join_collapse`): a join ``A ⋈ a=b B`` whose two join
  columns stem from the same column ``c`` of the same operator ``X`` with
  ``{c}`` a key of ``X``, and whose one side is a row-preserving column
  chain over ``X``, is replaced by the other side widened with the columns
  it still needs.  This single rule subsumes the paper's Rule (9) (removal
  of the degenerated equi-joins introduced by FOR / IF compilation, Fig. 6)
  and also eliminates the ``pre = item`` context joins of the STEP / COMP
  rules, which is what turns Q1 into the *three*-fold self-join of Fig. 7/8.
* Rules (11) and (15) — join push-down below and row-rank pull-up above
  binary operators — are not needed once the collapse rule is in place and
  are therefore not part of the default goal sequence (the collapse performs
  the push-down's job in one step).

All remaining rules ((1)-(8), (10), (12)-(14), (16), (17)) follow the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.algebra.dag import iter_nodes, parents_map
from repro.algebra.operators import (
    Attach,
    Cross,
    Distinct,
    DocTable,
    GroupAggregate,
    Join,
    LiteralTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.predicates import ColumnRef, Comparison, Predicate
from repro.core.properties import PlanProperties

#: Operators that neither filter nor multiply the rows flowing through them
#: (with respect to a key column they carry) — the "safe" spine of the side
#: a key-join collapse is allowed to drop.
_ROW_PRESERVING = (Project, Attach, RowId, RowRank, Distinct, Serialize)


@dataclass(frozen=True)
class RuleApplication:
    """A record of one applied rewrite step (for the isolation report)."""

    rule: str
    target: str
    replacement: str


class RuleContext:
    """Premise-evaluation context shared by all rules for one rewrite step."""

    def __init__(self, root: Operator, properties: PlanProperties):
        self.root = root
        self.properties = properties
        self.parents = parents_map(root)
        self._upstream_refs_memo: dict[int, frozenset[str]] = {}
        self._compared_origins: Optional[set[tuple[int, str]]] = None
        self._fresh = 0

    # -- fresh names -------------------------------------------------------------

    #: Process-wide counter: rule contexts are rebuilt after every rewrite
    #: step, so a per-context counter would re-issue the same "fresh" names
    #: step after step — and two widenings of one shared spine would then
    #: collide on identical carry columns.
    _fresh_columns = itertools.count(1)

    def fresh_column(self, hint: str = "carry") -> str:
        return f"{hint}_w{next(self._fresh_columns)}"

    # -- column provenance ---------------------------------------------------------

    def provenance(self, node: Operator, column: str) -> list[tuple[Operator, str]]:
        """The provenance path of ``column``: ``[(node, name), ..., (origin, name)]``.

        The path follows projections through their renamings, passes through
        row-preserving unary operators and descends into the join/cross input
        that provides the column.  It ends at the operator that *introduced*
        the column (a leaf, ``@``, ``#`` or ``ϱ``).
        """
        path: list[tuple[Operator, str]] = []
        current, name = node, column
        while True:
            path.append((current, name))
            if isinstance(current, Project):
                name = current.renaming()[name]
                current = current.child
                continue
            if isinstance(current, (Select, Distinct, Serialize)):
                current = current.children[0]
                continue
            if isinstance(current, (Attach, RowId, RowRank)):
                if name == current.column:
                    return path
                current = current.child
                continue
            if isinstance(current, GroupAggregate):
                if name == current.item_column:
                    return path  # the aggregate value is introduced here
                current = current.loop  # loop columns pass through untouched
                continue
            if isinstance(current, (Join, Cross)):
                left, right = current.children
                current = left if name in left.columns else right
                continue
            return path  # leaf (doc or literal table)

    def origin(self, node: Operator, column: str) -> tuple[Operator, str]:
        """The introducing operator and column name of ``column`` of ``node``."""
        path = self.provenance(node, column)
        return path[-1]

    # -- structural references -------------------------------------------------------

    def upstream_refs(self, node: Operator) -> frozenset[str]:
        """Column names of ``node``'s output referenced structurally upstream.

        This is a conservative superset of ``icols`` used to keep rewrites
        that narrow an operator's output schema from breaking parents that
        still *mention* a column (e.g. a dead projection item) even though
        the column is not strictly required.
        """
        if id(node) in self._upstream_refs_memo:
            return self._upstream_refs_memo[id(node)]
        refs: set[str] = set()
        for parent in self.parents.get(id(node), ()):  # direct parents
            refs |= self._parent_refs(parent, node)
        result = frozenset(refs)
        self._upstream_refs_memo[id(node)] = result
        return result

    def _parent_refs(self, parent: Operator, child: Operator) -> set[str]:
        child_columns = set(child.columns)
        refs: set[str] = set()
        if isinstance(parent, Project):
            refs |= {old for _new, old in parent.items} & child_columns
            return refs
        if isinstance(parent, Select):
            refs |= set(parent.predicate.columns()) & child_columns
        elif isinstance(parent, Join):
            refs |= set(parent.predicate.columns()) & child_columns
        elif isinstance(parent, RowRank):
            refs |= (set(parent.order_by) | set(parent.partition_by)) & child_columns
        elif isinstance(parent, GroupAggregate):
            structural = {parent.group_column, parent.unit_column}
            if parent.value_column is not None:
                structural.add(parent.value_column)
            refs |= structural & child_columns
        # Pass-through parents forward their own upstream references.
        if isinstance(
            parent,
            (Select, Join, Cross, Distinct, Attach, RowId, RowRank, GroupAggregate, Serialize),
        ):
            refs |= self.upstream_refs(parent) & child_columns
        return refs

    def needed_columns(self, node: Operator) -> frozenset[str]:
        """``icols`` widened by structural upstream references."""
        return self.properties.icols(node) | self.upstream_refs(node)

    def rank_compared_upstream(self, rank: "RowRank") -> bool:
        """Does any σ/⋈ predicate in the plan compare this rank's column?

        Positional predicates (``E[n]``) compile into a selection on the
        sequence-position rank; for such a plan the rank is *not* a pure
        ordering column, and rewrites that replace it by its ordering source
        (rule (12)) would silently change which rows the selection keeps.
        The scan over all predicates runs once per rewrite step (memoized).
        """
        if self._compared_origins is None:
            from repro.algebra.dag import iter_nodes

            compared: set[tuple[int, str]] = set()
            for node in iter_nodes(self.root):
                if isinstance(node, Select):
                    bases = [node.child]
                elif isinstance(node, Join):
                    bases = list(node.children)
                else:
                    continue
                for column in node.predicate.columns():
                    base = next(b for b in bases if column in b.columns)
                    origin_node, origin_column = self.origin(base, column)
                    compared.add((id(origin_node), origin_column))
            self._compared_origins = compared
        return (id(rank), rank.column) in self._compared_origins


#: A rule inspects one operator and either returns ``None`` (not applicable),
#: a single replacement operator, or a substitution map ``{id(old): new}``
#: covering several nodes at once (used by the key-join collapse to keep
#: shared sub-plans shared while widening them).
RuleResult = Optional["Operator | dict[int, Operator]"]
Rule = Callable[[Operator, RuleContext], RuleResult]


# ---------------------------------------------------------------------------
# House-cleaning rules (1) - (5), (12), (13), plus constant projection folding
# ---------------------------------------------------------------------------


def rule_prune_rowid(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(1)  #a(q) → q   when a is not needed upstream."""
    if isinstance(node, RowId) and node.column not in ctx.needed_columns(node):
        return node.child
    return None


def rule_prune_rank(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(2)  ϱa:⟨…⟩(q) → q   when a is not needed upstream."""
    if isinstance(node, RowRank) and node.column not in ctx.needed_columns(node):
        return node.child
    return None


def rule_prune_attach(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(3)  @a:c(q) → q   when a is not needed upstream."""
    if isinstance(node, Attach) and node.column not in ctx.needed_columns(node):
        return node.child
    return None


def rule_prune_project(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(4)  π narrows its item list to the columns needed upstream."""
    if not isinstance(node, Project):
        return None
    needed = ctx.needed_columns(node)
    kept = [item for item in node.items if item[0] in needed]
    if kept and len(kept) < len(node.items):
        return Project(node.child, kept)
    return None


def _constant_single_row(node: Operator) -> Optional[dict[str, object]]:
    """If ``node`` is statically a one-row constant table, return its row."""
    if isinstance(node, LiteralTable):
        if len(node.rows) == 1:
            return dict(zip(node.columns, node.rows[0]))
        return None
    if isinstance(node, Attach):
        row = _constant_single_row(node.child)
        if row is None:
            return None
        row = dict(row)
        row[node.column] = node.value
        return row
    if isinstance(node, Project):
        row = _constant_single_row(node.child)
        if row is None:
            return None
        return {new: row[old] for new, old in node.items}
    return None


def rule_project_fuse(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """Fuse adjacent projections: π_A(π_B(q)) → π_{A∘B}(q).

    Not listed in Fig. 5 (the paper's plans are drawn after an implicit
    fusion); it keeps the isolated plans readable and the extracted SQL free
    of redundant column shuffles.  Only applied when the inner projection is
    not shared by other parents.
    """
    if not isinstance(node, Project) or not isinstance(node.child, Project):
        return None
    inner = node.child
    if len(ctx.parents.get(id(inner), ())) > 1:
        return None
    inner_map = inner.renaming()
    fused = [(new, inner_map[old]) for new, old in node.items]
    return Project(inner.child, fused)


def rule_cross_to_attach(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(5)  q × (one-row constant table) → @…(q)."""
    if not isinstance(node, Cross):
        return None
    for side, other in ((node.right, node.left), (node.left, node.right)):
        row = _constant_single_row(side)
        if row is None:
            continue
        result: Operator = other
        for column, value in row.items():
            result = Attach(result, column, value)
        # Column order may differ from the original cross product; operators
        # address columns by name, so no reordering projection is needed.
        return result
    return None


def rule_rank_to_project(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(12)  ϱa:⟨b⟩(q) → π a:b, cols(q) (q)   (single ordering column).

    Valid because the fragment never compares or joins on rank columns —
    they are exclusively used as ordering criteria, and ``b`` orders rows
    exactly like its rank does.
    """
    if isinstance(node, RowRank) and len(node.order_by) == 1:
        if ctx.rank_compared_upstream(node):
            # A positional selection tests this rank's *value*; substituting
            # the ordering column would select by node rank instead of by
            # sequence position.
            return None
        source = node.order_by[0]
        items = [(node.column, source)] + [(c, c) for c in node.child.columns]
        return Project(node.child, items)
    return None


def rule_rank_prune_const(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(13)  drop constant columns from a ϱ's ordering / partition criteria.

    A constant partition column means the whole input is one partition, so
    the partitioned rank degenerates to the global one.
    """
    if not isinstance(node, RowRank):
        return None
    const = ctx.properties.const(node.child)
    kept = tuple(column for column in node.order_by if column not in const)
    kept_partition = tuple(column for column in node.partition_by if column not in const)
    if kept == node.order_by and kept_partition == node.partition_by:
        return None
    if kept:
        return RowRank(node.child, node.column, kept, kept_partition)
    # All ordering columns are constant: every row gets rank 1.
    return Attach(node.child, node.column, 1)


def rule_project_const_source(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """Fold projection items whose source column is constant into attaches.

    Not listed in Fig. 5 but in the spirit of rules (7)/(13); it removes the
    last references to the constant ``iter`` / ``pos`` bookkeeping columns so
    that rules (1)-(3) can fire upstream.
    """
    if not isinstance(node, Project):
        return None
    const = ctx.properties.const(node.child)
    constant_items = [(new, old) for new, old in node.items if old in const]
    if not constant_items or len(constant_items) == len(node.items):
        return None
    remaining = [(new, old) for new, old in node.items if old not in const]
    result: Operator = Project(node.child, remaining)
    for new, old in constant_items:
        result = Attach(result, new, const[old])
    return result


# ---------------------------------------------------------------------------
# δ rules (6) - (8)
# ---------------------------------------------------------------------------


def rule_remove_distinct(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(6)  δ(q) → q   when the output is de-duplicated further upstream."""
    if isinstance(node, Distinct) and ctx.properties.is_set(node):
        return node.child
    return None


def rule_shrink_distinct(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(7)  drop constant, not-needed columns underneath a δ."""
    if not isinstance(node, Distinct) or isinstance(node.child, Project):
        return None
    const = set(ctx.properties.const(node.child))
    needed = ctx.needed_columns(node)
    drop = const - needed
    keep = [column for column in node.child.columns if column not in drop]
    if drop and keep and len(keep) < len(node.child.columns):
        return Distinct(Project.keep(node.child, keep))
    return None


def _column_has_rowid_origin(ctx: RuleContext, node: Operator, column: str) -> bool:
    origin_node, _origin_column = ctx.origin(node, column)
    return isinstance(origin_node, (RowId,))


def rule_introduce_distinct(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(8)  ■(q) → δ(π icols(■(q)))   for the equi-joins of FOR / IF compilation.

    The join preserves the key established by ``#`` and therefore emits
    unique rows; wrapping it in ``δ ∘ π`` is a no-op that provides the
    upstream duplicate elimination needed to remove the δ operators buried
    in the plan (via rule (6)).
    """
    if not isinstance(node, Join) or ctx.properties.is_set(node):
        return None
    if not node.predicate.is_single_column_equality():
        return None
    (a, b) = node.predicate.column_equalities()[0]
    if not (
        _column_has_rowid_origin(ctx, node, a) or _column_has_rowid_origin(ctx, node, b)
    ):
        return None
    icols = ctx.needed_columns(node) & frozenset(node.columns)
    if not icols or not ctx.properties.has_key_within(node, icols):
        return None
    ordered = [column for column in node.columns if column in icols]
    return Distinct(Project.keep(node, ordered))


# ---------------------------------------------------------------------------
# (10)  join over two constant join columns → cross product
# ---------------------------------------------------------------------------


def rule_const_join_to_cross(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(10)  q1 ⋈a=b q2 → q1 × q2   when a and b are the same constant."""
    if not isinstance(node, Join) or not node.predicate.is_single_column_equality():
        return None
    (a, b) = node.predicate.column_equalities()[0]
    left, right = node.children
    const_left = ctx.properties.const(left)
    const_right = ctx.properties.const(right)
    values = {}
    for column in (a, b):
        if column in left.columns and column in const_left:
            values[column] = const_left[column]
        elif column in right.columns and column in const_right:
            values[column] = const_right[column]
        else:
            return None
    if values[a] == values[b]:
        return Cross(left, right)
    return None


# ---------------------------------------------------------------------------
# ϱ movement rules (14), (16), (17)
# ---------------------------------------------------------------------------


def rule_rank_pull_up(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(14)  ■(ϱa:⟨b⟩(q)) → ϱa:⟨b⟩(■(q))   for ■ ∈ {σ, δ, @, #}."""
    if not isinstance(node, (Select, Distinct, Attach, RowId)):
        return None
    child = node.children[0]
    if not isinstance(child, RowRank):
        return None
    if isinstance(node, Select) and child.column in node.predicate.columns():
        return None
    if isinstance(node, (Attach, RowId)) and node.column == child.column:
        return None
    if isinstance(node, (Select, Distinct)) and ctx.rank_compared_upstream(child):
        # A positional selection upstream tests this rank's value; filtering
        # or de-duplicating *before* ranking would renumber the rows it sees.
        return None
    rebuilt = node.with_children([child.child])
    return RowRank(rebuilt, child.column, child.order_by, child.partition_by)


def rule_rank_pull_up_project(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(16)  π a,c1..cm (ϱa:⟨b⟩(q)) → ϱa:⟨b⟩(π b,c1..cm(q))   (renaming-aware)."""
    if not isinstance(node, Project):
        return None
    child = node.child
    if not isinstance(child, RowRank):
        return None
    rank_items = [(new, old) for new, old in node.items if old == child.column]
    if len(rank_items) != 1:
        return None
    rank_name = rank_items[0][0]
    other_items = [(new, old) for new, old in node.items if old != child.column]
    # The ordering and partition columns must survive the projection
    # (possibly renamed).
    extended_items = list(other_items)

    def thread(columns: tuple[str, ...]) -> Optional[list[str]]:
        renamed_columns: list[str] = []
        for column in columns:
            renamed = next((new for new, old in extended_items if old == column), None)
            if renamed is None:
                if column in {new for new, _old in extended_items} or column == rank_name:
                    return None
                extended_items.append((column, column))
                renamed = column
            renamed_columns.append(renamed)
        return renamed_columns

    order_by = thread(child.order_by)
    if order_by is None:
        return None
    partition_by = thread(child.partition_by)
    if partition_by is None:
        return None
    if not extended_items:
        return None
    projected = Project(child.child, extended_items)
    return RowRank(projected, rank_name, tuple(order_by), tuple(partition_by))


def rule_rank_splice(node: Operator, ctx: RuleContext) -> Optional[Operator]:
    """(17)  merge the ordering criteria of two adjacent ϱ operators.

    A partitioned child rank expands into its partition columns followed by
    its ordering columns: whenever the outer criteria preceding the child
    rank pin one partition (the FOR/DDO compilation shapes), ordering by
    ⟨partition, order⟩ coincides with ordering by the rank value.
    """
    if not isinstance(node, RowRank):
        return None
    child = node.child
    if not isinstance(child, RowRank) or child.column not in node.order_by:
        return None
    expansion = tuple(child.partition_by) + tuple(child.order_by)
    new_order: list[str] = []
    for column in node.order_by:
        if column == child.column:
            new_order.extend(c for c in expansion if c not in new_order)
        elif column not in new_order:
            new_order.append(column)
    if tuple(new_order) == node.order_by:
        return None
    return RowRank(child, node.column, tuple(new_order), node.partition_by)


# ---------------------------------------------------------------------------
# (9) generalised: key-join collapse
# ---------------------------------------------------------------------------


def _safe_spine(path: list[tuple[Operator, str]]) -> bool:
    """True when every node strictly above the origin is row-preserving.

    ``count``/``sum`` aggregations emit exactly one row per loop row (the
    provenance path descends into the loop side), so they preserve rows;
    ``avg`` drops empty groups and does not.
    """
    for op, _name in path[:-1]:
        if isinstance(op, GroupAggregate):
            if op.function == "avg":
                return False
            continue
        if not isinstance(op, _ROW_PRESERVING):
            return False
    return True


def _resolve_needed(
    ctx: RuleContext, dropped: Operator, needed: list[str], anchor: Operator
) -> Optional[dict[str, tuple[str, object]]]:
    """Express the needed columns of the dropped side relative to ``anchor``.

    Returns ``{column: ("const", value) | ("anchor", anchor_column)}`` or
    ``None`` when some column is not recoverable.
    """
    resolution: dict[str, tuple[str, object]] = {}
    for column in needed:
        path = ctx.provenance(dropped, column)
        origin_node, origin_column = path[-1]
        if isinstance(origin_node, Attach):
            resolution[column] = ("const", origin_node.value)
            continue
        anchored = next((name for op, name in path if op is anchor), None)
        if anchored is not None:
            resolution[column] = ("anchor", anchored)
            continue
        return None
    return resolution


def _widen_chain(
    ctx: RuleContext,
    kept: Operator,
    kept_join_column: str,
    anchor: Operator,
    carries: dict[str, str],
    collapsing_join: Optional[Operator] = None,
) -> Optional[tuple[Operator, dict[int, Operator]]]:
    """Thread ``carries`` (target name → anchor column) up the kept side's spine.

    The spine is the provenance path of the kept side's join column; the
    anchor lies on it by construction.  Operators other than π pass all of
    their input columns through, so only the projections on the spine need to
    be extended; everything above the first extended projection is rebuilt as
    well.

    Returns the widened kept root together with a substitution map
    ``{id(old spine node): rebuilt node}``.  The caller applies that map to
    the whole plan, so other references to the (possibly shared) spine nodes
    keep pointing at one single widened copy — the extra columns are ignored
    by those other consumers.  ``None`` is returned when a name clash or an
    intolerant foreign parent makes the widening unsafe; the rule then simply
    does not fire.
    """
    if not carries:
        return kept, {}
    path = ctx.provenance(kept, kept_join_column)
    spine = [op for op, _name in path]
    if anchor not in spine:
        return None
    anchor_index = spine.index(anchor)
    #: Nodes whose parent-tolerance need not be checked: the collapsing join
    #: itself (it is being replaced) and the spine nodes (rebuilt together).
    exempt = {id(op) for op in spine}
    if collapsing_join is not None:
        exempt.add(id(collapsing_join))
    #: Current name of each carried column while walking up the spine.
    names: dict[str, str] = dict(carries)
    substitutions: dict[int, Operator] = {}
    current: Operator = anchor
    changed = False
    for position in range(anchor_index - 1, -1, -1):
        op = spine[position]
        below = spine[position + 1]
        if isinstance(op, Project):
            items = list(op.items)
            taken = {new for new, _old in items}
            extra: list[tuple[str, str]] = []
            for target in carries:
                # Always thread carries under fresh names: spine projections
                # may be *shared* (other consumers see the widened copy), and
                # surfacing the target name inside the spine would collide
                # when a second widening carries the same column up a sibling
                # branch.  Only the unshared top projection below surfaces
                # the target names.
                output = ctx.fresh_column(target)
                while output in taken:
                    output = ctx.fresh_column(target)
                taken.add(output)
                extra.append((output, names[target]))
                names[target] = output
            rebuilt: Operator = Project(current if changed else below, items + extra)
            changed = True
        elif not changed:
            current = op
            continue
        else:
            if isinstance(op, (Join, Cross)):
                other = next(child for child in op.children if child is not below)
                if set(other.columns) & set(names.values()):
                    return None
            children = [current if child is below else child for child in op.children]
            rebuilt = op.with_children(children)
        if not _foreign_parents_tolerate(ctx, op, set(names.values()), exempt):
            return None
        substitutions[id(op)] = rebuilt
        current = rebuilt
    # Surface each carried column under its target name next to the kept columns.
    if all(names[target] == target for target in carries) and all(
        target in current.columns for target in carries
    ):
        return current, substitutions
    items = [(column, column) for column in kept.columns]
    for target in carries:
        if names[target] not in current.columns:
            return None
        items.append((target, names[target]))
    return Project(current, items), substitutions


def _foreign_parents_tolerate(
    ctx: RuleContext, node: Operator, added_columns: set[str], exempt: set[int]
) -> bool:
    """Check that parents outside the widened spine can absorb extra columns.

    Projections, selections, attaches and the like simply ignore columns they
    do not mention; joins and cross products additionally require the added
    columns not to clash with their other input; duplicate eliminations stay
    correct because the added columns are functionally dependent on the key
    column the spine already carries.  Parents listed in ``exempt`` (the
    collapsing join and the spine itself) are rebuilt anyway and skipped.
    """
    for parent in ctx.parents.get(id(node), ()):  # direct parents only
        if id(parent) in exempt:
            continue
        if isinstance(parent, (Join, Cross)):
            sibling = next((c for c in parent.children if c is not node), None)
            if sibling is not None and set(sibling.columns) & added_columns:
                return False
    return True


def rule_key_join_collapse(node: Operator, ctx: RuleContext) -> RuleResult:
    """(9*)  collapse a join on a column equality stemming from the same key.

    ``A ⋈ a=b ∧ rest B`` is replaced by the *kept* side widened with the
    columns it still needs from the *dropped* side (with ``rest`` — if any —
    re-applied as a selection over the widened result) when

    * the two pivot columns trace back to the same column ``c`` of the same
      operator ``X`` (the anchor) with ``{c}`` a candidate key of ``X``,
    * the dropped side is a row-preserving column chain over ``X`` (so each
      kept row matches exactly the dropped row it originated from), and
    * every dropped-side column still needed upstream — including the ones
      the residual conjuncts mention — is either a constant or readable from
      ``X``'s output (it is then threaded up the kept side's spine).

    This subsumes the paper's Rule (9) and removes the FOR / IF equi-joins
    (Fig. 6) as well as the ``pre = item`` context joins against ``doc``.
    The multi-conjunct form is what lets *value joins* (Section III-C)
    collapse: their iteration-bookkeeping equality is the pivot and the
    value comparison survives as an ordinary selection over the bundle.
    """
    if not isinstance(node, Join):
        return None
    for pivot in node.predicate.conjuncts:
        if not pivot.is_column_equality():
            continue
        result = _try_key_join_collapse(node, ctx, pivot)
        if result is not None:
            return result
    return None


def _try_key_join_collapse(
    node: Join, ctx: RuleContext, pivot: Comparison
) -> RuleResult:
    a = pivot.left.name  # type: ignore[union-attr]
    b = pivot.right.name  # type: ignore[union-attr]
    residual = [c for c in node.predicate.conjuncts if c is not pivot]
    left, right = node.children
    if a in right.columns:
        a, b = b, a
    if a not in left.columns or b not in right.columns:
        return None
    left_path = ctx.provenance(left, a)
    right_path = ctx.provenance(right, b)
    left_origin = left_path[-1]
    right_origin = right_path[-1]
    if left_origin[0] is not right_origin[0] or left_origin[1] != right_origin[1]:
        return None
    anchor, anchor_column = left_origin
    anchor_properties_keys = _anchor_keys(anchor)
    if frozenset({anchor_column}) not in anchor_properties_keys:
        return None
    needed_all = ctx.needed_columns(node)
    for conjunct in residual:
        needed_all |= conjunct.columns()
    for dropped, kept, dropped_path, kept_column in (
        (right, left, right_path, a),
        (left, right, left_path, b),
    ):
        if not _safe_spine(dropped_path):
            continue
        needed = [
            column
            for column in dropped.columns
            if column in needed_all and column not in kept.columns
        ]
        resolution = _resolve_needed(ctx, dropped, needed, anchor)
        if resolution is None:
            continue
        carries = {
            column: source
            for column, (kind, source) in resolution.items()
            if kind == "anchor"
        }
        widening = _widen_chain(ctx, kept, kept_column, anchor, carries, collapsing_join=node)  # type: ignore[arg-type]
        if widening is None:
            continue
        widened, substitutions = widening
        result: Operator = widened
        for column, (kind, value) in resolution.items():
            if kind == "const" and column not in result.columns:
                result = Attach(result, column, value)
        if residual:
            result = Select(result, Predicate(residual))
        replacements: dict[int, Operator] = dict(substitutions)
        replacements[id(node)] = result
        return replacements
    return None


def _anchor_keys(anchor: Operator) -> frozenset[frozenset[str]]:
    """Candidate keys of the anchor operator derivable without full inference."""
    keys: set[frozenset[str]] = set()
    if isinstance(anchor, DocTable):
        keys.add(frozenset({"pre"}))
    if isinstance(anchor, RowId):
        keys.add(frozenset({anchor.column}))
    if isinstance(anchor, LiteralTable):
        for index, column in enumerate(anchor.columns):
            values = [row[index] for row in anchor.rows]
            if len(values) == len(set(values)):
                keys.add(frozenset({column}))
    return frozenset(keys)


#: House-cleaning rules, applied throughout all goals.
CLEANUP_RULES: tuple[tuple[str, Rule], ...] = (
    ("project_fuse", rule_project_fuse),
    ("prune_project(4)", rule_prune_project),
    ("prune_rowid(1)", rule_prune_rowid),
    ("prune_rank(2)", rule_prune_rank),
    ("prune_attach(3)", rule_prune_attach),
    ("cross_to_attach(5)", rule_cross_to_attach),
    ("const_join_to_cross(10)", rule_const_join_to_cross),
    ("project_const_source", rule_project_const_source),
)

#: Goal ϱ: establish (at most) a single row-rank operator in the plan tail.
RANK_RULES: tuple[tuple[str, Rule], ...] = (
    ("rank_prune_const(13)", rule_rank_prune_const),
    ("rank_to_project(12)", rule_rank_to_project),
    ("rank_splice(17)", rule_rank_splice),
    ("rank_pull_up(14)", rule_rank_pull_up),
    ("rank_pull_up_project(16)", rule_rank_pull_up_project),
)

#: Goals δ and ⋈: single δ in the tail, joins pushed down / removed.
JOIN_RULES: tuple[tuple[str, Rule], ...] = (
    ("introduce_distinct(8)", rule_introduce_distinct),
    ("remove_distinct(6)", rule_remove_distinct),
    ("shrink_distinct(7)", rule_shrink_distinct),
    ("key_join_collapse(9*)", rule_key_join_collapse),
)

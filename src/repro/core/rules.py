"""Backwards-compatible façade over :mod:`repro.core.rewrite`.

The isolation rules used to live here as hand-coded match/replace
functions; they are now declarative :class:`~repro.core.rewrite.rule.Rule`
objects in :mod:`repro.core.rewrite.rules` (pattern + guard + builder,
validated at registration time).  This module keeps the old import surface
alive: the ``(name, callable)`` rule tuples, the :class:`RuleContext`, and
the :class:`RuleApplication` step records, all derived from the registry.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra.operators import Operator
from repro.core.rewrite.context import RuleContext
from repro.core.rewrite.rules import (
    _ROW_PRESERVING,
    CLEANUP_GROUP,
    JOIN_GROUP,
    RANK_GROUP,
    REGISTRY,
)
from repro.core.rewrite.trace import RewriteStep as RuleApplication

#: The old callable signature: ``rule(node, ctx) -> replacement | map | None``.
RuleResult = Optional["Operator | dict[int, Operator]"]
Rule = Callable[[Operator, RuleContext], RuleResult]

#: The legacy ``(name, callable)`` groups, derived from the declarative
#: registry — ``rule.apply`` has exactly the old callables' contract.
CLEANUP_RULES: tuple[tuple[str, Rule], ...] = tuple(
    (rule.name, rule.apply) for rule in CLEANUP_GROUP
)
RANK_RULES: tuple[tuple[str, Rule], ...] = tuple(
    (rule.name, rule.apply) for rule in RANK_GROUP
)
JOIN_RULES: tuple[tuple[str, Rule], ...] = tuple(
    (rule.name, rule.apply) for rule in JOIN_GROUP
)

__all__ = [
    "CLEANUP_RULES",
    "JOIN_RULES",
    "RANK_RULES",
    "REGISTRY",
    "Rule",
    "RuleApplication",
    "RuleContext",
    "RuleResult",
    "_ROW_PRESERVING",
]

"""End-to-end XQuery processing pipeline.

:class:`XQueryProcessor` ties all the pieces together, mirroring the setup
of the paper's evaluation:

1. parse + normalize + loop-lift an XQuery expression into the stacked plan
   (Fig. 4),
2. run join graph isolation (Section III) to obtain the isolated plan
   (Fig. 7) and the SQL join graph (Fig. 8 / Fig. 9),
3. execute either
   * the **stacked** plan with the algebra interpreter (the configuration the
     paper labels "stacked" in Table IX), or
   * the **join graph** through the relational back-end with its B-tree
     indexes and cost-based planner (the "join graph" configuration), or
   * the **SQL** renderings on a real RDBMS — SQLite via
     :mod:`repro.sqlbackend` (``configuration="sql"`` runs the isolated
     SFW block of Fig. 8/9, ``"sql-stacked"`` the stacked ``WITH``-chain
     that Section IV measures against it).

Both executions return the result node sequence as ``pre`` ranks, which can
be serialized back to XML text via :mod:`repro.xmldb.serializer`.

Compilation is amortized through a keyed :class:`PlanCache`, and queries
that declare ``declare variable $x external;`` compile once into
parameter-carrying plans that re-execute with fresh ``bindings`` via
:class:`PreparedQuery` — without re-running the parser, the loop-lifting
compiler, join graph isolation, or join-graph extraction.

Example:

>>> from repro.xmldb.encoding import encode_document
>>> from repro.xmldb.parser import parse_xml
>>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="tiny.xml"))
>>> processor = XQueryProcessor(encoding, default_document="tiny.xml")
>>> processor.execute("//b").items
[2, 4]
>>> prepared = processor.prepare(
...     'declare variable $n as xs:decimal external; //b[. > $n]')
>>> prepared.run({"n": 1}).items
[4]
>>> prepared.run({"n": 0}).items
[2, 4]
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Optional

from repro.errors import JoinGraphError, PlanningError
from repro.algebra.interpreter import PlanInterpreter
from repro.algebra.operators import Serialize
from repro.algebra.table import Table
from repro.core.joingraph import JoinGraph, extract_join_graph
from repro.core.rewriter import IsolationReport, JoinGraphIsolation
from repro.core.sqlgen import generate_stacked_sql, render_join_graph
from repro.relational.catalog import Database, database_from_encoding
from repro.relational.engine import QueryResult, RelationalEngine
from repro.sqlbackend.backend import SQLiteBackend, SQLResult
from repro.sqlbackend.decode import ordered_items, sequence_items
from repro.xmldb.encoding import DOC_COLUMNS, DocumentEncoding
from repro.xquery.ast import Expression, ExternalVariable, check_bindings, render
from repro.xquery.compiler import CompilerSettings, LoopLiftingCompiler
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_module


@dataclass
class CompilationResult:
    """Everything the compiler + isolation produce for one query.

    ``source`` (and ``surface_ast``) record the text the entry was first
    compiled from; on a :class:`PlanCache` hit from a formatting variant
    (the cache keys on the *normalized core AST*), they reflect that first
    variant, not the text of the current call.
    """

    source: str
    surface_ast: Expression
    core_ast: Expression
    stacked_plan: Serialize
    isolated_plan: Serialize
    isolation_report: IsolationReport
    join_graph: Optional[JoinGraph]
    join_graph_sql: Optional[str]
    stacked_sql: str
    join_graph_error: Optional[str] = None
    #: External variables the query declares; their values arrive as
    #: ``bindings`` at execution time (empty for ad-hoc queries).
    external_variables: tuple[ExternalVariable, ...] = ()
    #: Lazily rendered join-graph SQL for the RDBMS backend: the Fig. 8/9
    #: block with an explicit CROSS JOIN order (see
    #: ``XQueryProcessor._sql_backend_sql``).  Memoized as ``(stats key,
    #: sql)`` so prepared queries re-execute without re-rendering any SQL,
    #: while catalog growth (a processor rebuild with fresh statistics)
    #: invalidates the pinned join order instead of freezing a stale one.
    sql_backend_sql: Optional[tuple[tuple, str]] = field(default=None, repr=False)

    def core_text(self) -> str:
        """The normalized XQuery Core rendering (cf. Section II-D)."""
        return render(self.core_ast)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of the declared external variables, in declaration order."""
        return tuple(declaration.name for declaration in self.external_variables)


@dataclass
class ExecutionOutcome:
    """Result of executing one query in one configuration.

    ``rows_scanned`` counts rows the engine materialised/scanned — for the
    interpreted configurations only.  The ``sql``/``sql-stacked`` paths
    report 0: the stdlib SQLite driver exposes no scan counters, and a
    wrong-but-plausible number would be worse than none (result cardinality
    lives in ``details.row_count`` / :attr:`node_count`).
    """

    items: list[int]
    configuration: str
    rows_scanned: int = 0
    details: object = None

    @property
    def node_count(self) -> int:
        return len(self.items)


class PlanCache:
    """A keyed LRU cache for :class:`CompilationResult` objects.

    **Cache key contract.** Entries are keyed on the tuple

    ``(normalized core AST, external declarations, CompilerSettings,
    isolation configuration)``

    — everything that determines the compiled plans and their binding
    interface.  Consequences:

    * source texts that differ only in whitespace / comments / syntactic
      sugar share one entry (they normalize to the same core AST);
    * a per-call ``isolation`` override gets its *own* entry instead of
      bypassing the cache (the historical behaviour), so ablation runs and
      default runs never cross-contaminate;
    * external-variable *bindings* are deliberately **not** part of the key:
      plans carry parameter slots, so one cached entry serves every binding;
    * document *content* is not part of the key either — plans only
      reference the ``doc`` table and document URIs, so a cache may outlive
      re-registration of documents (the :class:`~repro.core.session.Session`
      facade relies on this).
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("PlanCache needs a maxsize of at least 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, CompilationResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[CompilationResult]:
        """Look up ``key``; a hit refreshes the entry's recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: CompilationResult) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters for tests and monitoring."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _isolation_key(isolation: Optional[JoinGraphIsolation]) -> tuple:
    """A hashable rendering of an isolation configuration (``None`` = default).

    ``astuple`` keeps the key complete if ``JoinGraphIsolation`` grows new
    configuration fields (all fields are plain scalars).
    """
    return dataclasses.astuple(isolation or JoinGraphIsolation())


class XQueryProcessor:
    """A purely relational XQuery processor over one document encoding.

    The processor owns the execution configurations of the paper's
    Table IX experiment — stacked plan, isolated plan, the interpreted SQL
    join graph, and the join graph on a *real* RDBMS (SQLite, lazily
    attached via :attr:`sql_backend`) — plus the :class:`PlanCache` that
    amortizes compilation, and it is the factory for :class:`PreparedQuery`
    handles (:meth:`prepare`).
    """

    def __init__(
        self,
        encoding: DocumentEncoding,
        default_document: Optional[str] = None,
        with_default_indexes: bool = True,
        add_serialization_step: bool = False,
        database: Optional[Database] = None,
        plan_cache: Optional[PlanCache] = None,
        plan_cache_size: int = 128,
        sql_backend: Optional[SQLiteBackend] = None,
    ):
        self.encoding = encoding
        self.default_document = default_document or (
            encoding.document_uris()[0] if encoding.document_uris() else None
        )
        self.add_serialization_step = add_serialization_step
        self.doc_table = Table(DOC_COLUMNS, encoding.rows())
        self.database = database or database_from_encoding(
            encoding, with_default_indexes=with_default_indexes
        )
        self.engine = RelationalEngine(self.database)
        #: Keyed LRU of compilation results (see :class:`PlanCache` for the
        #: key contract).  May be shared between processors serving the same
        #: logical catalog (e.g. across Session refreshes).
        # NB: an empty PlanCache is falsy (it has __len__), so test for None.
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_size)
        #: Source-text -> plan-cache-key memo: repeated ad-hoc execution of
        #: the *same* text skips parse+normalize (the key computation) and
        #: answers from the LRU in two dict lookups.  Bounded alongside the
        #: plan cache; per-processor (compiler settings are fixed here).
        self._key_by_source: "OrderedDict[tuple[str, tuple], Hashable]" = OrderedDict()
        #: The RDBMS behind ``configuration="sql"``; created lazily unless a
        #: shared backend (e.g. Session-owned) was injected.
        self._sql_backend = sql_backend

    @property
    def sql_backend(self) -> SQLiteBackend:
        """The SQLite mirror of :attr:`encoding`, synced on every access.

        The sync is incremental (and a no-op once mirrored), so touching
        this property per execution is cheap; injecting a backend through
        the constructor lets a :class:`~repro.core.session.Session` keep
        one mirror alive across processor rebuilds.
        """
        if self._sql_backend is None:
            self._sql_backend = SQLiteBackend()
        self._sql_backend.sync(self.encoding)
        return self._sql_backend

    # -- compilation -----------------------------------------------------------------

    def compile(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> CompilationResult:
        """Parse, normalize, loop-lift and isolate ``source``.

        Results are cached in :attr:`plan_cache` under the normalized core
        AST + compiler settings + isolation configuration; loop lifting,
        isolation and join-graph extraction are amortized across calls.
        Parse/normalize produce the key; for byte-identical source texts a
        memo skips even that.
        """
        isolation_key = _isolation_key(isolation)
        memo_key = (source, isolation_key)
        known_key = self._key_by_source.get(memo_key)
        if known_key is not None:
            cached = self.plan_cache.get(known_key)
            if cached is not None:
                return cached
        module = parse_module(source)
        core = normalize(module.body, default_document=self.default_document)
        settings = CompilerSettings(
            add_serialization_step=self.add_serialization_step,
            default_document=self.default_document,
        )
        # The declarations are part of the key: two sources with the same
        # core AST but different prologs (extra/unused or differently-typed
        # externals) have different binding interfaces.
        cache_key = (core, module.externals, settings, isolation_key)
        self._key_by_source[memo_key] = cache_key
        while len(self._key_by_source) > 4 * self.plan_cache.maxsize:
            self._key_by_source.popitem(last=False)
        if known_key != cache_key:  # not already looked up (and missed) above
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                return cached
        compiler = LoopLiftingCompiler(settings)
        stacked = compiler.compile(core)
        isolated, report = (isolation or JoinGraphIsolation()).isolate(stacked)
        join_graph: Optional[JoinGraph] = None
        join_graph_sql: Optional[str] = None
        join_graph_error: Optional[str] = None
        try:
            join_graph = extract_join_graph(isolated)
            join_graph_sql = render_join_graph(join_graph)
        except JoinGraphError as error:
            join_graph_error = str(error)
        result = CompilationResult(
            source=source,
            surface_ast=module.body,
            core_ast=core,
            stacked_plan=stacked,
            isolated_plan=isolated,
            isolation_report=report,
            join_graph=join_graph,
            join_graph_sql=join_graph_sql,
            stacked_sql=generate_stacked_sql(stacked),
            join_graph_error=join_graph_error,
            external_variables=module.externals,
        )
        self.plan_cache.put(cache_key, result)
        return result

    def prepare(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> "PreparedQuery":
        """Compile once, re-execute many times with fresh bindings.

        The returned :class:`PreparedQuery` holds the compilation result
        directly: :meth:`PreparedQuery.run` goes straight to execution —
        no parsing, compilation, isolation or join-graph extraction.
        """
        compilation = self.compile(source, isolation)
        return PreparedQuery(compilation, lambda: self)

    # -- execution --------------------------------------------------------------------

    def execute_stacked(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Evaluate the *unrewritten* stacked plan with the algebra interpreter."""
        compilation = self.compile(source)
        return self._run_stacked(compilation, timeout_seconds, bindings)

    def execute_isolated_interpreted(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Evaluate the isolated plan with the algebra interpreter (sanity path)."""
        compilation = self.compile(source)
        return self._run_isolated(compilation, timeout_seconds, bindings)

    def execute_join_graph(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Plan + execute the SQL join graph on the relational back-end."""
        compilation = self.compile(source)
        return self._run_join_graph(compilation, timeout_seconds, bindings)

    def execute_sql(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Execute the isolated join-graph SFW block on the SQLite backend."""
        compilation = self.compile(source)
        return self._run_sql(compilation, timeout_seconds, bindings)

    def execute_sql_stacked(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Execute the stacked ``WITH``-chain on the SQLite backend (Section IV)."""
        compilation = self.compile(source)
        return self._run_sql_stacked(compilation, timeout_seconds, bindings)

    def execute(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
        configuration: str = "auto",
    ) -> ExecutionOutcome:
        """Execute ``source`` in one Table IX configuration.

        ``configuration`` is ``"auto"`` (join graph when one was isolated,
        else stacked), ``"stacked"``, ``"isolated"``, ``"join-graph"``,
        ``"sql"`` (isolated SFW block on SQLite) or ``"sql-stacked"`` (the
        stacked ``WITH``-chain on SQLite).
        """
        return self._dispatch(self.compile(source), configuration, timeout_seconds, bindings)

    def explain(
        self, source: str, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """The relational back-end's execution plan for the query's join graph."""
        return self._explain(self.compile(source), bindings)

    def serialize(self, items: list[int], separator: str = "") -> str:
        """Serialize a result node sequence back to XML text."""
        from repro.xmldb.serializer import serialize_sequence

        return serialize_sequence(self.encoding, items, separator)

    # -- execution of compiled plans (shared with PreparedQuery) ----------------------

    def _run_stacked(
        self,
        compilation: CompilationResult,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        values = check_bindings(compilation.external_variables, bindings)
        interpreter = PlanInterpreter(
            self.doc_table, timeout_seconds=timeout_seconds, parameters=values or None
        )
        table = interpreter.evaluate(compilation.stacked_plan)
        return ExecutionOutcome(
            items=self._items_from_table(table),
            configuration="stacked",
            rows_scanned=interpreter.rows_materialised,
        )

    def _run_isolated(
        self,
        compilation: CompilationResult,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        values = check_bindings(compilation.external_variables, bindings)
        interpreter = PlanInterpreter(
            self.doc_table, timeout_seconds=timeout_seconds, parameters=values or None
        )
        table = interpreter.evaluate(compilation.isolated_plan)
        return ExecutionOutcome(
            items=self._items_from_table(table),
            configuration="isolated-interpreted",
            rows_scanned=interpreter.rows_materialised,
        )

    def _run_auto(
        self,
        compilation: CompilationResult,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        if compilation.join_graph is not None:
            return self._run_join_graph(compilation, timeout_seconds, bindings)
        return self._run_stacked(compilation, timeout_seconds, bindings)

    def _dispatch(
        self,
        compilation: CompilationResult,
        configuration: str,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        """Route a compiled query to one execution configuration."""
        runners = {
            "auto": self._run_auto,
            "stacked": self._run_stacked,
            "isolated": self._run_isolated,
            "join-graph": self._run_join_graph,
            "sql": self._run_sql,
            "sql-stacked": self._run_sql_stacked,
        }
        try:
            runner = runners[configuration if configuration is not None else "auto"]
        except KeyError:
            expected = ", ".join(runners)
            raise ValueError(
                f"unknown configuration {configuration!r} (expected one of: {expected})"
            ) from None
        return runner(compilation, timeout_seconds, bindings)

    def _explain(
        self,
        compilation: CompilationResult,
        bindings: Optional[Mapping[str, object]],
    ) -> str:
        if compilation.join_graph is None:
            raise JoinGraphError(
                compilation.join_graph_error or "the query has no isolated join graph"
            )
        values = check_bindings(compilation.external_variables, bindings)
        return self.engine.explain(compilation.join_graph, bindings=values or None)

    def _run_join_graph(
        self,
        compilation: CompilationResult,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        if compilation.join_graph is None:
            raise JoinGraphError(
                compilation.join_graph_error or "the query has no isolated join graph"
            )
        values = check_bindings(compilation.external_variables, bindings)
        result: QueryResult = self.engine.execute(
            compilation.join_graph,
            timeout_seconds=timeout_seconds,
            bindings=values or None,
        )
        return ExecutionOutcome(
            items=[item for item in result.items()],
            configuration="join-graph",
            rows_scanned=result.rows_scanned,
            details=result,
        )

    def _sql_backend_sql(self, compilation: CompilationResult) -> str:
        """The join-graph SQL the RDBMS backend executes (rendered once).

        Same block as ``compilation.join_graph_sql`` (Fig. 8/9), but the
        FROM clause spells out a CROSS JOIN order: SQLite honours that
        syntax as a join-order constraint, and the n-fold self-joins here
        routinely defeat its own reorder search (a cold 10-way self-join
        can run 100x slower than the same block with the order pinned).
        The order comes from the in-tree cost-based planner when the graph
        is value-complete; parameterized graphs fall back to the static
        root-to-result (document descent) order so the text can be rendered
        once and re-bound forever.
        """
        if compilation.join_graph is None:
            raise JoinGraphError(
                compilation.join_graph_error or "the query has no isolated join graph"
            )
        # The memo is keyed on the database the order was planned against:
        # a CompilationResult lives in a PlanCache shared across processor
        # rebuilds (catalog growth), and CROSS JOIN is a hard ordering
        # constraint — re-plan against fresh statistics rather than pin an
        # order chosen for a different catalog.
        stats_key = (id(self.database), len(self.encoding))
        if compilation.sql_backend_sql is None or compilation.sql_backend_sql[0] != stats_key:
            graph = compilation.join_graph
            join_order = list(reversed(graph.aliases))
            if not graph.parameters():
                try:
                    join_order = self.engine.plan(graph).join_order
                except PlanningError:
                    pass  # keep the static descent order
            compilation.sql_backend_sql = (
                stats_key,
                render_join_graph(graph, join_order=join_order),
            )
        return compilation.sql_backend_sql[1]

    def _run_sql(
        self,
        compilation: CompilationResult,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        """Isolated join graph on the RDBMS: the paper's production story."""
        sql = self._sql_backend_sql(compilation)
        values = check_bindings(compilation.external_variables, bindings)
        result: SQLResult = self.sql_backend.execute(
            sql, bindings=values or None, timeout_seconds=timeout_seconds
        )
        return ExecutionOutcome(
            items=ordered_items(result.columns, result.rows),
            configuration="sql",
            details=result,
        )

    def _run_sql_stacked(
        self,
        compilation: CompilationResult,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        """Stacked WITH-chain on the RDBMS: what Pathfinder ships unrewritten."""
        values = check_bindings(compilation.external_variables, bindings)
        result: SQLResult = self.sql_backend.execute(
            compilation.stacked_sql,
            bindings=values or None,
            timeout_seconds=timeout_seconds,
        )
        return ExecutionOutcome(
            items=sequence_items(result.columns, result.rows),
            configuration="sql-stacked",
            details=result,
        )

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _items_from_table(table: Table) -> list[int]:
        # One shared decode step (see repro.sqlbackend.decode): the algebra
        # interpreters and the SQL backend reassemble sequences identically.
        return sequence_items(table.columns, table.rows)


@dataclass
class PreparedQuery:
    """A compiled query, re-executable with fresh bindings.

    ``run`` (and the per-configuration variants) go straight from the cached
    plans to execution: per call only binding validation, parameter
    substitution and — on the relational path — physical planning happen,
    which is what makes prepared re-execution cheap and lets the planner
    pick value-aware access paths per binding.

    The processor is obtained through ``processor_supplier`` at each
    execution, so handles created by a :class:`~repro.core.session.Session`
    keep working (and see newly registered documents) after the session
    refreshes its processor.
    """

    compilation: CompilationResult
    processor_supplier: Callable[[], XQueryProcessor] = field(repr=False)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of the external variables that must be bound to run."""
        return self.compilation.parameter_names

    @property
    def join_graph_sql(self) -> Optional[str]:
        """The Fig. 8 / Fig. 9 SFW rendering (with ``:name`` parameter markers)."""
        return self.compilation.join_graph_sql

    def run(
        self,
        bindings: Optional[Mapping[str, object]] = None,
        engine: str = "auto",
        timeout_seconds: Optional[float] = None,
    ) -> ExecutionOutcome:
        """Execute with ``bindings``; ``engine`` picks the configuration.

        ``"auto"`` uses the join graph when one was isolated (falling back
        to the stacked plan), mirroring ``XQueryProcessor.execute``;
        ``"stacked"``, ``"isolated"``, ``"join-graph"``, ``"sql"`` and
        ``"sql-stacked"`` force one configuration.  On the SQL path the
        bindings flow into SQLite's native ``:name`` parameters — the SQL
        text itself is rendered once per compilation, never per run.
        """
        processor = self.processor_supplier()
        return processor._dispatch(self.compilation, engine, timeout_seconds, bindings)

    def explain(self, bindings: Optional[Mapping[str, object]] = None) -> str:
        """Explain the relational plan the bindings would be executed with."""
        return self.processor_supplier()._explain(self.compilation, bindings)

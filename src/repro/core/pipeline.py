"""End-to-end XQuery processing pipeline.

:class:`XQueryProcessor` ties all the pieces together, mirroring the setup
of the paper's evaluation:

1. parse + normalize + loop-lift an XQuery expression into the stacked plan
   (Fig. 4),
2. run join graph isolation (Section III) to obtain the isolated plan
   (Fig. 7) and the SQL join graph (Fig. 8 / Fig. 9),
3. execute either
   * the **stacked** plan with the algebra interpreter (the configuration the
     paper labels "stacked" in Table IX), or
   * the **join graph** through the relational back-end with its B-tree
     indexes and cost-based planner (the "join graph" configuration).

Both executions return the result node sequence as ``pre`` ranks, which can
be serialized back to XML text via :mod:`repro.xmldb.serializer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import JoinGraphError
from repro.algebra.interpreter import PlanInterpreter
from repro.algebra.operators import Serialize
from repro.algebra.table import Table
from repro.core.joingraph import JoinGraph, extract_join_graph
from repro.core.rewriter import IsolationReport, JoinGraphIsolation
from repro.core.sqlgen import generate_stacked_sql, render_join_graph
from repro.relational.catalog import Database, database_from_encoding
from repro.relational.engine import QueryResult, RelationalEngine
from repro.xmldb.encoding import DOC_COLUMNS, DocumentEncoding
from repro.xquery.ast import Expression, render
from repro.xquery.compiler import CompilerSettings, LoopLiftingCompiler
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_xquery


@dataclass
class CompilationResult:
    """Everything the compiler + isolation produce for one query."""

    source: str
    surface_ast: Expression
    core_ast: Expression
    stacked_plan: Serialize
    isolated_plan: Serialize
    isolation_report: IsolationReport
    join_graph: Optional[JoinGraph]
    join_graph_sql: Optional[str]
    stacked_sql: str
    join_graph_error: Optional[str] = None

    def core_text(self) -> str:
        """The normalized XQuery Core rendering (cf. Section II-D)."""
        return render(self.core_ast)


@dataclass
class ExecutionOutcome:
    """Result of executing one query in one configuration."""

    items: list[int]
    configuration: str
    rows_scanned: int = 0
    details: object = None

    @property
    def node_count(self) -> int:
        return len(self.items)


class XQueryProcessor:
    """A purely relational XQuery processor over one document encoding."""

    def __init__(
        self,
        encoding: DocumentEncoding,
        default_document: Optional[str] = None,
        with_default_indexes: bool = True,
        add_serialization_step: bool = False,
        database: Optional[Database] = None,
    ):
        self.encoding = encoding
        self.default_document = default_document or (
            encoding.document_uris()[0] if encoding.document_uris() else None
        )
        self.add_serialization_step = add_serialization_step
        self.doc_table = Table(DOC_COLUMNS, encoding.rows())
        self.database = database or database_from_encoding(
            encoding, with_default_indexes=with_default_indexes
        )
        self.engine = RelationalEngine(self.database)
        self._compilation_cache: dict[str, CompilationResult] = {}

    # -- compilation -----------------------------------------------------------------

    def compile(self, source: str, isolation: Optional[JoinGraphIsolation] = None) -> CompilationResult:
        """Parse, normalize, loop-lift and isolate ``source``."""
        cache_key = source if isolation is None else None
        if cache_key and cache_key in self._compilation_cache:
            return self._compilation_cache[cache_key]
        surface = parse_xquery(source)
        core = normalize(surface, default_document=self.default_document)
        compiler = LoopLiftingCompiler(
            CompilerSettings(
                add_serialization_step=self.add_serialization_step,
                default_document=self.default_document,
            )
        )
        stacked = compiler.compile(core)
        isolated, report = (isolation or JoinGraphIsolation()).isolate(stacked)
        join_graph: Optional[JoinGraph] = None
        join_graph_sql: Optional[str] = None
        join_graph_error: Optional[str] = None
        try:
            join_graph = extract_join_graph(isolated)
            join_graph_sql = render_join_graph(join_graph)
        except JoinGraphError as error:
            join_graph_error = str(error)
        result = CompilationResult(
            source=source,
            surface_ast=surface,
            core_ast=core,
            stacked_plan=stacked,
            isolated_plan=isolated,
            isolation_report=report,
            join_graph=join_graph,
            join_graph_sql=join_graph_sql,
            stacked_sql=generate_stacked_sql(stacked),
            join_graph_error=join_graph_error,
        )
        if cache_key:
            self._compilation_cache[cache_key] = result
        return result

    # -- execution --------------------------------------------------------------------

    def execute_stacked(
        self, source: str, timeout_seconds: Optional[float] = None
    ) -> ExecutionOutcome:
        """Evaluate the *unrewritten* stacked plan with the algebra interpreter."""
        compilation = self.compile(source)
        interpreter = PlanInterpreter(self.doc_table, timeout_seconds=timeout_seconds)
        table = interpreter.evaluate(compilation.stacked_plan)
        return ExecutionOutcome(
            items=self._items_from_table(table),
            configuration="stacked",
            rows_scanned=interpreter.rows_materialised,
        )

    def execute_isolated_interpreted(
        self, source: str, timeout_seconds: Optional[float] = None
    ) -> ExecutionOutcome:
        """Evaluate the isolated plan with the algebra interpreter (sanity path)."""
        compilation = self.compile(source)
        interpreter = PlanInterpreter(self.doc_table, timeout_seconds=timeout_seconds)
        table = interpreter.evaluate(compilation.isolated_plan)
        return ExecutionOutcome(
            items=self._items_from_table(table),
            configuration="isolated-interpreted",
            rows_scanned=interpreter.rows_materialised,
        )

    def execute_join_graph(
        self, source: str, timeout_seconds: Optional[float] = None
    ) -> ExecutionOutcome:
        """Plan + execute the SQL join graph on the relational back-end."""
        compilation = self.compile(source)
        if compilation.join_graph is None:
            raise JoinGraphError(
                compilation.join_graph_error or "the query has no isolated join graph"
            )
        result: QueryResult = self.engine.execute(
            compilation.join_graph, timeout_seconds=timeout_seconds
        )
        return ExecutionOutcome(
            items=[item for item in result.items()],
            configuration="join-graph",
            rows_scanned=result.rows_scanned,
            details=result,
        )

    def execute(self, source: str, timeout_seconds: Optional[float] = None) -> ExecutionOutcome:
        """Execute with the best available strategy (join graph, else stacked)."""
        compilation = self.compile(source)
        if compilation.join_graph is not None:
            return self.execute_join_graph(source, timeout_seconds)
        return self.execute_stacked(source, timeout_seconds)

    def explain(self, source: str) -> str:
        """The relational back-end's execution plan for the query's join graph."""
        compilation = self.compile(source)
        if compilation.join_graph is None:
            raise JoinGraphError(
                compilation.join_graph_error or "the query has no isolated join graph"
            )
        return self.engine.explain(compilation.join_graph)

    def serialize(self, items: list[int], separator: str = "") -> str:
        """Serialize a result node sequence back to XML text."""
        from repro.xmldb.serializer import serialize_sequence

        return serialize_sequence(self.encoding, items, separator)

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _items_from_table(table: Table) -> list[int]:
        item_index = table.column_index("item")
        pos_index = table.column_index("pos") if "pos" in table.columns else None
        rows = table.rows
        if pos_index is not None:
            rows = sorted(rows, key=lambda row: (_sortable(row[pos_index]), _sortable(row[item_index])))
        seen: set[object] = set()
        items: list[int] = []
        for row in rows:
            value = row[item_index]
            if value in seen:
                continue
            seen.add(value)
            items.append(value)  # type: ignore[arg-type]
        return items


def _sortable(value: object) -> tuple:
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))

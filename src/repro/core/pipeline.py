"""End-to-end XQuery processing pipeline.

:class:`XQueryProcessor` ties all the pieces together, mirroring the setup
of the paper's evaluation:

1. parse + normalize + loop-lift an XQuery expression into the stacked plan
   (Fig. 4),
2. run join graph isolation (Section III) to obtain the isolated plan
   (Fig. 7) and the SQL join graph (Fig. 8 / Fig. 9),
3. execute either
   * the **stacked** plan with the algebra interpreter (the configuration the
     paper labels "stacked" in Table IX), or
   * the **join graph** through the relational back-end with its B-tree
     indexes and cost-based planner (the "join graph" configuration), or
   * the **SQL** renderings on a real RDBMS — SQLite via
     :mod:`repro.sqlbackend` (``configuration="sql"`` runs the isolated
     SFW block of Fig. 8/9, ``"sql-stacked"`` the stacked ``WITH``-chain
     that Section IV measures against it).

Both executions return the result node sequence as ``pre`` ranks, which can
be serialized back to XML text via :mod:`repro.xmldb.serializer`.

The flow itself lives in :mod:`repro.core.stages` as explicit, immutable
stage objects: the processor assembles a :class:`CompilationPipeline` and a
frozen :class:`~repro.core.stages.ExecutionContext` at construction time and
is itself effectively immutable afterwards — its only mutable members (the
:class:`PlanCache` and the source-text memo) are lock-protected, so one
processor can serve many threads (see :mod:`repro.service`).

Compilation is amortized through a keyed :class:`PlanCache`, and queries
that declare ``declare variable $x external;`` compile once into
parameter-carrying plans that re-execute with fresh ``bindings`` via
:class:`PreparedQuery` — without re-running the parser, the loop-lifting
compiler, join graph isolation, or join-graph extraction.

Example:

>>> from repro.xmldb.encoding import encode_document
>>> from repro.xmldb.parser import parse_xml
>>> encoding = encode_document(parse_xml("<a><b>1</b><b>2</b></a>", uri="tiny.xml"))
>>> processor = XQueryProcessor(encoding, default_document="tiny.xml")
>>> processor.execute("//b").items
[2, 4]
>>> prepared = processor.prepare(
...     'declare variable $n as xs:decimal external; //b[. > $n]')
>>> prepared.run({"n": 1}).items
[4]
>>> prepared.run({"n": 0}).items
[2, 4]
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Optional

from repro.core.rewriter import JoinGraphIsolation
from repro.core.stages import (
    CompilationPipeline,
    CompilationResult,
    ExecutionContext,
    ExecutionOutcome,
    StageTimings,
    execute_compiled,
    explain_compiled,
    run_isolated,
    run_join_graph,
    run_sql,
    run_sql_stacked,
    run_stacked,
    sql_backend_sql,
)
from repro.algebra.table import Table
from repro.relational.catalog import Database, database_from_encoding
from repro.relational.engine import RelationalEngine
from repro.sqlbackend.backend import SQLiteBackend
from repro.xmldb.encoding import DOC_COLUMNS, DocumentEncoding
from repro.xquery.compiler import CompilerSettings

__all__ = [
    "CompilationResult",
    "ExecutionOutcome",
    "PlanCache",
    "PreparedQuery",
    "XQueryProcessor",
]


class PlanCache:
    """A keyed LRU cache for :class:`CompilationResult` objects.

    **Cache key contract.** Entries are keyed on the tuple

    ``(normalized core AST, external declarations, CompilerSettings,
    isolation configuration)``

    — everything that determines the compiled plans and their binding
    interface.  Consequences:

    * source texts that differ only in whitespace / comments / syntactic
      sugar share one entry (they normalize to the same core AST);
    * a per-call ``isolation`` override gets its *own* entry instead of
      bypassing the cache (the historical behaviour), so ablation runs and
      default runs never cross-contaminate;
    * external-variable *bindings* are deliberately **not** part of the key:
      plans carry parameter slots, so one cached entry serves every binding;
    * document *content* is not part of the key either — plans only
      reference the ``doc`` table and document URIs, so a cache may outlive
      re-registration of documents (the :class:`~repro.core.session.Session`
      facade relies on this).

    **Raw-source memo.** The cache also owns the source-text side-map
    (raw ``(source, settings, isolation)`` memo key → plan cache key) that
    lets byte-identical re-executions skip parse+normalize.  It lives
    *inside* the cache so that source entries are evicted in lockstep with
    the plans they point to: the previous per-processor map pruned purely
    by size, so it could retain mappings to evicted plans while dropping
    mappings to live ones — and :meth:`clear` left it populated entirely.

    **Thread safety.** Every operation (lookups, inserts, :meth:`clear`,
    :meth:`stats`) holds one internal lock, so concurrent workers see
    consistent LRU order and counters.  :meth:`clear` resets the counters
    together with the entries *and* the source memo — ``stats()`` never
    mixes the hit/miss history of one cache generation with the size of
    another.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("PlanCache needs a maxsize of at least 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, CompilationResult]" = OrderedDict()
        #: memo key (raw source + compilation configuration) -> cache key.
        self._key_by_source: "OrderedDict[Hashable, Hashable]" = OrderedDict()
        #: cache key -> memo keys pointing at it (for lockstep eviction).
        self._sources_by_key: dict[Hashable, set[Hashable]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[CompilationResult]:
        """Look up ``key``; a hit refreshes the entry's recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: CompilationResult) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                evicted_key, _entry = self._entries.popitem(last=False)
                self.evictions += 1
                self._drop_sources_of(evicted_key)

    # -- the raw-source memo -------------------------------------------------------

    def key_for_source(self, memo_key: Hashable) -> Optional[Hashable]:
        """The cache key previously recorded for this raw source, if any.

        A hit refreshes the entry's recency, so a hot source replayed among
        many distinct texts is never the one the size bound prunes.
        """
        with self._lock:
            cache_key = self._key_by_source.get(memo_key)
            if cache_key is not None:
                self._key_by_source.move_to_end(memo_key)
            return cache_key

    def remember_source(self, memo_key: Hashable, cache_key: Hashable) -> None:
        """Record ``memo_key`` → ``cache_key``; bounded at 4x the plan LRU.

        A no-op when the cache no longer holds ``cache_key`` (cleared or
        evicted between the caller's ``put`` and this call) — the memo must
        never map a source to a plan the cache cannot produce.
        """
        with self._lock:
            if cache_key not in self._entries:
                return
            previous = self._key_by_source.pop(memo_key, None)
            if previous is not None:
                sources = self._sources_by_key.get(previous)
                if sources is not None:
                    sources.discard(memo_key)
                    if not sources:
                        del self._sources_by_key[previous]
            self._key_by_source[memo_key] = cache_key
            self._sources_by_key.setdefault(cache_key, set()).add(memo_key)
            # Several formatting variants may share one plan; allow slack,
            # evicting the stalest raw-source entries (never the plans).
            while len(self._key_by_source) > 4 * self.maxsize:
                stale_memo, stale_key = self._key_by_source.popitem(last=False)
                sources = self._sources_by_key.get(stale_key)
                if sources is not None:
                    sources.discard(stale_memo)
                    if not sources:
                        del self._sources_by_key[stale_key]

    def _drop_sources_of(self, cache_key: Hashable) -> None:
        """Remove every memo entry pointing at an evicted plan (lock held)."""
        for memo_key in self._sources_by_key.pop(cache_key, ()):
            self._key_by_source.pop(memo_key, None)

    def clear(self) -> None:
        """Drop every entry *and* reset the counters.

        The seed dropped entries but kept ``hits``/``misses``/``evictions``,
        leaving ``stats()`` incoherent (non-zero traffic counters against a
        size that no request ever produced); a cleared cache now reports
        like a fresh one.  The raw-source memo clears with it, so no source
        can resolve to a plan from a previous cache generation.
        """
        with self._lock:
            self._entries.clear()
            self._key_by_source.clear()
            self._sources_by_key.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Counters for tests and monitoring (one consistent snapshot)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "source_memo_size": len(self._key_by_source),
            }


def _isolation_key(isolation: Optional[JoinGraphIsolation]) -> tuple:
    """A hashable rendering of an isolation configuration (``None`` = default).

    ``astuple`` keeps the key complete if ``JoinGraphIsolation`` grows new
    configuration fields (all fields are plain scalars).
    """
    return dataclasses.astuple(isolation or JoinGraphIsolation())


class XQueryProcessor:
    """A purely relational XQuery processor over one document encoding.

    The processor owns the execution configurations of the paper's
    Table IX experiment — stacked plan, isolated plan, the interpreted SQL
    join graph, and the join graph on a *real* RDBMS (SQLite, reachable via
    :attr:`sql_backend`) — plus the :class:`PlanCache` that amortizes
    compilation, and it is the factory for :class:`PreparedQuery` handles
    (:meth:`prepare`).

    After construction the processor is **effectively immutable**: the
    catalog snapshot lives in a frozen
    :class:`~repro.core.stages.ExecutionContext` (:attr:`context`) and every
    execution routes through the pure executors of :mod:`repro.core.stages`,
    so any number of threads may compile and execute through one processor
    concurrently.
    """

    def __init__(
        self,
        encoding: DocumentEncoding,
        default_document: Optional[str] = None,
        with_default_indexes: bool = True,
        add_serialization_step: bool = False,
        database: Optional[Database] = None,
        plan_cache: Optional[PlanCache] = None,
        plan_cache_size: int = 128,
        sql_backend: Optional[SQLiteBackend] = None,
        columnar_execution: bool = True,
    ):
        self.encoding = encoding
        self.default_document = default_document or (
            encoding.document_uris()[0] if encoding.document_uris() else None
        )
        self.add_serialization_step = add_serialization_step
        self.columnar_execution = columnar_execution
        self.doc_table = Table(DOC_COLUMNS, encoding.rows())
        self.database = database or database_from_encoding(
            encoding, with_default_indexes=with_default_indexes
        )
        self.engine = RelationalEngine(self.database, columnar=columnar_execution)
        self.settings = CompilerSettings(
            add_serialization_step=self.add_serialization_step,
            default_document=self.default_document,
            columnar_execution=columnar_execution,
        )
        #: Keyed LRU of compilation results (see :class:`PlanCache` for the
        #: key contract).  May be shared between processors serving the same
        #: logical catalog (e.g. across Session refreshes).  It also owns
        #: the raw-source memo (evicted in lockstep with the plans), so the
        #: memo survives processor rebuilds and clears with the cache.
        # NB: an empty PlanCache is falsy (it has __len__), so test for None.
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_size)
        #: The RDBMS behind ``configuration="sql"``; created lazily (first
        #: ``sql``/``sql-stacked`` use) unless a shared backend (e.g.
        #: Session-owned) was injected.
        self._sql_backend = sql_backend
        self._backend_lock = threading.Lock()
        #: The frozen snapshot the pure executors of
        #: :mod:`repro.core.stages` run against; workers may hold onto it.
        self.context = ExecutionContext(
            encoding=encoding,
            doc_table=self.doc_table,
            database=self.database,
            engine=self.engine,
            settings=self.settings,
            default_document=self.default_document,
            sql_backend_supplier=self._get_sql_backend,
        )

    def _get_sql_backend(self) -> SQLiteBackend:
        """The backend instance, created on first use (double-checked)."""
        backend = self._sql_backend
        if backend is None:
            with self._backend_lock:
                if self._sql_backend is None:
                    self._sql_backend = SQLiteBackend()
                backend = self._sql_backend
        return backend

    @property
    def sql_backend(self) -> SQLiteBackend:
        """The SQLite mirror of :attr:`encoding`, synced on every access.

        The sync is incremental (and a no-op once mirrored), so touching
        this property per execution is cheap; injecting a backend through
        the constructor lets a :class:`~repro.core.session.Session` keep
        one mirror alive across processor rebuilds.
        """
        backend = self._get_sql_backend()
        backend.sync(self.encoding)
        return backend

    # -- compilation -----------------------------------------------------------------

    def pipeline(
        self, isolation: Optional[JoinGraphIsolation] = None
    ) -> CompilationPipeline:
        """The explicit stage pipeline for one isolation configuration."""
        return CompilationPipeline.configure(self.settings, isolation)

    def compile(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> CompilationResult:
        """Parse, normalize, loop-lift and isolate ``source``.

        Results are cached in :attr:`plan_cache` under the normalized core
        AST + compiler settings + isolation configuration; loop lifting,
        isolation and join-graph extraction are amortized across calls.
        Parse/normalize produce the key; for byte-identical source texts a
        memo skips even that.
        """
        compilation, _ = self._compile(source, isolation)
        return compilation

    def _compile(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> tuple[CompilationResult, bool]:
        """:meth:`compile` plus a flag: was the plan built by *this* call?

        Concurrent first compilations of the same query may both build (the
        cache is consulted, not locked across the build) — the last ``put``
        wins and both callers get a correct result; the duplicated work is
        bounded by the number of racing threads.
        """
        isolation_key = _isolation_key(isolation)
        # The compiler settings are part of the memo key: the plan cache may
        # be shared by processors with different settings (e.g. a different
        # default document), and the same source text then compiles to
        # different plans.
        memo_key = (source, self.settings, isolation_key)
        known_key = self.plan_cache.key_for_source(memo_key)
        if known_key is not None:
            cached = self.plan_cache.get(known_key)
            if cached is not None:
                return cached, False
        pipeline = self.pipeline(isolation)
        keyed = pipeline.key(source)
        # The declarations are part of the key: two sources with the same
        # core AST but different prologs (extra/unused or differently-typed
        # externals) have different binding interfaces.
        cache_key = (keyed.core, keyed.module.externals, self.settings, isolation_key)
        if known_key != cache_key:  # not already looked up (and missed) above
            cached = self.plan_cache.get(cache_key)
            if cached is not None:
                self.plan_cache.remember_source(memo_key, cache_key)
                return cached, False
        result = pipeline.build(keyed)
        self.plan_cache.put(cache_key, result)
        # Remember the source only after the put: a memo entry must never
        # point at a key the cache does not (yet) hold, or a concurrent
        # clear() between the two writes could leave a dangling mapping.
        self.plan_cache.remember_source(memo_key, cache_key)
        return result, True

    def prepare(
        self, source: str, isolation: Optional[JoinGraphIsolation] = None
    ) -> "PreparedQuery":
        """Compile once, re-execute many times with fresh bindings.

        The returned :class:`PreparedQuery` holds the compilation result
        directly: :meth:`PreparedQuery.run` goes straight to execution —
        no parsing, compilation, isolation or join-graph extraction.
        """
        compilation = self.compile(source, isolation)
        return PreparedQuery(compilation, lambda: self)

    # -- execution --------------------------------------------------------------------

    def execute_stacked(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Evaluate the *unrewritten* stacked plan with the algebra interpreter."""
        compilation, fresh = self._compile(source)
        return run_stacked(
            compilation, self.context, timeout_seconds, bindings,
            self._base_timings(compilation, fresh),
        )

    def execute_isolated_interpreted(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Evaluate the isolated plan with the algebra interpreter (sanity path)."""
        compilation, fresh = self._compile(source)
        return run_isolated(
            compilation, self.context, timeout_seconds, bindings,
            self._base_timings(compilation, fresh),
        )

    def execute_join_graph(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Plan + execute the SQL join graph on the relational back-end."""
        compilation, fresh = self._compile(source)
        return run_join_graph(
            compilation, self.context, timeout_seconds, bindings,
            self._base_timings(compilation, fresh),
        )

    def execute_sql(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Execute the isolated join-graph SFW block on the SQLite backend."""
        compilation, fresh = self._compile(source)
        return run_sql(
            compilation, self.context, timeout_seconds, bindings,
            self._base_timings(compilation, fresh),
        )

    def execute_sql_stacked(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
    ) -> ExecutionOutcome:
        """Execute the stacked ``WITH``-chain on the SQLite backend (Section IV)."""
        compilation, fresh = self._compile(source)
        return run_sql_stacked(
            compilation, self.context, timeout_seconds, bindings,
            self._base_timings(compilation, fresh),
        )

    def execute(
        self,
        source: str,
        timeout_seconds: Optional[float] = None,
        bindings: Optional[Mapping[str, object]] = None,
        configuration: str = "auto",
    ) -> ExecutionOutcome:
        """Execute ``source`` in one Table IX configuration.

        ``configuration`` is ``"auto"`` (join graph when one was isolated,
        else stacked), ``"stacked"``, ``"isolated"``, ``"join-graph"``,
        ``"sql"`` (isolated SFW block on SQLite) or ``"sql-stacked"`` (the
        stacked ``WITH``-chain on SQLite).
        """
        compilation, fresh = self._compile(source)
        return execute_compiled(
            compilation,
            self.context,
            configuration,
            timeout_seconds,
            bindings,
            self._base_timings(compilation, fresh),
        )

    def explain(
        self, source: str, bindings: Optional[Mapping[str, object]] = None
    ) -> str:
        """The relational back-end's execution plan for the query's join graph."""
        return explain_compiled(self.compile(source), self.context, bindings)

    def serialize(self, items: list[int], separator: str = "") -> str:
        """Serialize a result node sequence back to XML text."""
        from repro.xmldb.serializer import serialize_sequence

        return serialize_sequence(self.encoding, items, separator)

    # -- execution of compiled plans (shared with PreparedQuery) ----------------------

    @staticmethod
    def _base_timings(
        compilation: CompilationResult, fresh: bool
    ) -> StageTimings:
        """Seed an outcome's timing breakdown with the compile stages.

        Only when this very call compiled the plan — a plan-cache hit costs
        (almost) nothing and must not re-report the original compile time.
        """
        return dict(compilation.timings) if fresh else {}

    def _dispatch(
        self,
        compilation: CompilationResult,
        configuration: str,
        timeout_seconds: Optional[float],
        bindings: Optional[Mapping[str, object]],
    ) -> ExecutionOutcome:
        """Route a compiled query to one execution configuration."""
        return execute_compiled(
            compilation, self.context, configuration, timeout_seconds, bindings
        )

    def _sql_backend_sql(self, compilation: CompilationResult) -> str:
        """The join-graph SQL the RDBMS backend executes (rendered once)."""
        return sql_backend_sql(compilation, self.context)


@dataclass
class PreparedQuery:
    """A compiled query, re-executable with fresh bindings.

    ``run`` (and the per-configuration variants) go straight from the cached
    plans to execution: per call only binding validation, parameter
    substitution and — on the relational path — physical planning happen,
    which is what makes prepared re-execution cheap and lets the planner
    pick value-aware access paths per binding.

    The processor is obtained through ``processor_supplier`` at each
    execution, so handles created by a :class:`~repro.core.session.Session`
    keep working (and see newly registered documents) after the session
    refreshes its processor.
    """

    compilation: CompilationResult
    processor_supplier: Callable[[], XQueryProcessor] = field(repr=False)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """Names of the external variables that must be bound to run."""
        return self.compilation.parameter_names

    @property
    def join_graph_sql(self) -> Optional[str]:
        """The Fig. 8 / Fig. 9 SFW rendering (with ``:name`` parameter markers)."""
        return self.compilation.join_graph_sql

    def run(
        self,
        bindings: Optional[Mapping[str, object]] = None,
        engine: str = "auto",
        timeout_seconds: Optional[float] = None,
    ) -> ExecutionOutcome:
        """Execute with ``bindings``; ``engine`` picks the configuration.

        ``"auto"`` uses the join graph when one was isolated (falling back
        to the stacked plan), mirroring ``XQueryProcessor.execute``;
        ``"stacked"``, ``"isolated"``, ``"join-graph"``, ``"sql"`` and
        ``"sql-stacked"`` force one configuration.  On the SQL path the
        bindings flow into SQLite's native ``:name`` parameters — the SQL
        text itself is rendered once per compilation, never per run.
        """
        processor = self.processor_supplier()
        return processor._dispatch(self.compilation, engine, timeout_seconds, bindings)

    def explain(self, bindings: Optional[Mapping[str, object]] = None) -> str:
        """Explain the relational plan the bindings would be executed with."""
        processor = self.processor_supplier()
        return explain_compiled(self.compilation, processor.context, bindings)
